//! Layout kernels: concatenation (Inception branch merges) and column
//! slicing (time-step extraction, attention head splits).

use crate::{Result, Shape, Tensor, TensorError};

/// Concatenates tensors along `axis`. All other axes must agree.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for an empty input list or an
/// out-of-range axis, and [`TensorError::ShapeMismatch`] when non-`axis`
/// extents differ.
pub fn concat(tensors: &[&Tensor], axis: usize) -> Result<Tensor> {
    let first = *tensors.first().ok_or(TensorError::InvalidArgument {
        op: "concat",
        reason: "at least one tensor required".to_string(),
    })?;
    let rank = first.shape().rank();
    if axis >= rank {
        return Err(TensorError::InvalidArgument {
            op: "concat",
            reason: format!("axis {axis} out of range for rank {rank}"),
        });
    }
    let mut axis_total = 0;
    for t in tensors {
        if t.shape().rank() != rank {
            return Err(TensorError::RankMismatch {
                op: "concat",
                expected: rank,
                actual: t.shape().rank(),
            });
        }
        for d in 0..rank {
            if d != axis && t.shape().dim(d) != first.shape().dim(d) {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.shape().dims().to_vec(),
                    rhs: t.shape().dims().to_vec(),
                });
            }
        }
        axis_total += t.shape().dim(axis);
    }
    let mut out_dims = first.shape().dims().to_vec();
    out_dims[axis] = axis_total;
    let out_shape = Shape::new(&out_dims);
    // Outer = product of axes before `axis`; inner = product after.
    let outer: usize = first.shape().dims()[..axis].iter().product();
    let inner: usize = first.shape().dims()[axis + 1..].iter().product();
    let mut out = vec![0.0f32; out_shape.len()];
    let row_out = axis_total * inner;
    for o in 0..outer {
        let mut offset = 0;
        for t in tensors {
            let ax = t.shape().dim(axis);
            let chunk = ax * inner;
            out[o * row_out + offset..o * row_out + offset + chunk]
                .copy_from_slice(&t.data()[o * chunk..(o + 1) * chunk]);
            offset += chunk;
        }
    }
    Tensor::from_vec(out, out_shape)
}

/// Splits `dy` back into the gradients of the [`concat()`](fn@concat) inputs.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `dy` does not cover the
/// concatenated extent.
pub fn concat_backward(input_shapes: &[Shape], axis: usize, dy: &Tensor) -> Result<Vec<Tensor>> {
    let total: usize = input_shapes.iter().map(|s| s.dim(axis)).sum();
    if dy.shape().dim(axis) != total {
        return Err(TensorError::ShapeMismatch {
            op: "concat_backward",
            lhs: dy.shape().dims().to_vec(),
            rhs: vec![total],
        });
    }
    let first = &input_shapes[0];
    let outer: usize = first.dims()[..axis].iter().product();
    let inner: usize = first.dims()[axis + 1..].iter().product();
    let row_out = total * inner;
    let mut grads = Vec::with_capacity(input_shapes.len());
    let mut offset = 0;
    for shape in input_shapes {
        let ax = shape.dim(axis);
        let chunk = ax * inner;
        let mut g = vec![0.0f32; shape.len()];
        for o in 0..outer {
            g[o * chunk..(o + 1) * chunk]
                .copy_from_slice(&dy.data()[o * row_out + offset..o * row_out + offset + chunk]);
        }
        grads.push(Tensor::from_vec(g, shape.clone())?);
        offset += chunk;
    }
    Ok(grads)
}

/// Extracts columns `[start, start+len)` from a rank-2 tensor.
///
/// # Errors
///
/// Returns rank/index errors for malformed arguments.
pub fn slice_cols(x: &Tensor, start: usize, len: usize) -> Result<Tensor> {
    if x.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "slice_cols",
            expected: 2,
            actual: x.shape().rank(),
        });
    }
    let (m, n) = (x.shape().dim(0), x.shape().dim(1));
    if start + len > n {
        return Err(TensorError::IndexOutOfRange { op: "slice_cols", index: start + len, bound: n + 1 });
    }
    let mut out = vec![0.0f32; m * len];
    for r in 0..m {
        out[r * len..(r + 1) * len].copy_from_slice(&x.data()[r * n + start..r * n + start + len]);
    }
    Tensor::from_vec(out, [m, len])
}

/// Backward of [`slice_cols`]: writes `dy` into a zero tensor of the input
/// shape.
///
/// # Errors
///
/// Returns rank/index errors mirroring the forward pass.
pub fn slice_cols_backward(input_shape: &Shape, start: usize, dy: &Tensor) -> Result<Tensor> {
    if input_shape.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "slice_cols_backward",
            expected: 2,
            actual: input_shape.rank(),
        });
    }
    let (m, n) = (input_shape.dim(0), input_shape.dim(1));
    let len = dy.shape().dim(1);
    if start + len > n {
        return Err(TensorError::IndexOutOfRange {
            op: "slice_cols_backward",
            index: start + len,
            bound: n + 1,
        });
    }
    let mut dx = vec![0.0f32; m * n];
    for r in 0..m {
        dx[r * n + start..r * n + start + len].copy_from_slice(&dy.data()[r * len..(r + 1) * len]);
    }
    Tensor::from_vec(dx, input_shape.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_channels_nchw() {
        let a = Tensor::full([1, 2, 2, 2], 1.0);
        let b = Tensor::full([1, 1, 2, 2], 2.0);
        let c = concat(&[&a, &b], 1).unwrap();
        assert_eq!(c.shape().dims(), &[1, 3, 2, 2]);
        assert_eq!(&c.data()[..8], &[1.0; 8]);
        assert_eq!(&c.data()[8..], &[2.0; 4]);
    }

    #[test]
    fn concat_axis0_stacks_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], [1, 2]).unwrap();
        let c = concat(&[&a, &b], 0).unwrap();
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn concat_backward_splits() {
        let a = Tensor::full([2, 2], 0.0);
        let b = Tensor::full([2, 3], 0.0);
        let c = concat(&[&a, &b], 1).unwrap();
        let dy = Tensor::from_fn(c.shape().clone(), |i| i as f32);
        let grads =
            concat_backward(&[a.shape().clone(), b.shape().clone()], 1, &dy).unwrap();
        assert_eq!(grads[0].data(), &[0.0, 1.0, 5.0, 6.0]);
        assert_eq!(grads[1].data(), &[2.0, 3.0, 4.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn concat_validates() {
        assert!(concat(&[], 0).is_err());
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([3, 3]);
        assert!(concat(&[&a, &b], 0).is_err());
        assert!(concat(&[&a], 5).is_err());
    }

    #[test]
    fn slice_round_trip() {
        let x = Tensor::from_fn([2, 5], |i| i as f32);
        let s = slice_cols(&x, 1, 2).unwrap();
        assert_eq!(s.data(), &[1.0, 2.0, 6.0, 7.0]);
        let dx = slice_cols_backward(x.shape(), 1, &s).unwrap();
        assert_eq!(dx.data(), &[0.0, 1.0, 2.0, 0.0, 0.0, 0.0, 6.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn slice_rejects_overrun() {
        let x = Tensor::zeros([2, 4]);
        assert!(slice_cols(&x, 3, 2).is_err());
    }
}

/// Extracts rows `[start, start+len)` from a rank-2 tensor (contiguous copy;
/// time-step extraction in recurrent networks).
///
/// # Errors
///
/// Returns rank/index errors for malformed arguments.
pub fn slice_rows(x: &Tensor, start: usize, len: usize) -> Result<Tensor> {
    if x.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "slice_rows",
            expected: 2,
            actual: x.shape().rank(),
        });
    }
    let (m, n) = (x.shape().dim(0), x.shape().dim(1));
    if start + len > m {
        return Err(TensorError::IndexOutOfRange { op: "slice_rows", index: start + len, bound: m + 1 });
    }
    Ok(Tensor::from_vec(x.data()[start * n..(start + len) * n].to_vec(), [len, n])
        .expect("length matches"))
}

/// Backward of [`slice_rows`]: writes `dy` into a zero tensor of the input
/// shape.
///
/// # Errors
///
/// Returns rank/index errors mirroring the forward pass.
pub fn slice_rows_backward(input_shape: &Shape, start: usize, dy: &Tensor) -> Result<Tensor> {
    if input_shape.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "slice_rows_backward",
            expected: 2,
            actual: input_shape.rank(),
        });
    }
    let (m, n) = (input_shape.dim(0), input_shape.dim(1));
    let len = dy.shape().dim(0);
    if start + len > m {
        return Err(TensorError::IndexOutOfRange {
            op: "slice_rows_backward",
            index: start + len,
            bound: m + 1,
        });
    }
    let mut dx = vec![0.0f32; m * n];
    dx[start * n..(start + len) * n].copy_from_slice(dy.data());
    Tensor::from_vec(dx, input_shape.clone())
}

/// Permutes the axes of a rank-3 tensor: output axis `i` is input axis
/// `perm[i]` (e.g. `[1, 0, 2]` swaps time-major to batch-major).
///
/// # Errors
///
/// Returns rank errors for non-rank-3 input and
/// [`TensorError::InvalidArgument`] unless `perm` is a permutation of 0..3.
pub fn permute3(x: &Tensor, perm: [usize; 3]) -> Result<Tensor> {
    if x.shape().rank() != 3 {
        return Err(TensorError::RankMismatch {
            op: "permute3",
            expected: 3,
            actual: x.shape().rank(),
        });
    }
    let mut seen = [false; 3];
    for &p in &perm {
        if p > 2 || seen[p] {
            return Err(TensorError::InvalidArgument {
                op: "permute3",
                reason: format!("{perm:?} is not a permutation of [0, 1, 2]"),
            });
        }
        seen[p] = true;
    }
    let d = [x.shape().dim(0), x.shape().dim(1), x.shape().dim(2)];
    let od = [d[perm[0]], d[perm[1]], d[perm[2]]];
    let in_strides = [d[1] * d[2], d[2], 1];
    let mut out = vec![0.0f32; x.len()];
    let mut idx = 0;
    for o0 in 0..od[0] {
        for o1 in 0..od[1] {
            for o2 in 0..od[2] {
                let mut coords = [0usize; 3];
                coords[perm[0]] = o0;
                coords[perm[1]] = o1;
                coords[perm[2]] = o2;
                out[idx] = x.data()
                    [coords[0] * in_strides[0] + coords[1] * in_strides[1] + coords[2]];
                idx += 1;
            }
        }
    }
    Tensor::from_vec(out, [od[0], od[1], od[2]])
}

/// Inverse of a rank-3 permutation.
pub fn invert_perm3(perm: [usize; 3]) -> [usize; 3] {
    let mut inv = [0usize; 3];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn slice_rows_round_trip() {
        let x = Tensor::from_fn([4, 3], |i| i as f32);
        let s = slice_rows(&x, 1, 2).unwrap();
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let dx = slice_rows_backward(x.shape(), 1, &s).unwrap();
        assert_eq!(&dx.data()[3..9], s.data());
        assert_eq!(dx.data()[0], 0.0);
        assert!(slice_rows(&x, 3, 2).is_err());
    }

    #[test]
    fn permute3_swaps_axes() {
        let x = Tensor::from_fn([2, 3, 4], |i| i as f32);
        let y = permute3(&x, [1, 0, 2]).unwrap();
        assert_eq!(y.shape().dims(), &[3, 2, 4]);
        assert_eq!(y.at(&[2, 1, 3]), x.at(&[1, 2, 3]));
        // Round trip through the inverse permutation.
        let back = permute3(&y, invert_perm3([1, 0, 2])).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn permute3_validates() {
        let x = Tensor::zeros([2, 2, 2]);
        assert!(permute3(&x, [0, 0, 1]).is_err());
        assert!(permute3(&Tensor::zeros([2, 2]), [0, 1, 2]).is_err());
    }

    #[test]
    fn permute3_identity() {
        let x = Tensor::from_fn([2, 2, 2], |i| i as f32);
        assert_eq!(permute3(&x, [0, 1, 2]).unwrap(), x);
    }
}
