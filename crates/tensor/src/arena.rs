//! Thread-local scratch-buffer arena for kernel workspaces.
//!
//! The packed GEMM and im2col convolution kernels allocate sizeable
//! temporary buffers (`B` panels, `A` micro-panel blocks, column matrices)
//! on every call. Under the `capture()` hot path the same shapes recur every
//! iteration, so those allocations are pure churn. This module keeps a small
//! per-thread pool of retired buffers, binned by power-of-two capacity, and
//! hands them back zeroed — callers observe exactly the semantics of
//! `vec![0.0f32; len]`, so results are bitwise identical with the arena on
//! or off.
//!
//! Design constraints:
//!
//! * **Determinism.** Reuse only changes *where* a buffer lives, never what
//!   it contains: [`take_zeroed`] always returns an all-zero slice of the
//!   requested length. Runtime hit/miss counters depend on thread count
//!   (worker threads own separate bins), so they are reported through the
//!   wall-clock side of the bench trajectory, never through digest-bearing
//!   trace events — the static per-graph liveness plan
//!   (`tbd_graph::lower::arena_plan`) covers that channel.
//! * **Bounded footprint.** Each bin retains at most [`MAX_PER_BIN`]
//!   buffers and nothing above [`MAX_BIN_BYTES`]; everything else drops to
//!   the system allocator as before.
//! * **No locks on the hot path.** Bins are `thread_local`; only the
//!   monotonic statistics counters are shared atomics.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Number of power-of-two size classes tracked (2⁰ ‥ 2³⁹ floats).
const BINS: usize = 40;
/// Retired buffers kept per size class before falling back to `drop`.
const MAX_PER_BIN: usize = 4;
/// Buffers above this byte size are never pooled (one-off giants).
const MAX_BIN_BYTES: usize = 1 << 28;
/// Buffers below this length are cheaper to allocate than to pool.
const MIN_POOL_LEN: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(true);
static FRESH_ALLOCS: AtomicU64 = AtomicU64::new(0);
static REUSES: AtomicU64 = AtomicU64::new(0);
static BYTES_REQUESTED: AtomicU64 = AtomicU64::new(0);
static BYTES_REUSED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static POOL: RefCell<Vec<Vec<Vec<f32>>>> =
        RefCell::new((0..BINS).map(|_| Vec::new()).collect());
}

/// Monotonic allocator counters, aggregated across all threads since process
/// start (or the last [`reset_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Buffers that had to come from the system allocator.
    pub fresh_allocs: u64,
    /// Buffers served from a thread-local bin.
    pub reuses: u64,
    /// Total bytes requested through [`take_zeroed`].
    pub bytes_requested: u64,
    /// Bytes of those requests served by reuse.
    pub bytes_reused: u64,
}

impl ArenaStats {
    /// Fraction of requested bytes served without touching the system
    /// allocator; `0.0` when nothing has been requested.
    pub fn reuse_fraction(&self) -> f64 {
        if self.bytes_requested == 0 {
            0.0
        } else {
            self.bytes_reused as f64 / self.bytes_requested as f64
        }
    }
}

/// Size class for a *request* of `len` floats: the smallest class whose
/// pooled buffers are guaranteed to have capacity ≥ `len`.
fn request_bin(len: usize) -> usize {
    (usize::BITS - (len.max(1) - 1).leading_zeros()) as usize
}

/// Size class for a *retired* buffer: the largest class its capacity fully
/// covers, so any request routed to that class fits without reallocating.
fn retire_bin(capacity: usize) -> usize {
    (usize::BITS - 1 - capacity.leading_zeros()) as usize
}

/// Returns an all-zero buffer of exactly `len` floats, reusing a pooled
/// allocation when one of sufficient capacity is available on this thread.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    BYTES_REQUESTED.fetch_add(4 * len as u64, Ordering::Relaxed);
    if ENABLED.load(Ordering::Relaxed) && len >= MIN_POOL_LEN {
        let bin = request_bin(len);
        if bin < BINS {
            let hit = POOL.with(|pool| pool.borrow_mut()[bin].pop());
            if let Some(mut buf) = hit {
                debug_assert!(buf.capacity() >= len);
                buf.clear();
                buf.resize(len, 0.0);
                REUSES.fetch_add(1, Ordering::Relaxed);
                BYTES_REUSED.fetch_add(4 * len as u64, Ordering::Relaxed);
                return buf;
            }
        }
    }
    FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
    vec![0.0f32; len]
}

/// Retires a scratch buffer into this thread's pool for later reuse.
///
/// Dropping the buffer instead is always safe; recycling is purely an
/// optimisation. Buffers that are tiny, enormous, or land in a full bin are
/// released to the system allocator.
pub fn recycle(buf: Vec<f32>) {
    let cap = buf.capacity();
    if !ENABLED.load(Ordering::Relaxed) || cap < MIN_POOL_LEN || cap * 4 > MAX_BIN_BYTES {
        return;
    }
    let bin = retire_bin(cap);
    if bin >= BINS {
        return;
    }
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool[bin].len() < MAX_PER_BIN {
            pool[bin].push(buf);
        }
    });
}

/// Drops every pooled buffer owned by the calling thread.
pub fn clear() {
    POOL.with(|pool| {
        for bin in pool.borrow_mut().iter_mut() {
            bin.clear();
        }
    });
}

/// Globally enables or disables pooling. Disabling makes [`take_zeroed`]
/// behave exactly like `vec![0.0; len]` and [`recycle`] like `drop`.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether pooling is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Snapshot of the global counters.
pub fn stats() -> ArenaStats {
    ArenaStats {
        fresh_allocs: FRESH_ALLOCS.load(Ordering::Relaxed),
        reuses: REUSES.load(Ordering::Relaxed),
        bytes_requested: BYTES_REQUESTED.load(Ordering::Relaxed),
        bytes_reused: BYTES_REUSED.load(Ordering::Relaxed),
    }
}

/// Zeroes the global counters (the pools themselves are left intact).
pub fn reset_stats() {
    FRESH_ALLOCS.store(0, Ordering::Relaxed);
    REUSES.store(0, Ordering::Relaxed);
    BYTES_REQUESTED.store(0, Ordering::Relaxed);
    BYTES_REUSED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_always_zeroed_even_after_dirty_recycle() {
        clear();
        let mut buf = take_zeroed(4096);
        buf.iter_mut().for_each(|v| *v = 7.25);
        recycle(buf);
        let again = take_zeroed(4096);
        assert_eq!(again.len(), 4096);
        assert!(again.iter().all(|&v| v == 0.0));
        recycle(again);
        // A smaller request from the same class must also come back zeroed
        // and exactly sized.
        let smaller = take_zeroed(3000);
        assert_eq!(smaller.len(), 3000);
        assert!(smaller.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn recycled_capacity_always_covers_rebinned_requests() {
        clear();
        // Capacity 5000 retires into the 4096 class; requests of up to 4096
        // floats may be served from it and must fit without reallocation.
        let buf = Vec::with_capacity(5000);
        recycle(buf);
        let got = take_zeroed(4096);
        assert!(got.capacity() >= 4096);
        assert_eq!(got.len(), 4096);
    }

    // The counters are process-global while pools are thread-local, so these
    // tests assert *deltas contributed by this thread* with `>=` where other
    // concurrently running tests could also bump a counter. Tests that
    // toggle the global enable flag serialise on this lock.
    static ENABLE_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn stats_count_reuse() {
        let _g = ENABLE_GUARD.lock().unwrap();
        clear();
        let before = stats();
        let a = take_zeroed(1 << 12);
        recycle(a);
        let b = take_zeroed(1 << 12);
        let after = stats();
        assert!(after.reuses > before.reuses);
        assert!(after.fresh_allocs > before.fresh_allocs);
        assert!(after.bytes_requested >= before.bytes_requested + 2 * 4 * (1 << 12));
        assert!(after.bytes_reused >= before.bytes_reused + 4 * (1 << 12));
        assert!(after.reuse_fraction() > 0.0);
        recycle(b);
    }

    #[test]
    fn disabled_arena_never_pools() {
        let _g = ENABLE_GUARD.lock().unwrap();
        clear();
        set_enabled(false);
        let a = take_zeroed(1 << 12);
        let bin = retire_bin(a.capacity());
        recycle(a);
        // The thread-local bin must stay empty while pooling is off.
        let pooled = POOL.with(|pool| pool.borrow()[bin].len());
        assert_eq!(pooled, 0);
        set_enabled(true);
    }

    #[test]
    fn pooling_is_bitwise_invisible_to_gemm_and_conv() {
        let _g = ENABLE_GUARD.lock().unwrap();
        let a = crate::Tensor::from_fn([48, 130], |i| ((i * 31 % 101) as f32 - 50.0) * 0.02);
        let b = crate::Tensor::from_fn([130, 72], |i| ((i * 17 % 103) as f32 - 51.0) * 0.02);
        let x = crate::Tensor::from_fn([2, 3, 8, 8], |i| ((i * 7 % 13) as f32 - 6.0) * 0.1);
        let w = crate::Tensor::from_fn([4, 3, 3, 3], |i| ((i * 5 % 11) as f32 - 5.0) * 0.1);
        let cfg = crate::ops::Conv2dConfig::new(1, 1);
        set_enabled(false);
        let mm_off = crate::ops::matmul(&a, &b).unwrap();
        let cv_off = crate::ops::conv2d_forward(&x, &w, cfg).unwrap();
        set_enabled(true);
        clear();
        // Run twice so the second pass actually reuses pooled buffers.
        let _warmup = crate::ops::matmul(&a, &b).unwrap();
        let _warmup = crate::ops::conv2d_forward(&x, &w, cfg).unwrap();
        let mm_on = crate::ops::matmul(&a, &b).unwrap();
        let cv_on = crate::ops::conv2d_forward(&x, &w, cfg).unwrap();
        assert_eq!(mm_off.data(), mm_on.data());
        assert_eq!(cv_off.data(), cv_on.data());
    }

    #[test]
    fn tiny_and_zero_requests_bypass_the_pool() {
        clear();
        assert!(take_zeroed(0).is_empty());
        let t = take_zeroed(8);
        assert_eq!(t.len(), 8);
        let bin = retire_bin(t.capacity());
        recycle(t);
        let pooled = POOL.with(|pool| pool.borrow()[bin].len());
        assert_eq!(pooled, 0); // below MIN_POOL_LEN, never retained
    }
}
