//! Error types for tensor construction and kernel invocation.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor constructors and kernels.
///
/// Every public fallible function in this crate returns
/// [`TensorError`] so that callers (the graph executor,
/// model builders, tests) can propagate failures with `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the supplied
    /// buffer length.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually supplied.
        actual: usize,
    },
    /// Two operands have shapes that the kernel cannot combine.
    ShapeMismatch {
        /// Name of the kernel that rejected the operands.
        op: &'static str,
        /// Left-hand / first operand shape.
        lhs: Vec<usize>,
        /// Right-hand / second operand shape.
        rhs: Vec<usize>,
    },
    /// A kernel was invoked on a tensor of the wrong rank.
    RankMismatch {
        /// Name of the kernel that rejected the operand.
        op: &'static str,
        /// Rank required by the kernel.
        expected: usize,
        /// Rank of the supplied tensor.
        actual: usize,
    },
    /// A configuration value (stride, padding, group count, ...) is invalid.
    InvalidArgument {
        /// Name of the kernel that rejected the argument.
        op: &'static str,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An index (class id, vocabulary id, axis) is out of range.
    IndexOutOfRange {
        /// Name of the kernel that rejected the index.
        op: &'static str,
        /// Offending index.
        index: usize,
        /// Exclusive bound the index must stay below.
        bound: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "buffer of {actual} elements does not fill shape of {expected} elements")
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch { op, expected, actual } => {
                write!(f, "{op}: expected rank {expected}, got rank {actual}")
            }
            TensorError::InvalidArgument { op, reason } => write!(f, "{op}: {reason}"),
            TensorError::IndexOutOfRange { op, index, bound } => {
                write!(f, "{op}: index {index} out of range for bound {bound}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = TensorError::ShapeMismatch { op: "matmul", lhs: vec![2, 3], rhs: vec![4, 5] };
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("[2, 3]"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn length_mismatch_display() {
        let err = TensorError::LengthMismatch { expected: 6, actual: 4 };
        assert_eq!(err.to_string(), "buffer of 4 elements does not fill shape of 6 elements");
    }
}
