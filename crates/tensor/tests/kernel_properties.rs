//! Property-based tests over the tensor kernels: algebraic identities,
//! adjointness of forward/backward pairs, and numerical-stability bounds.

use proptest::prelude::*;
use tbd_tensor::ops::{self, Conv2dConfig, Pool2dConfig};
use tbd_tensor::{Shape, Tensor};

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-8.0f32..8.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A 1×1 all-ones single-channel convolution is the identity map.
    #[test]
    fn identity_convolution(data in finite_vec(2 * 25)) {
        let x = Tensor::from_vec(data, [2, 1, 5, 5]).unwrap();
        let w = Tensor::ones([1, 1, 1, 1]);
        let y = ops::conv2d_forward(&x, &w, Conv2dConfig::default()).unwrap();
        prop_assert_eq!(y.data(), x.data());
    }

    /// Convolution is linear in its input: conv(a·x) == a·conv(x).
    #[test]
    fn convolution_is_linear(data in finite_vec(2 * 2 * 16), scale in -3.0f32..3.0) {
        let x = Tensor::from_vec(data, [2, 2, 4, 4]).unwrap();
        let w = Tensor::from_fn([3, 2, 3, 3], |i| ((i % 5) as f32 - 2.0) * 0.25);
        let cfg = Conv2dConfig::new(1, 1);
        let lhs = ops::conv2d_forward(&ops::scale(&x, scale), &w, cfg).unwrap();
        let rhs = ops::scale(&ops::conv2d_forward(&x, &w, cfg).unwrap(), scale);
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-2);
    }

    /// <conv(x), dy> == <x, conv_backward_data(dy)>: the data gradient is
    /// the adjoint of the forward convolution.
    #[test]
    fn conv_backward_is_adjoint(
        xd in finite_vec(2 * 16),
        dyd in finite_vec(2 * 16),
    ) {
        let cfg = Conv2dConfig::new(1, 1);
        let x = Tensor::from_vec(xd, [1, 2, 4, 4]).unwrap();
        let w = Tensor::from_fn([2, 2, 3, 3], |i| ((i % 7) as f32 - 3.0) * 0.2);
        let y = ops::conv2d_forward(&x, &w, cfg).unwrap();
        let dy = Tensor::from_vec(dyd, y.shape().clone()).unwrap();
        let (dx, _) = ops::conv2d_backward(&x, &w, &dy, cfg).unwrap();
        let lhs: f32 = y.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(dx.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-1 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// Max pooling never invents values: every output element is present in
    /// the input, and pooling an all-equal tensor is the identity value.
    #[test]
    fn max_pool_selects_existing_values(data in finite_vec(2 * 36)) {
        let x = Tensor::from_vec(data.clone(), [2, 1, 6, 6]).unwrap();
        let (y, arg) = ops::max_pool2d_forward(&x, Pool2dConfig::new(2, 2, 0)).unwrap();
        for (out, &src) in y.data().iter().zip(&arg) {
            prop_assert_eq!(*out, data[src]);
        }
    }

    /// Average pooling preserves the global mean for exact tilings.
    #[test]
    fn avg_pool_preserves_mean(data in finite_vec(16)) {
        let x = Tensor::from_vec(data, [1, 1, 4, 4]).unwrap();
        let y = ops::avg_pool2d_forward(&x, Pool2dConfig::new(2, 2, 0)).unwrap();
        prop_assert!((y.mean() - x.mean()).abs() < 1e-4);
    }

    /// Batch norm output is invariant to affine shifts of its input
    /// (x → a·x + b leaves x̂ unchanged for a > 0).
    #[test]
    fn batch_norm_is_shift_scale_invariant(
        data in finite_vec(2 * 2 * 4),
        a in 0.5f32..3.0,
        b in -5.0f32..5.0,
    ) {
        let x = Tensor::from_vec(data, [2, 2, 2, 2]).unwrap();
        let gamma = Tensor::ones([2]);
        let beta = Tensor::zeros([2]);
        let (y1, _) = ops::batch_norm_forward(&x, &gamma, &beta, 1e-5).unwrap();
        let shifted = x.map(|v| a * v + b);
        let (y2, _) = ops::batch_norm_forward(&shifted, &gamma, &beta, 1e-5).unwrap();
        prop_assert!(y1.max_abs_diff(&y2).unwrap() < 2e-2);
    }

    /// Cross-entropy is minimised exactly at the target class: raising the
    /// target logit never increases the loss.
    #[test]
    fn cross_entropy_decreases_when_target_logit_rises(
        logits in finite_vec(4),
        target in 0usize..4,
        boost in 0.1f32..5.0,
    ) {
        let l = Tensor::from_vec(logits.clone(), [1, 4]).unwrap();
        let t = Tensor::from_slice(&[target as f32]);
        let (before, _) = ops::cross_entropy_forward(&l, &t).unwrap();
        let mut boosted = logits;
        boosted[target] += boost;
        let l2 = Tensor::from_vec(boosted, [1, 4]).unwrap();
        let (after, _) = ops::cross_entropy_forward(&l2, &t).unwrap();
        prop_assert!(after <= before + 1e-6);
    }

    /// Embedding backward is the adjoint of embedding forward.
    #[test]
    fn embedding_adjointness(
        table_data in finite_vec(5 * 3),
        ids in prop::collection::vec(0usize..5, 1..7),
    ) {
        let table = Tensor::from_vec(table_data, [5, 3]).unwrap();
        let idt = Tensor::from_slice(&ids.iter().map(|&i| i as f32).collect::<Vec<_>>());
        let out = ops::embedding_forward(&table, &idt).unwrap();
        let dy = Tensor::from_fn(out.shape().clone(), |i| (i as f32 * 0.3).sin());
        let dt = ops::embedding_backward(table.shape(), &idt, &dy).unwrap();
        let lhs: f32 = out.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = table.data().iter().zip(dt.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// Upsampling then summing 2×2 blocks recovers 4× the input.
    #[test]
    fn upsample_adjoint_identity(data in finite_vec(2 * 9)) {
        let x = Tensor::from_vec(data, [1, 2, 3, 3]).unwrap();
        let up = ops::upsample2x_forward(&x).unwrap();
        let back = ops::upsample2x_backward(x.shape(), &up).unwrap();
        let expected = ops::scale(&x, 4.0);
        prop_assert!(back.max_abs_diff(&expected).unwrap() < 1e-4);
    }

    /// Permute3 round-trips through its inverse for every permutation.
    #[test]
    fn permute3_round_trip(data in finite_vec(2 * 3 * 4), p0 in 0usize..6) {
        let perms = [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let perm = perms[p0];
        let x = Tensor::from_vec(data, [2, 3, 4]).unwrap();
        let y = ops::permute3(&x, perm).unwrap();
        let back = ops::permute3(&y, ops::invert_perm3(perm)).unwrap();
        prop_assert_eq!(back, x);
    }

    /// Shapes: strides always cover every element exactly once.
    #[test]
    fn strides_are_a_bijection(dims in prop::collection::vec(1usize..5, 1..4)) {
        let shape = Shape::new(&dims);
        let strides = shape.strides();
        let mut seen = vec![false; shape.len()];
        let mut coords = vec![0usize; dims.len()];
        loop {
            let flat: usize = coords.iter().zip(&strides).map(|(c, s)| c * s).sum();
            prop_assert!(!seen[flat], "duplicate flat index");
            seen[flat] = true;
            // Odometer increment.
            let mut axis = dims.len();
            loop {
                if axis == 0 { break; }
                axis -= 1;
                coords[axis] += 1;
                if coords[axis] < dims[axis] { break; }
                coords[axis] = 0;
                if axis == 0 { break; }
            }
            if coords.iter().all(|&c| c == 0) { break; }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }
}
