//! Property tests for the parallel kernel backend: the packed GEMM, the
//! banded im2col convolution and the batched GEMM must match scalar
//! references across randomized shapes (including non-multiples of the
//! blocking factors and degenerate m/k/n = 1), and results must not depend
//! on the intra-op thread cap.
//!
//! The thread cap is process-global, so these tests only ever compare
//! quantities that are *designed* to be bitwise identical across thread
//! counts (every output element is produced by exactly one band in a fixed
//! accumulation order) or use tolerances (the conv weight gradient, whose
//! per-band partials fold in band order).

use proptest::prelude::*;
use tbd_tensor::ops::{self, Conv2dConfig};
use tbd_tensor::{par, Tensor};

/// Direct seven-loop convolution, the independent ground truth for the
/// im2col + GEMM lowering.
fn conv_reference(x: &Tensor, w: &Tensor, cfg: Conv2dConfig) -> Tensor {
    let (n, c, h, wid) =
        (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2), x.shape().dim(3));
    let (oc, _, kh, kw) =
        (w.shape().dim(0), w.shape().dim(1), w.shape().dim(2), w.shape().dim(3));
    let (oh, ow) = ops::conv2d_output_hw(h, wid, kh, kw, cfg).expect("window fits");
    let mut out = vec![0.0f32; n * oc * oh * ow];
    for img in 0..n {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ch in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * cfg.stride + ky) as isize - cfg.pad_h as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * cfg.stride + kx) as isize - cfg.pad_w as isize;
                                if ix < 0 || ix >= wid as isize {
                                    continue;
                                }
                                acc += x.data()
                                    [((img * c + ch) * h + iy as usize) * wid + ix as usize]
                                    * w.data()[((o * c + ch) * kh + ky) * kw + kx];
                            }
                        }
                    }
                    out[((img * oc + o) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, [n, oc, oh, ow]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The packed GEMM agrees with the seed's scalar blocked loop on
    /// arbitrary shapes, including sizes far from multiples of MR/NR/KC.
    #[test]
    fn packed_gemm_matches_scalar_reference(
        m in 1usize..48,
        k in 1usize..256,
        n in 1usize..48,
        s in 0u32..1000,
    ) {
        let a = Tensor::from_fn([m, k], |i| ((i as f32 + s as f32) * 0.37).sin());
        let b = Tensor::from_fn([k, n], |i| ((i as f32 * 1.3 + s as f32) * 0.23).cos());
        let y = ops::matmul(&a, &b).unwrap();
        let r = ops::matmul_reference(&a, &b).unwrap();
        for (u, v) in y.data().iter().zip(r.data()) {
            prop_assert!(
                (u - v).abs() <= 1e-3 * v.abs().max(1.0),
                "m={m} k={k} n={n}: {u} vs {v}"
            );
        }
    }

    /// The GEMM is bitwise identical no matter how many row bands it is
    /// split across: each output element is accumulated in ascending-k
    /// order by exactly one band.
    #[test]
    fn gemm_is_bitwise_identical_across_thread_counts(
        m in 1usize..64,
        k in 1usize..192,
        n in 1usize..40,
    ) {
        let a = Tensor::from_fn([m, k], |i| ((i * 13 % 31) as f32 - 15.0) * 0.07);
        let b = Tensor::from_fn([k, n], |i| ((i * 7 % 29) as f32 - 14.0) * 0.06);
        par::set_max_threads(1);
        let serial = ops::matmul(&a, &b).unwrap();
        par::set_max_threads(4);
        let threaded = ops::matmul(&a, &b).unwrap();
        par::set_max_threads(0);
        prop_assert_eq!(serial.data(), threaded.data());
    }

    /// Batched GEMM equals a per-slice loop over the single-matrix kernel,
    /// exactly (the batch banding routes every slice through the same
    /// packed kernel).
    #[test]
    fn batch_matmul_matches_per_slice_matmul(
        bsz in 1usize..6,
        m in 1usize..20,
        k in 1usize..48,
        n in 1usize..20,
        s in 0u32..1000,
    ) {
        let a = Tensor::from_fn([bsz, m, k], |i| ((i as f32 * 0.61 + s as f32) * 0.17).sin());
        let b = Tensor::from_fn([bsz, k, n], |i| ((i as f32 * 0.43 + s as f32) * 0.29).cos());
        let c = ops::batch_matmul(&a, &b).unwrap();
        for i in 0..bsz {
            let ai = Tensor::from_vec(
                a.data()[i * m * k..(i + 1) * m * k].to_vec(), [m, k],
            ).unwrap();
            let bi = Tensor::from_vec(
                b.data()[i * k * n..(i + 1) * k * n].to_vec(), [k, n],
            ).unwrap();
            let ci = ops::matmul(&ai, &bi).unwrap();
            prop_assert_eq!(&c.data()[i * m * n..(i + 1) * m * n], ci.data());
        }
    }

    /// The im2col + packed-GEMM convolution agrees with a direct seven-loop
    /// convolution over randomized batch/channel/spatial shapes.
    #[test]
    fn conv_forward_matches_direct_reference(
        n in 1usize..4,
        c in 1usize..4,
        hw in 3usize..8,
        oc in 1usize..5,
        pad in 0usize..2,
        s in 0u32..100,
    ) {
        let cfg = Conv2dConfig::new(1, pad);
        let x = Tensor::from_fn([n, c, hw, hw], |i| ((i as f32 + s as f32) * 0.31).sin());
        let w = Tensor::from_fn([oc, c, 3, 3], |i| ((i as f32 * 0.7 + s as f32) * 0.19).cos());
        let y = ops::conv2d_forward(&x, &w, cfg).unwrap();
        let r = conv_reference(&x, &w, cfg);
        for (u, v) in y.data().iter().zip(r.data()) {
            prop_assert!((u - v).abs() <= 1e-4 * v.abs().max(1.0), "{u} vs {v}");
        }
    }

    /// Convolution forward output and data gradient are bitwise identical
    /// across thread caps (images are independent bands); the weight
    /// gradient folds per-band partials, so it matches to tolerance.
    #[test]
    fn conv_is_stable_across_thread_counts(
        n in 1usize..5,
        c in 1usize..3,
        hw in 4usize..8,
        oc in 1usize..4,
    ) {
        let cfg = Conv2dConfig::new(1, 1);
        let x = Tensor::from_fn([n, c, hw, hw], |i| ((i * 11 % 23) as f32 - 11.0) * 0.09);
        let w = Tensor::from_fn([oc, c, 3, 3], |i| ((i * 5 % 17) as f32 - 8.0) * 0.11);
        par::set_max_threads(1);
        let y1 = ops::conv2d_forward(&x, &w, cfg).unwrap();
        let dy = Tensor::from_fn(y1.shape().clone(), |i| ((i % 7) as f32 - 3.0) * 0.2);
        let (dx1, dw1) = ops::conv2d_backward(&x, &w, &dy, cfg).unwrap();
        par::set_max_threads(3);
        let y3 = ops::conv2d_forward(&x, &w, cfg).unwrap();
        let (dx3, dw3) = ops::conv2d_backward(&x, &w, &dy, cfg).unwrap();
        par::set_max_threads(0);
        prop_assert_eq!(y1.data(), y3.data());
        prop_assert_eq!(dx1.data(), dx3.data());
        for (u, v) in dw1.data().iter().zip(dw3.data()) {
            prop_assert!((u - v).abs() <= 1e-4 * v.abs().max(1.0), "{u} vs {v}");
        }
    }
}

/// Elementwise, softmax and norm kernels band their output across threads;
/// each element/row is produced wholly by one band, so results are bitwise
/// identical across thread caps even on tensors large enough to fan out.
#[test]
fn elementwise_and_row_kernels_are_thread_invariant() {
    let big = Tensor::from_fn([600_000], |i| ((i * 31 % 101) as f32 - 50.0) * 0.04);
    let big2 = Tensor::from_fn([600_000], |i| ((i * 17 % 97) as f32 - 48.0) * 0.05);
    let rows = Tensor::from_fn([160, 512], |i| ((i * 13 % 89) as f32 - 44.0) * 0.06);
    par::set_max_threads(1);
    let add1 = ops::add(&big, &big2).unwrap();
    let relu1 = ops::relu_forward(&big);
    let sig1 = ops::sigmoid_forward(&big);
    let sm1 = ops::softmax(&rows).unwrap();
    let (ln1, _) = ops::layer_norm_forward(
        &rows,
        &Tensor::ones([512]),
        &Tensor::zeros([512]),
        1e-5,
    )
    .unwrap();
    par::set_max_threads(4);
    let add4 = ops::add(&big, &big2).unwrap();
    let relu4 = ops::relu_forward(&big);
    let sig4 = ops::sigmoid_forward(&big);
    let sm4 = ops::softmax(&rows).unwrap();
    let (ln4, _) = ops::layer_norm_forward(
        &rows,
        &Tensor::ones([512]),
        &Tensor::zeros([512]),
        1e-5,
    )
    .unwrap();
    par::set_max_threads(0);
    assert_eq!(add1, add4);
    assert_eq!(relu1, relu4);
    assert_eq!(sig1, sig4);
    assert_eq!(sm1, sm4);
    assert_eq!(ln1, ln4);
}
