//! Property-based tests over the chaos harness's determinism contract:
//! the fault schedule is a pure, order-independent function of the seed;
//! raising fault rates never decreases the recovery count; and goodput can
//! never exceed throughput.

use proptest::prelude::*;
use tbd_graph::{GraphBuilder, Init, NodeId, Session};
use tbd_tensor::Tensor;
use tbd_train::{
    DefaultPolicy, FaultSpec, RecoveryPolicy, ReplayExactPolicy, ResilienceConfig,
    ResilientTrainer, RunOutcome, Sgd,
};

/// The same tiny dropout MLP the resilience unit tests train: cheap enough
/// for proptest cases, dropout-sensitive to the step counter.
fn build() -> (Session, NodeId, NodeId, NodeId) {
    let mut g = GraphBuilder::new();
    let x = g.input("x", [4, 8]);
    let w1 = g.parameter("fc1/w", [8, 16], Init::Xavier { fan_in: 8, fan_out: 16 });
    let b1 = g.parameter("fc1/b", [16], Init::Zeros);
    let h = g.matmul(x, w1).unwrap();
    let h = g.add_bias(h, b1).unwrap();
    let h = g.relu(h).unwrap();
    let h = g.dropout(h, 0.25).unwrap();
    let w2 = g.parameter("fc2/w", [16, 4], Init::Xavier { fan_in: 16, fan_out: 4 });
    let b2 = g.parameter("fc2/b", [4], Init::Zeros);
    let logits = g.matmul(h, w2).unwrap();
    let logits = g.add_bias(logits, b2).unwrap();
    let t = g.input("t", [4]);
    let loss = g.cross_entropy(logits, t).unwrap();
    (Session::new(g.finish(), 42), x, t, loss)
}

fn feeds(x: NodeId, t: NodeId) -> impl Fn(u64) -> Vec<(NodeId, Tensor)> {
    move |step| {
        let xs: Vec<f32> =
            (0..32u64).map(|i| tbd_distrib::unit(1234, 77, step * 64 + i) as f32 - 0.5).collect();
        let ts: Vec<f32> = (0..4u64).map(|i| ((step + i) % 4) as f32).collect();
        vec![(x, Tensor::from_vec(xs, [4, 8]).unwrap()), (t, Tensor::from_slice(&ts))]
    }
}

fn run_with(spec: FaultSpec, policy: impl RecoveryPolicy, steps: u64) -> RunOutcome {
    let (session, x, t, loss) = build();
    let cfg = ResilienceConfig::with_faults(spec);
    let mut trainer = ResilientTrainer::new(session, loss, Sgd::new(0.1), cfg, policy);
    trainer.run(steps, feeds(x, t), None).unwrap()
}

fn spec_from(seed: u64, rates: &[f64]) -> FaultSpec {
    FaultSpec {
        seed,
        crash_rate: rates[0],
        oom_rate: rates[1],
        spike_rate: rates[2],
        stall_rate: rates[3],
        corrupt_rate: rates[4],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fault schedule is a pure function of `(seed, step, retry)`:
    /// querying it in any order — or repeatedly — always agrees with a
    /// fresh forward enumeration of the same spec.
    #[test]
    fn schedule_is_seed_stable_and_order_independent(
        seed in 0u64..u64::MAX,
        rates in prop::collection::vec(0.0f64..0.5, 5),
    ) {
        let spec = spec_from(seed, &rates);
        let forward: Vec<_> =
            (0..64u64).flat_map(|s| (0..4u32).map(move |r| (s, r))).collect();
        let draws: Vec<_> = forward.iter().map(|&(s, r)| spec.fault_at(s, r)).collect();
        // Reverse order, duplicate queries, a fresh identical spec: all agree.
        for (i, &(s, r)) in forward.iter().enumerate().rev() {
            prop_assert_eq!(spec.fault_at(s, r), draws[i]);
            prop_assert_eq!(spec_from(seed, &rates).fault_at(s, r), draws[i]);
        }
    }

    /// Threshold sampling is monotone: scaling every rate up can only add
    /// faults to the schedule, never remove or change one.
    #[test]
    fn schedule_is_monotone_in_rates(
        seed in 0u64..u64::MAX,
        rates in prop::collection::vec(0.0f64..0.3, 5),
        factor in 1.0f64..4.0,
    ) {
        let base = spec_from(seed, &rates);
        let scaled = base.scaled(factor);
        for step in 0..64u64 {
            for retry in 0..4u32 {
                if let Some(kind) = base.fault_at(step, retry) {
                    // The scaled schedule faults here too, with a kind of
                    // equal or higher injection priority.
                    let scaled_kind = scaled.fault_at(step, retry);
                    prop_assert!(scaled_kind.is_some());
                    prop_assert!(scaled_kind.unwrap().index() <= kind.index());
                }
            }
        }
    }
}

proptest! {
    // Full trainer runs are milliseconds each but still the expensive
    // case; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Raising fault rates never decreases `recoveries_total`: every fault
    /// gets exactly one recovery and the per-(step, retry) draws are fixed,
    /// so a superset of faults yields a superset of recoveries.
    #[test]
    fn recoveries_are_monotone_in_rates(
        seed in 0u64..1000,
        rates in prop::collection::vec(0.0f64..0.15, 5),
        factor in 1.0f64..3.0,
    ) {
        let base = spec_from(seed, &rates);
        let low = run_with(base, ReplayExactPolicy::default(), 10);
        let high = run_with(base.scaled(factor), ReplayExactPolicy::default(), 10);
        prop_assert!(high.recoveries >= low.recoveries,
            "recoveries fell from {} to {} when rates scaled {factor}x", low.recoveries, high.recoveries);
        prop_assert_eq!(low.recoveries, low.faults_injected);
        prop_assert_eq!(high.recoveries, high.faults_injected);
    }

    /// Goodput counts only useful, non-skipped work over the same clock as
    /// throughput, so it can never exceed it — under either policy.
    #[test]
    fn goodput_never_exceeds_throughput(
        seed in 0u64..1000,
        rates in prop::collection::vec(0.0f64..0.4, 5),
        policy_pick in 0u8..2,
    ) {
        let spec = spec_from(seed, &rates);
        let out = if policy_pick == 1 {
            run_with(spec, ReplayExactPolicy::default(), 8)
        } else {
            run_with(spec, DefaultPolicy::default(), 8)
        };
        prop_assert!(out.goodput() <= out.throughput() + 1e-12,
            "goodput {} > throughput {}", out.goodput(), out.throughput());
        prop_assert_eq!(out.useful_steps, 8, "the loop always completes every step");
    }
}
