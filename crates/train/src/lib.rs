//! Training machinery for the TBD reproduction.
//!
//! * [`optim`] — SGD / momentum / Adam optimizers over graph [`Session`]s,
//!   plus the WGAN weight-clipping rule;
//! * [`trainer`] — generic supervised training loops;
//! * [`metrics`] — the accuracy measures of the paper's Fig. 2: top-k
//!   classification accuracy, BLEU, word error rate, game score;
//! * [`convergence`] — calibrated accuracy-versus-time curves regenerating
//!   Fig. 2 at paper scale (see `DESIGN.md`, substitution 4);
//! * [`a3c`] — an asynchronous advantage actor-critic trainer that plays
//!   the real [`tbd_data::Pong`] environment across worker threads;
//! * [`checkpoint`] — hardened, checksummed weight checkpoints with atomic
//!   writes and typed load errors;
//! * [`resilience`] — the deterministic fault-injection and recovery loop
//!   (chaos harness) built on the checkpoint layer.
//!
//! [`Session`]: tbd_graph::Session

pub mod a3c;
pub mod checkpoint;
pub mod convergence;
pub mod metrics;
pub mod optim;
pub mod resilience;
pub mod schedule;
pub mod trainer;

pub use checkpoint::{CheckpointError, LoadReport};
pub use convergence::{ConvergenceCurve, ConvergenceModel};
pub use resilience::{
    param_hash, plan_degradation, DefaultPolicy, DegradationLadder, DegradationOutcome, FaultKind,
    FaultSpec, RecoveryAction, RecoveryPolicy, ReplayExactPolicy, ResilienceConfig,
    ResilientTrainer, RunOutcome,
};
pub use metrics::{bleu, edit_distance, top_k_accuracy, word_error_rate};
pub use optim::{Adam, Momentum, Optimizer, Sgd};
pub use schedule::{Constant, InverseSqrt, Schedule, WarmupStepDecay};
pub use trainer::Trainer;
