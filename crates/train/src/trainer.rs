//! Generic supervised training loops.

use crate::Optimizer;
use tbd_graph::{GraphError, NodeId, Session};
use tbd_tensor::Tensor;

/// Drives a [`Session`] through forward/backward/update iterations.
///
/// # Examples
///
/// ```
/// use tbd_graph::{GraphBuilder, Init, Session};
/// use tbd_train::{Sgd, Trainer};
/// use tbd_tensor::Tensor;
///
/// # fn main() -> Result<(), tbd_graph::GraphError> {
/// let mut g = GraphBuilder::new();
/// let x = g.input("x", [2, 2]);
/// let w = g.parameter("w", [2, 1], Init::Xavier { fan_in: 2, fan_out: 1 });
/// let y = g.matmul(x, w)?;
/// let t = g.input("t", [2, 1]);
/// let d = g.sub(y, t)?;
/// let sq = g.mul(d, d)?;
/// let loss = g.mean_all(sq)?;
/// let session = Session::new(g.finish(), 0);
///
/// let mut trainer = Trainer::new(session, loss, Sgd::new(0.1));
/// let feeds = vec![
///     (x, Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2])?),
///     (t, Tensor::from_vec(vec![1.0, -1.0], [2, 1])?),
/// ];
/// let first = trainer.step(&feeds)?;
/// for _ in 0..50 {
///     trainer.step(&feeds)?;
/// }
/// assert!(trainer.last_loss() < first);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Trainer<O> {
    session: Session,
    loss: NodeId,
    optimizer: O,
    last_loss: f32,
    steps: usize,
}

impl<O: Optimizer> Trainer<O> {
    /// Creates a trainer around a session, its scalar loss node and an
    /// optimizer.
    pub fn new(session: Session, loss: NodeId, optimizer: O) -> Self {
        Trainer { session, loss, optimizer, last_loss: f32::NAN, steps: 0 }
    }

    /// The wrapped session (for evaluation passes).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the wrapped session.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Loss of the most recent step (NaN before the first step).
    pub fn last_loss(&self) -> f32 {
        self.last_loss
    }

    /// Number of optimization steps taken.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Mutable access to the optimizer (e.g. to apply a learning-rate
    /// schedule between steps).
    pub fn optimizer_mut(&mut self) -> &mut O {
        &mut self.optimizer
    }

    /// Runs one forward/backward/update step and returns the loss.
    ///
    /// # Errors
    ///
    /// Propagates graph-execution errors (bad feeds, kernel failures).
    pub fn step(&mut self, feeds: &[(NodeId, Tensor)]) -> Result<f32, GraphError> {
        let run = self.session.forward(feeds)?;
        let loss = run.scalar(self.loss).ok_or(GraphError::ValueNotComputed(self.loss.index()))?;
        let grads = self.session.backward(&run, self.loss, Tensor::scalar(1.0))?;
        self.optimizer.step(&mut self.session, &grads);
        self.last_loss = loss;
        self.steps += 1;
        Ok(loss)
    }

    /// Trains for `steps` iterations, drawing feeds from `next_batch`, and
    /// returns the per-step losses.
    ///
    /// # Errors
    ///
    /// Propagates graph-execution errors.
    pub fn run(
        &mut self,
        steps: usize,
        mut next_batch: impl FnMut(usize) -> Vec<(NodeId, Tensor)>,
    ) -> Result<Vec<f32>, GraphError> {
        let mut losses = Vec::with_capacity(steps);
        for i in 0..steps {
            let feeds = next_batch(i);
            losses.push(self.step(&feeds)?);
        }
        Ok(losses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Momentum, Sgd};
    use tbd_graph::{GraphBuilder, Init};

    fn classification_session() -> (Session, NodeId, NodeId, NodeId) {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [8, 2]);
        let w = g.parameter("w", [2, 2], Init::Xavier { fan_in: 2, fan_out: 2 });
        let b = g.parameter("b", [2], Init::Zeros);
        let h = g.matmul(x, w).unwrap();
        let logits = g.add_bias(h, b).unwrap();
        let t = g.input("t", [8]);
        let loss = g.cross_entropy(logits, t).unwrap();
        (Session::new(g.finish(), 3), x, t, loss)
    }

    fn linearly_separable_batch() -> (Tensor, Tensor) {
        // Class 0 in the left half-plane, class 1 in the right.
        let mut xs = Vec::new();
        let mut ts = Vec::new();
        for i in 0..8 {
            let side = if i % 2 == 0 { -1.0 } else { 1.0 };
            xs.push(side * (1.0 + i as f32 * 0.1));
            xs.push(i as f32 * 0.05);
            ts.push(if side < 0.0 { 0.0 } else { 1.0 });
        }
        (Tensor::from_vec(xs, [8, 2]).unwrap(), Tensor::from_slice(&ts))
    }

    #[test]
    fn trainer_reduces_classification_loss() {
        let (session, x, t, loss) = classification_session();
        let mut trainer = Trainer::new(session, loss, Sgd::new(0.5));
        let (xb, tb) = linearly_separable_batch();
        let losses = trainer
            .run(60, |_| vec![(x, xb.clone()), (t, tb.clone())])
            .unwrap();
        assert!(losses[59] < losses[0] * 0.2, "{} -> {}", losses[0], losses[59]);
        assert_eq!(trainer.steps(), 60);
    }

    #[test]
    fn momentum_trainer_also_converges() {
        let (session, x, t, loss) = classification_session();
        let mut trainer = Trainer::new(session, loss, Momentum::new(0.2, 0.9));
        let (xb, tb) = linearly_separable_batch();
        let losses = trainer
            .run(60, |_| vec![(x, xb.clone()), (t, tb.clone())])
            .unwrap();
        assert!(losses[59] < losses[0]);
    }

    #[test]
    fn last_loss_is_nan_before_training() {
        let (session, _, _, loss) = classification_session();
        let trainer = Trainer::new(session, loss, Sgd::new(0.1));
        assert!(trainer.last_loss().is_nan());
    }
}
