//! Deterministic fault injection and recovery around the trainer — the
//! chaos harness.
//!
//! The paper's apparatus measures healthy runs; this module exercises the
//! failure modes a production stack must survive (worker crashes, allocator
//! OOM, non-finite losses, data-loader stalls, corrupted checkpoints) and
//! proves the recovery machinery correct by *bit-exactness*: under the
//! [`ReplayExactPolicy`] a faulted run finishes with parameters bitwise
//! identical to the fault-free run.
//!
//! # Determinism
//!
//! Faults are scheduled by the same counter-based SplitMix64 scheme as
//! `tbd-distrib::fault`: whether attempt `retry` of logical step `step`
//! faults is a pure function of `(seed, kind, step, retry)` via
//! [`tbd_distrib::unit`]. Draws are order-independent and bit-stable, so a
//! given seed produces the identical fault schedule no matter the thread
//! count or evaluation order — which is what makes chaos reports
//! digest-stable across `intra_op_threads` settings.
//!
//! Raising any fault rate can only turn clean attempts into faulted ones
//! (threshold sampling `unit(…) < rate`), so `recoveries_total` is monotone
//! non-decreasing in the rates — a property test pins this.
//!
//! # Recovery taxonomy
//!
//! | Fault                  | Default policy        | Replay-exact policy |
//! |------------------------|-----------------------|---------------------|
//! | worker crash           | restore + replay      | restore + replay    |
//! | allocator OOM          | degrade via memopt    | degrade via memopt  |
//! | non-finite loss        | skip batch            | recompute batch     |
//! | data-loader stall      | wait + retry          | wait + retry        |
//! | corrupted checkpoint   | rewrite from live     | rewrite from live   |
//!
//! Every action except *skip batch* preserves the bitwise parameter
//! trajectory: restore/replay rewinds the dropout step counter through the
//! hardened checkpoint (see [`crate::checkpoint`]); recompute rewinds only
//! the counter; degrade/wait/rewrite never touch parameters. Skipping a
//! batch intentionally diverges (the update is dropped), which is why the
//! headline bit-exactness test runs under [`ReplayExactPolicy`].
//!
//! Time is simulated: every execution, checkpoint write, restore, replay,
//! stall and backoff charges a deterministic number of seconds to a logical
//! clock, which also timestamps the [`TraceEvent`]s the harness emits on
//! the spine (`EventKind::Fault` / `Recovery` / `Checkpoint`, executor
//! layer, track [`RESILIENCE_TRACK`]). **Goodput** — useful samples over
//! total simulated time — is throughput net of replayed, skipped and
//! wasted work, and can never exceed it.

use crate::checkpoint::{self, CheckpointError};
use crate::Optimizer;
use tbd_distrib::{mix64, unit};
use tbd_frameworks::Framework;
use tbd_gpusim::GpuSpec;
use tbd_graph::trace::{value_hash, EventKind, TraceEvent, TraceLayer, TraceRecorder};
use tbd_graph::{GraphError, NodeId, Op, Session};
use tbd_memopt::{profile_with_strategy, OptimizedProfile, Strategy};
use tbd_models::ModelKind;
use tbd_tensor::Tensor;

/// Executor-layer track carrying the resilience events (clear of the wave
/// scheduler's per-thread tracks and the allocator's memory track).
pub const RESILIENCE_TRACK: u32 = 9;

/// The faults the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The worker process dies; all live state is lost.
    WorkerCrash,
    /// The allocator rejects the iteration's working set.
    AllocOom,
    /// The loss comes back NaN/Inf (numeric blow-up or corrupt input).
    LossSpike,
    /// The data loader stalls and delivers the batch late.
    DataStall,
    /// The last written checkpoint is corrupted on storage.
    CorruptCheckpoint,
}

impl FaultKind {
    /// All kinds, in injection-priority order (most severe first: when
    /// several kinds fire on the same attempt, the first wins).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::WorkerCrash,
        FaultKind::AllocOom,
        FaultKind::DataStall,
        FaultKind::CorruptCheckpoint,
        FaultKind::LossSpike,
    ];

    /// Stable label used in trace args, metrics series and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::WorkerCrash => "worker-crash",
            FaultKind::AllocOom => "alloc-oom",
            FaultKind::LossSpike => "loss-spike",
            FaultKind::DataStall => "data-stall",
            FaultKind::CorruptCheckpoint => "corrupt-checkpoint",
        }
    }

    /// Position in [`FaultKind::ALL`].
    pub fn index(self) -> usize {
        FaultKind::ALL.iter().position(|k| *k == self).expect("listed kind")
    }

    /// RNG stream for this kind, distinct from `tbd-distrib::fault`'s
    /// streams 1–5 so a shared seed never correlates cluster stragglers
    /// with trainer faults.
    fn stream(self) -> u64 {
        11 + self.index() as u64
    }
}

/// Extra streams for fault parameters (not occurrence).
const STREAM_STALL_DURATION: u64 = 21;
const STREAM_CORRUPT_SITE: u64 = 22;

/// Seeded per-kind fault rates. All draws are pure functions of
/// `(seed, kind, step, retry)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Root seed; the whole fault schedule is a pure function of it.
    pub seed: u64,
    /// Per-attempt probability of a worker crash.
    pub crash_rate: f64,
    /// Per-attempt probability of an allocator OOM.
    pub oom_rate: f64,
    /// Per-attempt probability of a non-finite loss.
    pub spike_rate: f64,
    /// Per-attempt probability of a data-loader stall.
    pub stall_rate: f64,
    /// Per-attempt probability of checkpoint corruption.
    pub corrupt_rate: f64,
}

impl FaultSpec {
    /// No faults at all (the fault-free twin of a chaos run).
    pub fn none(seed: u64) -> Self {
        FaultSpec { seed, crash_rate: 0.0, oom_rate: 0.0, spike_rate: 0.0, stall_rate: 0.0, corrupt_rate: 0.0 }
    }

    /// A representative mildly hostile environment: a few percent of
    /// attempts fault, every kind represented.
    pub fn mild(seed: u64) -> Self {
        FaultSpec {
            seed,
            crash_rate: 0.04,
            oom_rate: 0.03,
            spike_rate: 0.05,
            stall_rate: 0.06,
            corrupt_rate: 0.03,
        }
    }

    /// An aggressive preset (roughly 4× [`FaultSpec::mild`]).
    pub fn heavy(seed: u64) -> Self {
        FaultSpec::mild(seed).scaled(4.0)
    }

    /// The rate configured for `kind`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::WorkerCrash => self.crash_rate,
            FaultKind::AllocOom => self.oom_rate,
            FaultKind::LossSpike => self.spike_rate,
            FaultKind::DataStall => self.stall_rate,
            FaultKind::CorruptCheckpoint => self.corrupt_rate,
        }
    }

    /// Every rate multiplied by `factor` (clamped to `[0, 1]`).
    pub fn scaled(&self, factor: f64) -> Self {
        let s = |r: f64| (r * factor).clamp(0.0, 1.0);
        FaultSpec {
            seed: self.seed,
            crash_rate: s(self.crash_rate),
            oom_rate: s(self.oom_rate),
            spike_rate: s(self.spike_rate),
            stall_rate: s(self.stall_rate),
            corrupt_rate: s(self.corrupt_rate),
        }
    }

    /// Counter key for attempt `retry` of logical step `step` — the same
    /// `(index << 8) | attempt` packing as `StragglerSpec::drops`.
    fn key(step: u64, retry: u32) -> u64 {
        (step << 8) | u64::from(retry & 0xff)
    }

    /// Which fault (if any) fires on attempt `retry` of step `step`.
    ///
    /// Order-independent: the answer is a pure function of the arguments,
    /// so schedules can be queried in any order (or twice) and always
    /// agree. Monotone: raising a rate can only add faults, never remove
    /// one (a superset of `(step, retry)` pairs exceeds the threshold).
    pub fn fault_at(&self, step: u64, retry: u32) -> Option<FaultKind> {
        let key = Self::key(step, retry);
        FaultKind::ALL
            .into_iter()
            .find(|k| unit(self.seed, k.stream(), key) < self.rate(*k))
    }

    /// Stall duration drawn for attempt `retry` of step `step`, seconds,
    /// in `[base, 2·base)`.
    pub fn stall_duration_s(&self, base_s: f64, step: u64, retry: u32) -> f64 {
        base_s * (1.0 + unit(self.seed, STREAM_STALL_DURATION, Self::key(step, retry)))
    }
}

/// Recovery actions a policy can take. Every action except
/// [`RecoveryAction::SkipBatch`] preserves the bitwise parameter
/// trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Restore the last good checkpoint (parameters, optimizer state and
    /// step counter) and replay the lost steps, then retry.
    RestoreReplay,
    /// Drop the poisoned batch without an update and move on.
    SkipBatch,
    /// Rewind the step counter and recompute the batch (the injected
    /// spike is transient; the replayed forward is bit-identical).
    Recompute,
    /// Re-plan the iteration's memory through `tbd-memopt`'s ladder
    /// (checkpointing → offload → batch halving) and retry.
    Degrade,
    /// Wait out the stall and retry.
    Wait,
    /// Verify the damaged checkpoint (checksum fails), rewrite it from
    /// live state and retry.
    RewriteCheckpoint,
}

impl RecoveryAction {
    /// Stable label used in trace args, metrics series and reports.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryAction::RestoreReplay => "restore-replay",
            RecoveryAction::SkipBatch => "skip-batch",
            RecoveryAction::Recompute => "recompute",
            RecoveryAction::Degrade => "degrade",
            RecoveryAction::Wait => "wait",
            RecoveryAction::RewriteCheckpoint => "rewrite-checkpoint",
        }
    }
}

/// Maps faults to recovery actions and paces retries. Policies are pure
/// (no internal state), so runs stay deterministic.
pub trait RecoveryPolicy {
    /// Action for `fault` on its `retry`-th attempt at the current step.
    fn decide(&self, fault: FaultKind, retry: u32) -> RecoveryAction;

    /// Backoff charged before the retried attempt, seconds. Exponential by
    /// default via the implementor's own base/factor.
    fn backoff_s(&self, retry: u32) -> f64;
}

/// Production-shaped policy: bounded-retry restore with exponential
/// backoff, batch skipping on non-finite loss, memopt degradation on OOM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefaultPolicy {
    /// Backoff before the first retry, seconds.
    pub backoff_base_s: f64,
    /// Multiplier per successive retry.
    pub backoff_factor: f64,
}

impl Default for DefaultPolicy {
    fn default() -> Self {
        DefaultPolicy { backoff_base_s: 0.05, backoff_factor: 2.0 }
    }
}

impl RecoveryPolicy for DefaultPolicy {
    fn decide(&self, fault: FaultKind, _retry: u32) -> RecoveryAction {
        match fault {
            FaultKind::WorkerCrash => RecoveryAction::RestoreReplay,
            FaultKind::AllocOom => RecoveryAction::Degrade,
            FaultKind::LossSpike => RecoveryAction::SkipBatch,
            FaultKind::DataStall => RecoveryAction::Wait,
            FaultKind::CorruptCheckpoint => RecoveryAction::RewriteCheckpoint,
        }
    }

    fn backoff_s(&self, retry: u32) -> f64 {
        self.backoff_base_s * self.backoff_factor.powi(retry as i32)
    }
}

/// Like [`DefaultPolicy`] but replaces batch skipping with deterministic
/// recomputation, so *every* recovery preserves the bitwise parameter
/// trajectory — the policy under which a faulted run must finish with
/// parameters identical to the fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReplayExactPolicy(pub DefaultPolicy);

impl RecoveryPolicy for ReplayExactPolicy {
    fn decide(&self, fault: FaultKind, retry: u32) -> RecoveryAction {
        match fault {
            FaultKind::LossSpike => RecoveryAction::Recompute,
            other => self.0.decide(other, retry),
        }
    }

    fn backoff_s(&self, retry: u32) -> f64 {
        self.0.backoff_s(retry)
    }
}

/// The model-level context OOM degradation re-plans against.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    /// Workload being trained.
    pub kind: ModelKind,
    /// Framework profile supplying memory planning and hints.
    pub framework: Framework,
    /// Device whose capacity the plan must fit.
    pub gpu: GpuSpec,
    /// Requested (possibly infeasible) mini-batch.
    pub batch: usize,
}

/// What the degradation ladder settled on.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationOutcome {
    /// Strategy that fits (possibly `Baseline` when nothing was wrong).
    pub strategy: Strategy,
    /// Mini-batch after any halving.
    pub batch: usize,
    /// Profile of the chosen plan; its `total_bytes` fits the device.
    pub profile: OptimizedProfile,
    /// Ladder rungs tried before one fit (1 = baseline fit directly).
    pub rungs_tried: u32,
}

/// Walks the degradation ladder until the footprint fits the device:
/// baseline → gradient checkpointing → activation offload (60 %, then
/// 90 %) → halve the batch and start over. Never aborts — returns `None`
/// only if even batch 1 with 90 % offload cannot fit (no real workload in
/// the zoo reaches that).
pub fn plan_degradation(ladder: &DegradationLadder) -> Option<DegradationOutcome> {
    let rungs = [
        Strategy::Baseline,
        Strategy::Checkpoint { segments: 8 },
        Strategy::Offload { fraction: 0.6 },
        Strategy::Offload { fraction: 0.9 },
    ];
    let mut batch = ladder.batch.max(1);
    let mut tried = 0u32;
    loop {
        if let Ok(model) = ladder.kind.build_full(batch) {
            let hints = ladder.framework.hints(ladder.kind, batch);
            for strategy in rungs {
                tried += 1;
                if let Ok(profile) =
                    profile_with_strategy(ladder.framework, &model, &ladder.gpu, hints, strategy)
                {
                    return Some(DegradationOutcome { strategy, batch, profile, rungs_tried: tried });
                }
            }
        }
        if batch == 1 {
            return None;
        }
        batch /= 2;
    }
}

/// Knobs of the resilience loop. All times are *simulated* seconds — they
/// drive the logical clock and the goodput accounting, never wall time.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Fault schedule.
    pub faults: FaultSpec,
    /// Useful steps between checkpoints.
    pub checkpoint_interval: u64,
    /// Faulted attempts tolerated per step before the fault draw is
    /// ignored and the step forced through (TCP-style eventual progress —
    /// the loop can never live-lock, even at rate 1.0).
    pub max_retries: u32,
    /// Simulated cost of one training step, seconds.
    pub iteration_s: f64,
    /// Checkpoint write bandwidth, bytes/second.
    pub checkpoint_write_bps: f64,
    /// Checkpoint read (restore) bandwidth, bytes/second.
    pub restore_read_bps: f64,
    /// Base data-loader stall, seconds (actual stall in `[base, 2·base)`).
    pub stall_base_s: f64,
    /// Simulated cost of one memopt re-planning pass, seconds per rung.
    pub replan_s: f64,
    /// Samples a step consumes (the throughput/goodput numerator unit).
    pub samples_per_step: u64,
    /// Model-level context for OOM degradation (optional: without it the
    /// Degrade action only charges re-planning time).
    pub ladder: Option<DegradationLadder>,
    /// When `true`, a corrupt-checkpoint fault is *detected* (checksum
    /// verified, read time charged) but not immediately healed — the
    /// corruption stays latent on storage, so a later crash must fall back
    /// through the checkpoint history. `false` (the default) heals on the
    /// spot, the production-shaped behaviour.
    pub defer_corrupt_heal: bool,
}

impl ResilienceConfig {
    /// Sensible defaults around a fault schedule: checkpoint every 5
    /// steps, 8 retries, 100 ms steps, 1 GB/s checkpoint I/O.
    pub fn with_faults(faults: FaultSpec) -> Self {
        ResilienceConfig {
            faults,
            checkpoint_interval: 5,
            max_retries: 8,
            iteration_s: 0.1,
            checkpoint_write_bps: 1e9,
            restore_read_bps: 2e9,
            stall_base_s: 0.2,
            replan_s: 0.05,
            samples_per_step: 32,
            ladder: None,
            defer_corrupt_heal: false,
        }
    }
}

/// How many checkpoints the trainer retains: the newest plus two fallbacks.
/// A restore scans newest → oldest for the first one whose checksum still
/// verifies, so a corrupted latest file costs replayed steps, never the run.
pub const CHECKPOINT_HISTORY: usize = 3;

/// What a resilient run did, with enough accounting to compute goodput.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Steps that completed and contributed to training (includes batches
    /// skipped by policy: the step is done even if its update was dropped).
    pub useful_steps: u64,
    /// Forward passes actually executed: useful + replayed + wasted.
    pub executed_steps: u64,
    /// Steps re-executed after a restore.
    pub replayed_steps: u64,
    /// Batches dropped by the skip-batch policy (no update applied).
    pub skipped_steps: u64,
    /// Faults injected, total.
    pub faults_injected: u64,
    /// Faults per kind, indexed like [`FaultKind::ALL`].
    pub faults_by_kind: [u64; 5],
    /// Recovery actions taken (one per fault; the loop never aborts).
    pub recoveries: u64,
    /// Steps that exhausted `max_retries` and were forced through.
    pub forced_through: u64,
    /// Restores that skipped past a corrupt newest checkpoint to an older
    /// valid one in the history (each costs extra replayed steps).
    pub fallback_restores: u64,
    /// Checkpoints written (including the initial one and rewrites).
    pub checkpoints_written: u64,
    /// Size of the last checkpoint, bytes.
    pub checkpoint_bytes: u64,
    /// Total simulated time spent in recovery (restores, replays, stalls,
    /// re-planning, backoff), seconds.
    pub recovery_time_s: f64,
    /// Total simulated run time, seconds.
    pub sim_time_s: f64,
    /// Samples per step (copied from the config for rate computation).
    pub samples_per_step: u64,
    /// Degradation plan chosen by the first OOM recovery, if any fired.
    pub degraded: Option<DegradationOutcome>,
    /// Loss of the last applied update (NaN if every batch was skipped).
    pub final_loss: f32,
    /// FNV digest over every parameter's name and bit pattern.
    pub param_hash: u64,
}

impl RunOutcome {
    /// Executed samples per simulated second (all work, lost or not).
    pub fn throughput(&self) -> f64 {
        if self.sim_time_s > 0.0 {
            (self.executed_steps * self.samples_per_step) as f64 / self.sim_time_s
        } else {
            0.0
        }
    }

    /// Useful samples per simulated second — throughput net of replayed
    /// and wasted work. `useful_steps − skipped_steps ≤ executed_steps`
    /// by construction, so goodput can never exceed throughput.
    pub fn goodput(&self) -> f64 {
        if self.sim_time_s > 0.0 {
            let useful = self.useful_steps.saturating_sub(self.skipped_steps);
            (useful * self.samples_per_step) as f64 / self.sim_time_s
        } else {
            0.0
        }
    }

    /// Share of the simulated run spent in recovery (restores, replays,
    /// stalls, re-planning, backoff), or `None` for a zero-duration run —
    /// the recovery-overhead accounting the diagnosis engine consumes.
    pub fn recovery_fraction(&self) -> Option<f64> {
        if self.sim_time_s > 0.0 && self.sim_time_s.is_finite() {
            Some(self.recovery_time_s / self.sim_time_s)
        } else {
            None
        }
    }
}

/// Order-stable FNV digest over every parameter of a session: name bytes
/// then the bitwise [`value_hash`] of the tensor. Two sessions hash equal
/// iff their parameters are bitwise identical (and identically named).
pub fn param_hash(session: &Session) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mix = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (id, _) in session.graph().params() {
        let name = match &session.graph().node(*id).op {
            Op::Parameter { name } => name.clone(),
            _ => continue,
        };
        if let Some(t) = session.param(*id) {
            mix(&mut h, name.as_bytes());
            mix(&mut h, &value_hash(t.data()).to_le_bytes());
        }
    }
    h
}

/// In-memory checkpoint: serialized bytes plus the optimizer state cloned
/// at the same instant (optimizer state is not part of the v2 file format;
/// the harness snapshots it beside the bytes).
struct Stored<O> {
    bytes: Vec<u8>,
    optimizer: O,
    step: u64,
}

/// A fault-injecting, self-recovering training loop around a [`Session`].
///
/// See the module docs for the fault taxonomy and determinism contract.
pub struct ResilientTrainer<O: Optimizer + Clone, P: RecoveryPolicy = DefaultPolicy> {
    session: Session,
    loss: NodeId,
    optimizer: O,
    config: ResilienceConfig,
    policy: P,
}

impl<O: Optimizer + Clone, P: RecoveryPolicy> ResilientTrainer<O, P> {
    /// Wraps a session, its scalar loss node, an optimizer, the chaos
    /// configuration and a recovery policy.
    pub fn new(session: Session, loss: NodeId, optimizer: O, config: ResilienceConfig, policy: P) -> Self {
        ResilientTrainer { session, loss, optimizer, config, policy }
    }

    /// The wrapped session (for evaluation or hashing after a run).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Runs `target_steps` logical steps to completion, injecting faults
    /// and recovering per the policy — the loop never aborts on a fault.
    /// `feeds` must be a pure function of the logical step index: replay
    /// correctness (and therefore bit-exact recovery) depends on step `s`
    /// always seeing the same batch.
    ///
    /// # Errors
    ///
    /// Propagates genuine graph-execution errors (bad feeds, kernel
    /// failures) — those are bugs, not injected faults.
    pub fn run(
        &mut self,
        target_steps: u64,
        feeds: impl Fn(u64) -> Vec<(NodeId, Tensor)>,
        tracer: Option<&TraceRecorder>,
    ) -> Result<RunOutcome, GraphError> {
        let cfg = self.config.clone();
        let mut clock_s = 0.0f64;
        let mut out = RunOutcome {
            useful_steps: 0,
            executed_steps: 0,
            replayed_steps: 0,
            skipped_steps: 0,
            faults_injected: 0,
            faults_by_kind: [0; 5],
            recoveries: 0,
            forced_through: 0,
            fallback_restores: 0,
            checkpoints_written: 0,
            checkpoint_bytes: 0,
            recovery_time_s: 0.0,
            sim_time_s: 0.0,
            samples_per_step: cfg.samples_per_step,
            degraded: None,
            final_loss: f32::NAN,
            param_hash: 0,
        };

        // Initial checkpoint so the very first crash has somewhere to go.
        // The trainer retains up to [`CHECKPOINT_HISTORY`] snapshots,
        // newest last, so a corrupt latest file still leaves a way back.
        let mut history: Vec<Stored<O>> = Vec::new();
        let initial = self.write_checkpoint(&mut clock_s, &mut out, tracer);
        retain_history(&mut history, initial);

        for step in 0..target_steps {
            let mut retry = 0u32;
            loop {
                let forced = retry >= cfg.max_retries;
                let fault = if forced { None } else { cfg.faults.fault_at(step, retry) };
                let Some(kind) = fault else {
                    if forced {
                        out.forced_through += 1;
                    }
                    // Clean (or forced) execution of the step.
                    let batch = feeds(step);
                    let run = self.session.forward(&batch)?;
                    let loss = run
                        .scalar(self.loss)
                        .ok_or(GraphError::ValueNotComputed(self.loss.index()))?;
                    let grads = self.session.backward(&run, self.loss, Tensor::scalar(1.0))?;
                    self.optimizer.step(&mut self.session, &grads);
                    clock_s += cfg.iteration_s;
                    out.executed_steps += 1;
                    out.useful_steps += 1;
                    out.final_loss = loss;
                    if cfg.checkpoint_interval > 0 && (step + 1) % cfg.checkpoint_interval == 0 {
                        let fresh = self.write_checkpoint(&mut clock_s, &mut out, tracer);
                        retain_history(&mut history, fresh);
                    }
                    break;
                };

                out.faults_injected += 1;
                out.faults_by_kind[kind.index()] += 1;
                emit(
                    tracer,
                    TraceEvent::instant(
                        format!("fault/{}", kind.label()),
                        TraceLayer::Executor,
                        EventKind::Fault,
                        clock_s * 1e6,
                    )
                    .on_track(RESILIENCE_TRACK)
                    .with_arg("fault", kind.label())
                    .with_arg("step", step)
                    .with_arg("retry", u64::from(retry)),
                );

                let action = self.policy.decide(kind, retry);
                let recovery_start_s = clock_s;
                let mut replayed_now = 0u64;
                match action {
                    RecoveryAction::RestoreReplay => {
                        // The crash destroyed live state. Scan the history
                        // newest → oldest for the first checkpoint whose
                        // checksum still verifies: a corrupt latest file
                        // costs extra replayed steps, never the run.
                        let back = history
                            .iter()
                            .rev()
                            .position(|s| checkpoint::verify(&s.bytes).is_ok());
                        let restored = match back {
                            Some(back) => {
                                if back > 0 {
                                    out.fallback_restores += 1;
                                }
                                &history[history.len() - 1 - back]
                            }
                            None => {
                                // Every retained checkpoint is corrupt:
                                // heal from live state (params are still
                                // intact in this simulated crash).
                                let fresh =
                                    self.write_checkpoint(&mut clock_s, &mut out, tracer);
                                retain_history(&mut history, fresh);
                                history.last().expect("just pushed")
                            }
                        };
                        checkpoint::load(&mut self.session, restored.bytes.as_slice())
                            .expect("verified checkpoint loads");
                        self.optimizer = restored.optimizer.clone();
                        clock_s += restored.bytes.len() as f64 / cfg.restore_read_bps;
                        let restored_step = restored.step;
                        // Replay the steps lost since that checkpoint.
                        for lost in restored_step..step {
                            let batch = feeds(lost);
                            let run = self.session.forward(&batch)?;
                            let loss = run
                                .scalar(self.loss)
                                .ok_or(GraphError::ValueNotComputed(self.loss.index()))?;
                            let grads =
                                self.session.backward(&run, self.loss, Tensor::scalar(1.0))?;
                            self.optimizer.step(&mut self.session, &grads);
                            out.final_loss = loss;
                            clock_s += cfg.iteration_s;
                            out.executed_steps += 1;
                            out.replayed_steps += 1;
                            replayed_now += 1;
                        }
                    }
                    RecoveryAction::SkipBatch => {
                        // The batch was processed (forward ran, dropout
                        // stream advanced) but its non-finite update is
                        // dropped. Intentionally diverges from the
                        // fault-free trajectory.
                        let batch = feeds(step);
                        let _ = self.session.forward(&batch)?;
                        clock_s += cfg.iteration_s;
                        out.executed_steps += 1;
                        out.skipped_steps += 1;
                    }
                    RecoveryAction::Recompute => {
                        // The poisoned attempt is discarded wholesale: the
                        // forward ran and is thrown away, and the dropout
                        // counter rewinds so the retry draws the same
                        // streams the fault-free run would.
                        let before = self.session.step_count();
                        let batch = feeds(step);
                        let _ = self.session.forward(&batch)?;
                        self.session.set_step_count(before);
                        clock_s += cfg.iteration_s;
                        out.executed_steps += 1;
                    }
                    RecoveryAction::Degrade => {
                        if let Some(ladder) = cfg.ladder.as_ref() {
                            if out.degraded.is_none() {
                                out.degraded = plan_degradation(ladder);
                            }
                            let rungs =
                                out.degraded.as_ref().map_or(1, |d| d.rungs_tried).max(1);
                            clock_s += cfg.replan_s * f64::from(rungs);
                        } else {
                            clock_s += cfg.replan_s;
                        }
                    }
                    RecoveryAction::Wait => {
                        clock_s += cfg.faults.stall_duration_s(cfg.stall_base_s, step, retry);
                    }
                    RecoveryAction::RewriteCheckpoint => {
                        // Corrupt the newest stored bytes at a
                        // schedule-determined site and observe the typed
                        // checksum failure; unless healing is deferred,
                        // re-serialise live state on the spot.
                        let newest = history.last_mut().expect("initial checkpoint exists");
                        corrupt(&mut newest.bytes, cfg.faults.seed, step, retry);
                        let verified = checkpoint::verify(&newest.bytes);
                        debug_assert!(
                            matches!(verified, Err(CheckpointError::ChecksumMismatch { .. })),
                            "injected corruption must be caught by the checksum"
                        );
                        clock_s += newest.bytes.len() as f64 / cfg.restore_read_bps;
                        if !cfg.defer_corrupt_heal {
                            let fresh = self.write_checkpoint(&mut clock_s, &mut out, tracer);
                            retain_history(&mut history, fresh);
                        }
                    }
                }

                let retries_again = !matches!(action, RecoveryAction::SkipBatch);
                if retries_again {
                    clock_s += self.policy.backoff_s(retry);
                }
                out.recoveries += 1;
                let recovery_s = clock_s - recovery_start_s;
                out.recovery_time_s += recovery_s;
                let mut ev = TraceEvent::span(
                    format!("recovery/{}", action.label()),
                    TraceLayer::Executor,
                    EventKind::Recovery,
                    recovery_start_s * 1e6,
                    recovery_s * 1e6,
                )
                .on_track(RESILIENCE_TRACK)
                .with_arg("action", action.label())
                .with_arg("fault", kind.label())
                .with_arg("step", step)
                .with_arg("recovery_time_s", recovery_s);
                if replayed_now > 0 {
                    ev = ev.with_arg("replayed", replayed_now);
                }
                emit(tracer, ev);

                if retries_again {
                    retry += 1;
                } else {
                    out.useful_steps += 1;
                    break;
                }
            }
        }

        out.sim_time_s = clock_s;
        out.param_hash = param_hash(&self.session);
        emit(
            tracer,
            TraceEvent::span(
                "chaos/run",
                TraceLayer::Executor,
                EventKind::Iteration,
                0.0,
                clock_s * 1e6,
            )
            .on_track(RESILIENCE_TRACK)
            .with_arg("goodput", out.goodput())
            .with_arg("throughput", out.throughput())
            .with_arg("param_hash", out.param_hash)
            .with_arg("faults", out.faults_injected),
        );
        Ok(out)
    }

    /// Serialises the live session + optimizer into a fresh checkpoint,
    /// charging write time and emitting the spine event.
    fn write_checkpoint(
        &mut self,
        clock_s: &mut f64,
        out: &mut RunOutcome,
        tracer: Option<&TraceRecorder>,
    ) -> Stored<O> {
        let bytes = checkpoint::to_bytes(&self.session);
        *clock_s += bytes.len() as f64 / self.config.checkpoint_write_bps;
        out.checkpoints_written += 1;
        out.checkpoint_bytes = bytes.len() as u64;
        emit(
            tracer,
            TraceEvent::instant(
                "checkpoint/write",
                TraceLayer::Executor,
                EventKind::Checkpoint,
                *clock_s * 1e6,
            )
            .on_track(RESILIENCE_TRACK)
            .with_arg("bytes", bytes.len())
            .with_arg("step", self.session.step_count()),
        );
        Stored { bytes, optimizer: self.optimizer.clone(), step: self.session.step_count() }
    }
}

/// Appends `stored` as the newest checkpoint, dropping the oldest beyond
/// [`CHECKPOINT_HISTORY`].
fn retain_history<O>(history: &mut Vec<Stored<O>>, stored: Stored<O>) {
    history.push(stored);
    if history.len() > CHECKPOINT_HISTORY {
        history.remove(0);
    }
}

fn emit(tracer: Option<&TraceRecorder>, event: TraceEvent) {
    if let Some(t) = tracer {
        t.record(event);
    }
}

/// Flips one bit of the checkpoint body at a schedule-determined site
/// (past the 8-byte header, before the 8-byte checksum) so the corruption
/// is always detectable and always the same for a given seed.
fn corrupt(bytes: &mut [u8], seed: u64, step: u64, retry: u32) {
    if bytes.len() <= 16 {
        return;
    }
    let span = bytes.len() - 16;
    let site = 8 + (mix64(seed ^ STREAM_CORRUPT_SITE ^ FaultSpec::key(step, retry)) as usize) % span;
    bytes[site] ^= 0x40;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sgd;
    use tbd_graph::{GraphBuilder, Init};

    /// Tiny dropout MLP: the dropout node makes bit-exactness sensitive to
    /// the session step counter, which is exactly what replay must
    /// preserve.
    fn build() -> (Session, NodeId, NodeId, NodeId) {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [4, 8]);
        let w1 = g.parameter("fc1/w", [8, 16], Init::Xavier { fan_in: 8, fan_out: 16 });
        let b1 = g.parameter("fc1/b", [16], Init::Zeros);
        let h = g.matmul(x, w1).unwrap();
        let h = g.add_bias(h, b1).unwrap();
        let h = g.relu(h).unwrap();
        let h = g.dropout(h, 0.25).unwrap();
        let w2 = g.parameter("fc2/w", [16, 4], Init::Xavier { fan_in: 16, fan_out: 4 });
        let b2 = g.parameter("fc2/b", [4], Init::Zeros);
        let logits = g.matmul(h, w2).unwrap();
        let logits = g.add_bias(logits, b2).unwrap();
        let t = g.input("t", [4]);
        let loss = g.cross_entropy(logits, t).unwrap();
        let s = Session::new(g.finish(), 42);
        (s, x, t, loss)
    }

    /// Feeds as a pure function of the step index — the replay contract.
    fn feeds(x: NodeId, t: NodeId) -> impl Fn(u64) -> Vec<(NodeId, Tensor)> {
        move |step| {
            let mut xs = Vec::with_capacity(32);
            for i in 0..32u64 {
                let v = unit(1234, 77, step * 64 + i) as f32 - 0.5;
                xs.push(v);
            }
            let ts: Vec<f32> = (0..4u64).map(|i| ((step + i) % 4) as f32).collect();
            vec![
                (x, Tensor::from_vec(xs, [4, 8]).unwrap()),
                (t, Tensor::from_slice(&ts)),
            ]
        }
    }

    fn run_with(
        spec: FaultSpec,
        policy: impl RecoveryPolicy,
        steps: u64,
    ) -> RunOutcome {
        let (session, x, t, loss) = build();
        let cfg = ResilienceConfig::with_faults(spec);
        let mut trainer = ResilientTrainer::new(session, loss, Sgd::new(0.1), cfg, policy);
        trainer.run(steps, feeds(x, t), None).unwrap()
    }

    #[test]
    fn fault_free_run_trains_and_counts_nothing() {
        let out = run_with(FaultSpec::none(7), DefaultPolicy::default(), 12);
        assert_eq!(out.useful_steps, 12);
        assert_eq!(out.executed_steps, 12);
        assert_eq!(out.faults_injected, 0);
        assert_eq!(out.recoveries, 0);
        assert!(out.final_loss.is_finite());
        assert!(out.checkpoints_written >= 2, "initial + interval checkpoints");
        assert_eq!(out.throughput().to_bits(), out.goodput().to_bits());
    }

    #[test]
    fn replay_exact_recovery_is_bitwise_identical() {
        let clean = run_with(FaultSpec::none(7), ReplayExactPolicy::default(), 20);
        let faulted = run_with(FaultSpec::heavy(7), ReplayExactPolicy::default(), 20);
        assert!(faulted.faults_injected > 0, "heavy schedule must fault");
        assert_eq!(faulted.recoveries, faulted.faults_injected);
        assert_eq!(
            clean.param_hash, faulted.param_hash,
            "replay-exact recovery must preserve the bitwise parameter trajectory"
        );
        assert_eq!(clean.final_loss.to_bits(), faulted.final_loss.to_bits());
        assert_eq!(faulted.skipped_steps, 0, "replay-exact never skips");
    }

    #[test]
    fn skip_batch_policy_diverges_but_completes() {
        let mut spec = FaultSpec::none(3);
        spec.spike_rate = 0.4;
        let clean = run_with(FaultSpec::none(3), DefaultPolicy::default(), 16);
        let faulted = run_with(spec, DefaultPolicy::default(), 16);
        assert!(faulted.skipped_steps > 0);
        assert_eq!(faulted.useful_steps, 16, "skipped batches still complete the step");
        assert_ne!(
            clean.param_hash, faulted.param_hash,
            "dropping updates intentionally diverges"
        );
    }

    #[test]
    fn same_seed_same_outcome_bitwise() {
        let a = run_with(FaultSpec::heavy(99), ReplayExactPolicy::default(), 15);
        let b = run_with(FaultSpec::heavy(99), ReplayExactPolicy::default(), 15);
        assert_eq!(a, b, "chaos runs are pure functions of the seed");
    }

    #[test]
    fn rate_one_terminates_via_forced_progress() {
        let spec = FaultSpec::mild(5).scaled(1e9); // every rate clamps to 1.0
        let out = run_with(spec, ReplayExactPolicy::default(), 4);
        assert_eq!(out.useful_steps, 4);
        assert!(out.forced_through > 0, "max_retries must force progress");
    }

    #[test]
    fn goodput_never_exceeds_throughput() {
        for seed in 0..6 {
            let out = run_with(FaultSpec::heavy(seed), DefaultPolicy::default(), 10);
            assert!(
                out.goodput() <= out.throughput() + 1e-12,
                "seed {seed}: goodput {} > throughput {}",
                out.goodput(),
                out.throughput()
            );
        }
    }

    #[test]
    fn corrupted_latest_checkpoint_falls_back_to_an_older_valid_one() {
        // Deferred healing leaves the corruption latent on storage, so a
        // later crash finds the newest checkpoint failing its checksum and
        // must walk back through the history. The fallback replays more
        // steps but — under the replay-exact policy — lands on the same
        // bitwise parameter trajectory as the clean twin.
        let mut fallbacks_seen = 0u64;
        for seed in 0..24 {
            let mut spec = FaultSpec::none(seed);
            spec.corrupt_rate = 0.25;
            spec.crash_rate = 0.25;
            let clean = run_with(FaultSpec::none(seed), ReplayExactPolicy::default(), 20);
            let (session, x, t, loss) = build();
            let mut cfg = ResilienceConfig::with_faults(spec);
            cfg.defer_corrupt_heal = true;
            let mut trainer = ResilientTrainer::new(
                session,
                loss,
                Sgd::new(0.1),
                cfg,
                ReplayExactPolicy::default(),
            );
            let faulted = trainer.run(20, feeds(x, t), None).unwrap();
            fallbacks_seen += faulted.fallback_restores;
            assert_eq!(
                clean.param_hash, faulted.param_hash,
                "seed {seed}: falling back through the history must stay bit-exact"
            );
        }
        assert!(
            fallbacks_seen > 0,
            "no seed exercised the corrupt-latest → older-checkpoint fallback"
        );
    }

    #[test]
    fn immediate_heal_never_needs_the_fallback() {
        // The production default (heal on detection) keeps the newest
        // checkpoint valid, so restores never walk back.
        for seed in 0..8 {
            let out = run_with(FaultSpec::heavy(seed), ReplayExactPolicy::default(), 15);
            assert_eq!(out.fallback_restores, 0, "seed {seed}");
        }
    }

    #[test]
    fn corrupt_checkpoint_is_detected_and_healed() {
        let mut spec = FaultSpec::none(11);
        spec.corrupt_rate = 0.5;
        spec.crash_rate = 0.2;
        let clean = run_with(FaultSpec::none(11), ReplayExactPolicy::default(), 20);
        let faulted = run_with(spec, ReplayExactPolicy::default(), 20);
        assert!(faulted.faults_by_kind[FaultKind::CorruptCheckpoint.index()] > 0);
        assert_eq!(clean.param_hash, faulted.param_hash);
    }

    #[test]
    fn degradation_ladder_fits_infeasible_batch_on_p4000() {
        // ResNet-50 at batch 64 OOMs at baseline on the Quadro P4000
        // (Observation 11); the ladder must find a fitting plan without
        // aborting, and the plan must actually fit the device.
        let ladder = DegradationLadder {
            kind: ModelKind::ResNet50,
            framework: Framework::mxnet(),
            gpu: GpuSpec::quadro_p4000(),
            batch: 64,
        };
        let model = ladder.kind.build_full(64).unwrap();
        let hints = ladder.framework.hints(ladder.kind, 64);
        assert!(
            profile_with_strategy(ladder.framework, &model, &ladder.gpu, hints, Strategy::Baseline)
                .is_err(),
            "batch 64 must OOM at baseline for this test to mean anything"
        );
        let plan = plan_degradation(&ladder).expect("ladder never aborts");
        assert!(plan.profile.total_bytes <= ladder.gpu.memory_bytes);
        assert!(plan.rungs_tried > 1, "baseline OOMed, so a later rung must have fit");
        assert_ne!(plan.strategy, Strategy::Baseline);
    }

    #[test]
    fn fault_events_land_on_the_spine() {
        let (session, x, t, loss) = build();
        let cfg = ResilienceConfig::with_faults(FaultSpec::heavy(21));
        let mut trainer =
            ResilientTrainer::new(session, loss, Sgd::new(0.1), cfg, ReplayExactPolicy::default());
        let rec = TraceRecorder::shared();
        let out = trainer.run(10, feeds(x, t), Some(&rec)).unwrap();
        let events = rec.drain();
        let faults = events.iter().filter(|e| e.kind == EventKind::Fault).count() as u64;
        let recoveries = events.iter().filter(|e| e.kind == EventKind::Recovery).count() as u64;
        let checkpoints = events.iter().filter(|e| e.kind == EventKind::Checkpoint).count() as u64;
        assert_eq!(faults, out.faults_injected);
        assert_eq!(recoveries, out.recoveries);
        assert_eq!(checkpoints, out.checkpoints_written);
        assert!(events.iter().all(|e| e.deterministic), "logical clock only");
    }
}
