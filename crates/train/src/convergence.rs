//! Calibrated accuracy-versus-training-time curves (paper Fig. 2).
//!
//! Training the paper-scale models to convergence takes GPU-days to
//! GPU-weeks; per `DESIGN.md` (substitution 4) the *mechanics* of training
//! run for real at tiny scale while the full-scale learning curves are
//! generated from saturating models calibrated to the end-points the paper
//! reports: 75–80 % Top-1 for the ImageNet classifiers, BLEU ≈ 20 for the
//! Seq2Seq models, BLEU ≈ 24 for the Transformer, and a Pong score of
//! 19–20 for A3C.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tbd_models::ModelKind;

/// Shape of the learning curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveShape {
    /// Saturating exponential `v(t) = v∞ − (v∞ − v₀)·e^{−t/τ}` (supervised
    /// models).
    Exponential,
    /// Logistic curve (reinforcement learning: long plateau, sharp
    /// breakthrough, saturation — the classic Pong shape).
    Sigmoid,
}

/// One workload's calibrated convergence behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceModel {
    /// Workload name (e.g. `"ResNet-50 (MXNet)"`).
    pub label: String,
    /// Metric name (`"Top-1 accuracy"`, `"BLEU"`, `"game score"`).
    pub metric: &'static str,
    /// Initial metric value.
    pub start: f64,
    /// Asymptotic metric value.
    pub end: f64,
    /// Time constant (exponential) or midpoint (sigmoid), in hours.
    pub tau_hours: f64,
    /// Span the paper plots, in hours.
    pub total_hours: f64,
    /// Curve family.
    pub shape: CurveShape,
}

/// A sampled learning curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceCurve {
    /// Workload label.
    pub label: String,
    /// Sample times in hours.
    pub hours: Vec<f64>,
    /// Metric values at each time.
    pub values: Vec<f64>,
}

impl ConvergenceModel {
    /// The calibrated model for a `(workload, framework-name)` pair, or
    /// `None` when the paper's Fig. 2 does not plot it.
    pub fn for_workload(kind: ModelKind, framework: &str) -> Option<ConvergenceModel> {
        let m = |label: String, metric, start, end, tau, total, shape| ConvergenceModel {
            label,
            metric,
            start,
            end,
            tau_hours: tau,
            total_hours: total,
            shape,
        };
        let label = format!("{} ({framework})", kind.name());
        match (kind, framework) {
            (ModelKind::InceptionV3, "MXNet") => {
                Some(m(label, "Top-1 accuracy", 0.02, 0.78, 110.0, 600.0, CurveShape::Exponential))
            }
            (ModelKind::InceptionV3, "TensorFlow") => {
                Some(m(label, "Top-1 accuracy", 0.02, 0.76, 150.0, 600.0, CurveShape::Exponential))
            }
            (ModelKind::InceptionV3, "CNTK") => {
                Some(m(label, "Top-1 accuracy", 0.02, 0.74, 150.0, 600.0, CurveShape::Exponential))
            }
            (ModelKind::ResNet50, "MXNet") => {
                Some(m(label, "Top-1 accuracy", 0.02, 0.77, 85.0, 432.0, CurveShape::Exponential))
            }
            (ModelKind::ResNet50, "TensorFlow") => {
                Some(m(label, "Top-1 accuracy", 0.02, 0.755, 115.0, 432.0, CurveShape::Exponential))
            }
            (ModelKind::ResNet50, "CNTK") => {
                Some(m(label, "Top-1 accuracy", 0.02, 0.74, 110.0, 432.0, CurveShape::Exponential))
            }
            (ModelKind::Transformer, "TensorFlow") => {
                Some(m(label, "BLEU", 0.0, 24.0, 6.0, 32.0, CurveShape::Exponential))
            }
            (ModelKind::Seq2Seq, "TensorFlow") => {
                let label = format!("NMT ({framework})");
                Some(m(label, "BLEU", 0.0, 20.5, 1.0, 5.0, CurveShape::Exponential))
            }
            (ModelKind::Seq2Seq, "MXNet") => {
                let label = format!("Sockeye ({framework})");
                Some(m(label, "BLEU", 0.0, 19.5, 1.4, 5.0, CurveShape::Exponential))
            }
            (ModelKind::A3c, "MXNet") => {
                Some(m(label, "game score", -21.0, 19.5, 6.0, 15.0, CurveShape::Sigmoid))
            }
            _ => None,
        }
    }

    /// Metric value at `hours` of training (noise-free).
    pub fn value_at(&self, hours: f64) -> f64 {
        match self.shape {
            CurveShape::Exponential => {
                self.end - (self.end - self.start) * (-hours / self.tau_hours).exp()
            }
            CurveShape::Sigmoid => {
                let width = self.tau_hours / 4.0;
                self.start
                    + (self.end - self.start)
                        / (1.0 + (-(hours - self.tau_hours) / width).exp())
            }
        }
    }

    /// Samples the curve at `points` times with small measurement noise
    /// (seeded, deterministic).
    pub fn curve(&self, points: usize, seed: u64) -> ConvergenceCurve {
        let mut rng = StdRng::seed_from_u64(seed);
        let magnitude = (self.end - self.start).abs() * 0.015;
        let mut hours = Vec::with_capacity(points);
        let mut values = Vec::with_capacity(points);
        for i in 0..points {
            let t = self.total_hours * i as f64 / (points.max(2) - 1) as f64;
            let noise: f64 = rng.gen_range(-magnitude..=magnitude);
            hours.push(t);
            values.push(self.value_at(t) + if i == 0 { 0.0 } else { noise });
        }
        ConvergenceCurve { label: self.label.clone(), hours, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_models_reach_paper_accuracy() {
        // §3.3: Top-1 reaches 75–80 % for both classifiers.
        for fw in ["TensorFlow", "MXNet", "CNTK"] {
            for kind in [ModelKind::ResNet50, ModelKind::InceptionV3] {
                let m = ConvergenceModel::for_workload(kind, fw).unwrap();
                let v = m.value_at(m.total_hours);
                assert!((0.70..=0.80).contains(&v), "{} final {v}", m.label);
            }
        }
    }

    #[test]
    fn translation_models_reach_bleu_20ish() {
        let nmt = ConvergenceModel::for_workload(ModelKind::Seq2Seq, "TensorFlow").unwrap();
        assert!(nmt.value_at(5.0) > 19.0);
        let transformer =
            ConvergenceModel::for_workload(ModelKind::Transformer, "TensorFlow").unwrap();
        assert!(transformer.value_at(32.0) > 23.0);
    }

    #[test]
    fn a3c_matches_pong_19_to_20() {
        let m = ConvergenceModel::for_workload(ModelKind::A3c, "MXNet").unwrap();
        assert!(m.value_at(0.0) < -19.5, "start {}", m.value_at(0.0));
        let v = m.value_at(15.0);
        assert!((19.0..=20.0).contains(&v), "final {v}");
        // Sigmoid: still near the floor a quarter of the way in.
        assert!(m.value_at(2.0) < -15.0);
    }

    #[test]
    fn curves_are_monotone_up_to_noise() {
        let m = ConvergenceModel::for_workload(ModelKind::ResNet50, "MXNet").unwrap();
        let c = m.curve(50, 7);
        assert_eq!(c.hours.len(), 50);
        // The noise-free trend is monotone; tolerate the injected jitter.
        let final_avg = c.values[45..].iter().sum::<f64>() / 5.0;
        let early_avg = c.values[..5].iter().sum::<f64>() / 5.0;
        assert!(final_avg > early_avg);
    }

    #[test]
    fn unplotted_pairs_return_none() {
        assert!(ConvergenceModel::for_workload(ModelKind::Transformer, "MXNet").is_none());
        assert!(ConvergenceModel::for_workload(ModelKind::Wgan, "TensorFlow").is_none());
    }

    #[test]
    fn curves_are_deterministic_per_seed() {
        let m = ConvergenceModel::for_workload(ModelKind::A3c, "MXNet").unwrap();
        assert_eq!(m.curve(20, 1), m.curve(20, 1));
    }
}
