//! Evaluation metrics from the paper's Fig. 2: top-k classification
//! accuracy (image models), BLEU (translation), word error rate (speech)
//! and game score (reinforcement learning, tracked by the environment).

use std::collections::HashMap;
use tbd_tensor::Tensor;

/// Top-k accuracy of `logits` (`[n, classes]`) against integer `targets`.
///
/// The paper reports Top-1 and Top-5 for the image classifiers (§3.3).
///
/// # Panics
///
/// Panics if `logits` is not rank 2 or `targets.len()` differs from the row
/// count.
pub fn top_k_accuracy(logits: &Tensor, targets: &Tensor, k: usize) -> f64 {
    assert_eq!(logits.shape().rank(), 2, "logits must be [n, classes]");
    let (n, classes) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(targets.len(), n, "one target per row");
    if n == 0 {
        return 0.0;
    }
    let mut hits = 0;
    for row in 0..n {
        let target = targets.data()[row].round() as usize;
        let scores = &logits.data()[row * classes..(row + 1) * classes];
        let target_score = scores[target.min(classes - 1)];
        // Rank = how many classes score strictly higher.
        let rank = scores.iter().filter(|&&s| s > target_score).count();
        if rank < k {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

/// Levenshtein edit distance between two token sequences.
pub fn edit_distance(a: &[usize], b: &[usize]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ta) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &tb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ta != tb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Word error rate: `edit_distance / reference_length` (speech recognition).
pub fn word_error_rate(hypothesis: &[usize], reference: &[usize]) -> f64 {
    if reference.is_empty() {
        return if hypothesis.is_empty() { 0.0 } else { 1.0 };
    }
    edit_distance(hypothesis, reference) as f64 / reference.len() as f64
}

fn ngram_counts(tokens: &[usize], n: usize) -> HashMap<&[usize], usize> {
    let mut counts = HashMap::new();
    if tokens.len() >= n {
        for w in tokens.windows(n) {
            *counts.entry(w).or_insert(0) += 1;
        }
    }
    counts
}

/// Corpus BLEU with up to 4-gram precision and brevity penalty
/// (Papineni et al. 2002), the paper's translation metric. Returns a score
/// in `[0, 100]`.
pub fn bleu(hypotheses: &[Vec<usize>], references: &[Vec<usize>]) -> f64 {
    assert_eq!(hypotheses.len(), references.len(), "parallel corpora required");
    if hypotheses.is_empty() {
        return 0.0;
    }
    let max_n = 4;
    let mut log_precision_sum = 0.0;
    for n in 1..=max_n {
        let mut matched = 0usize;
        let mut total = 0usize;
        for (hyp, refr) in hypotheses.iter().zip(references) {
            let h = ngram_counts(hyp, n);
            let r = ngram_counts(refr, n);
            for (gram, &count) in &h {
                matched += count.min(*r.get(gram).unwrap_or(&0));
            }
            total += hyp.len().saturating_sub(n - 1);
        }
        if matched == 0 || total == 0 {
            return 0.0;
        }
        log_precision_sum += (matched as f64 / total as f64).ln();
    }
    let hyp_len: usize = hypotheses.iter().map(Vec::len).sum();
    let ref_len: usize = references.iter().map(Vec::len).sum();
    let brevity = if hyp_len >= ref_len {
        1.0
    } else {
        (1.0 - ref_len as f64 / hyp_len.max(1) as f64).exp()
    };
    100.0 * brevity * (log_precision_sum / max_n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top1_and_top5() {
        let logits = Tensor::from_vec(
            vec![
                0.1, 0.9, 0.0, 0.0, 0.0, 0.0, // target 1: top-1 hit
                0.5, 0.4, 0.3, 0.2, 0.1, 0.0, // target 4: rank 4 → top-5 hit only
            ],
            [2, 6],
        )
        .unwrap();
        let targets = Tensor::from_slice(&[1.0, 4.0]);
        assert_eq!(top_k_accuracy(&logits, &targets, 1), 0.5);
        assert_eq!(top_k_accuracy(&logits, &targets, 5), 1.0);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 3]), 1);
        assert_eq!(edit_distance(&[], &[1, 2]), 2);
        assert_eq!(edit_distance(&[5, 6], &[]), 2);
        // kitten → sitting in token form.
        assert_eq!(edit_distance(&[10, 8, 19, 19, 4, 13], &[18, 8, 19, 19, 8, 13, 6]), 3);
    }

    #[test]
    fn wer_is_normalized() {
        assert_eq!(word_error_rate(&[1, 2, 3], &[1, 2, 3]), 0.0);
        assert_eq!(word_error_rate(&[1, 2], &[1, 2, 3, 4]), 0.5);
        assert_eq!(word_error_rate(&[], &[]), 0.0);
        assert_eq!(word_error_rate(&[1], &[]), 1.0);
    }

    #[test]
    fn perfect_translation_scores_100() {
        let corpus = vec![vec![1, 2, 3, 4, 5, 6], vec![7, 8, 9, 10, 11]];
        let score = bleu(&corpus, &corpus);
        assert!((score - 100.0).abs() < 1e-6, "score {score}");
    }

    #[test]
    fn disjoint_translation_scores_0() {
        let hyp = vec![vec![1, 1, 1, 1, 1]];
        let refr = vec![vec![2, 2, 2, 2, 2]];
        assert_eq!(bleu(&hyp, &refr), 0.0);
    }

    #[test]
    fn partial_overlap_scores_between() {
        let hyp = vec![vec![1, 2, 3, 4, 9, 9]];
        let refr = vec![vec![1, 2, 3, 4, 5, 6]];
        let score = bleu(&hyp, &refr);
        assert!(score > 0.0 && score < 100.0, "score {score}");
    }

    #[test]
    fn brevity_penalty_punishes_short_hypotheses() {
        let refr = vec![vec![1, 2, 3, 4, 5, 6, 7, 8]];
        let full = bleu(&refr, &refr);
        let short = bleu(&[refr[0][..5].to_vec()], &refr);
        assert!(short < full);
    }
}
