//! Weight checkpointing: save and restore a session's parameters.
//!
//! The format is deliberately simple and self-contained (no external
//! dependencies): a magic header, then per parameter its name, shape and
//! little-endian f32 data. Parameters are matched by *name* on load, so a
//! checkpoint survives graph rebuilds (and batch-size changes) as long as
//! parameter names are stable — which the model zoo's scoped naming
//! guarantees.

use std::io::{self, Read, Write};
use tbd_graph::{Op, Session};
use tbd_tensor::Tensor;

const MAGIC: &[u8; 8] = b"TBDCKPT1";

/// Serialises every parameter of `session` into `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save<W: Write>(session: &Session, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    let params: Vec<_> = session
        .graph()
        .params()
        .iter()
        .filter_map(|(id, _)| {
            let name = match &session.graph().node(*id).op {
                Op::Parameter { name } => name.clone(),
                _ => return None,
            };
            session.param(*id).map(|t| (name, t.clone()))
        })
        .collect();
    writer.write_all(&(params.len() as u64).to_le_bytes())?;
    for (name, tensor) in params {
        let name_bytes = name.as_bytes();
        writer.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
        writer.write_all(name_bytes)?;
        let dims = tensor.shape().dims();
        writer.write_all(&(dims.len() as u32).to_le_bytes())?;
        for &d in dims {
            writer.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in tensor.data() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores parameters into `session` from a checkpoint written by
/// [`save`], matching by name. Returns the number of parameters loaded.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for a malformed checkpoint (bad
/// magic, truncated records, or a shape that disagrees with the session's
/// parameter of the same name) and propagates reader errors.
pub fn load<R: Read>(session: &mut Session, mut reader: R) -> io::Result<usize> {
    let bad = |message: &str| io::Error::new(io::ErrorKind::InvalidData, message.to_string());
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a TBD checkpoint"));
    }
    let mut u64buf = [0u8; 8];
    let mut u32buf = [0u8; 4];
    reader.read_exact(&mut u64buf)?;
    let count = u64::from_le_bytes(u64buf) as usize;
    // Name → node id index for the session's parameters.
    let by_name: std::collections::HashMap<String, tbd_graph::NodeId> = session
        .graph()
        .params()
        .iter()
        .filter_map(|(id, _)| match &session.graph().node(*id).op {
            Op::Parameter { name } => Some((name.clone(), *id)),
            _ => None,
        })
        .collect();
    let mut loaded = 0;
    for _ in 0..count {
        reader.read_exact(&mut u32buf)?;
        let name_len = u32::from_le_bytes(u32buf) as usize;
        if name_len > 1 << 20 {
            return Err(bad("implausible name length"));
        }
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("parameter name is not UTF-8"))?;
        reader.read_exact(&mut u32buf)?;
        let rank = u32::from_le_bytes(u32buf) as usize;
        if rank > 8 {
            return Err(bad("implausible rank"));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            reader.read_exact(&mut u64buf)?;
            dims.push(u64::from_le_bytes(u64buf) as usize);
        }
        let len: usize = dims.iter().product();
        if len > 1 << 30 {
            return Err(bad("implausible tensor size"));
        }
        let mut data = vec![0.0f32; len];
        let mut f32buf = [0u8; 4];
        for v in &mut data {
            reader.read_exact(&mut f32buf)?;
            *v = f32::from_le_bytes(f32buf);
        }
        if let Some(&id) = by_name.get(&name) {
            let tensor = Tensor::from_vec(data, dims.as_slice())
                .map_err(|_| bad("corrupt tensor record"))?;
            let slot = session.param_mut(id).expect("registered parameter");
            if slot.shape() != tensor.shape() {
                return Err(bad("checkpoint shape disagrees with the graph"));
            }
            *slot = tensor;
            loaded += 1;
        }
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::{GraphBuilder, Init};

    fn session() -> Session {
        let mut g = GraphBuilder::new();
        let w = g.parameter("layer/w", [3, 2], Init::Uniform { lo: -1.0, hi: 1.0 });
        let b = g.parameter("layer/b", [2], Init::Uniform { lo: -1.0, hi: 1.0 });
        let _ = (w, b);
        Session::new(g.finish(), 99)
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let donor = session();
        let mut buffer = Vec::new();
        save(&donor, &mut buffer).unwrap();
        // Different seed would give different weights; overwrite via load.
        let mut other = {
            let mut g = GraphBuilder::new();
            g.parameter("layer/w", [3, 2], Init::Zeros);
            g.parameter("layer/b", [2], Init::Zeros);
            Session::new(g.finish(), 1)
        };
        let loaded = load(&mut other, buffer.as_slice()).unwrap();
        assert_eq!(loaded, 2);
        for (a, b) in donor.snapshot().iter().zip(other.snapshot().iter()) {
            assert_eq!(a.1, b.1, "weights must round-trip bit-exactly");
        }
    }

    #[test]
    fn unknown_names_are_skipped() {
        let donor = session();
        let mut buffer = Vec::new();
        save(&donor, &mut buffer).unwrap();
        let mut g = GraphBuilder::new();
        g.parameter("different/name", [3, 2], Init::Zeros);
        let mut other = Session::new(g.finish(), 0);
        let loaded = load(&mut other, buffer.as_slice()).unwrap();
        assert_eq!(loaded, 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut s = session();
        let err = load(&mut s, b"NOTACKPT".as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let donor = session();
        let mut buffer = Vec::new();
        save(&donor, &mut buffer).unwrap();
        let mut g = GraphBuilder::new();
        g.parameter("layer/w", [2, 2], Init::Zeros); // wrong shape
        let mut other = Session::new(g.finish(), 0);
        assert!(load(&mut other, buffer.as_slice()).is_err());
    }

    #[test]
    fn truncated_checkpoints_error_instead_of_panicking() {
        let donor = session();
        let mut buffer = Vec::new();
        save(&donor, &mut buffer).unwrap();
        buffer.truncate(buffer.len() / 2);
        let mut other = session();
        assert!(load(&mut other, buffer.as_slice()).is_err());
    }
}
