//! Weight checkpointing: save and restore a session's parameters.
//!
//! The v2 format is self-contained (no external dependencies) and hardened
//! against the corruptions the chaos harness injects:
//!
//! ```text
//! magic "TBDCKPT2" · step u64 · param-count u64 · records … · fnv1a u64
//! ```
//!
//! Each record is `name-len u32 · name · rank u32 · dims u64… · f32 data`,
//! all little-endian. The trailing FNV-1a checksum covers everything between
//! the magic and itself, so truncation and bit-flips are detected before a
//! single weight is touched. The header also carries the session's
//! forward-pass counter: restoring it resumes the dropout streams exactly
//! where the saved run left them, which is what makes crash-replay recovery
//! bit-exact (see [`crate::resilience`]).
//!
//! Parameters are matched by *name* on load, so a checkpoint survives graph
//! rebuilds (and batch-size changes) as long as parameter names are stable —
//! which the model zoo's scoped naming guarantees. [`save_to_path`] writes
//! atomically (temp file + rename) so a crash mid-write never clobbers the
//! previous good checkpoint.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use tbd_graph::{Op, Session};
use tbd_graph::trace::fnv1a;
use tbd_tensor::Tensor;

const MAGIC: &[u8; 7] = b"TBDCKPT";
const VERSION: u8 = b'2';

/// Everything that can go wrong saving or loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying reader/writer/filesystem error.
    Io(io::Error),
    /// The file does not start with the `TBDCKPT` magic.
    BadMagic,
    /// The magic matched but the version byte is one we cannot read.
    UnsupportedVersion(u8),
    /// The stream ended before the declared records (or the checksum).
    Truncated,
    /// The trailing FNV-1a checksum disagrees with the payload.
    ChecksumMismatch { stored: u64, computed: u64 },
    /// A record is structurally implausible (giant name, rank, or tensor).
    Malformed(&'static str),
    /// A stored tensor's shape disagrees with the session's parameter of
    /// the same name.
    ShapeMismatch { name: String },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a TBD checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version byte 0x{v:02x}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint is truncated"),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:016x}, computed {computed:016x})"
            ),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::ShapeMismatch { name } => {
                write!(f, "checkpoint shape for `{name}` disagrees with the graph")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        // `read_exact` reports a short read as UnexpectedEof; surface that
        // as the typed truncation error so callers can tell it apart from
        // a genuinely failing disk.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CheckpointError::Truncated
        } else {
            CheckpointError::Io(e)
        }
    }
}

/// What [`load`] restored: how many parameters matched by name, and the
/// forward-pass counter the saved session had reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Parameters restored (records whose name matched a session parameter).
    pub loaded: usize,
    /// The saved session's step counter, already applied to the session.
    pub step: u64,
}

/// Serialises every parameter of `session` (plus its step counter) into a
/// byte vector in checkpoint-v2 format.
pub fn to_bytes(session: &Session) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&session.step_count().to_le_bytes());
    let params: Vec<_> = session
        .graph()
        .params()
        .iter()
        .filter_map(|(id, _)| {
            let name = match &session.graph().node(*id).op {
                Op::Parameter { name } => name.clone(),
                _ => return None,
            };
            session.param(*id).map(|t| (name, t.clone()))
        })
        .collect();
    body.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for (name, tensor) in params {
        let name_bytes = name.as_bytes();
        body.extend_from_slice(&(name_bytes.len() as u32).to_le_bytes());
        body.extend_from_slice(name_bytes);
        let dims = tensor.shape().dims();
        body.extend_from_slice(&(dims.len() as u32).to_le_bytes());
        for &d in dims {
            body.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in tensor.data() {
            body.extend_from_slice(&v.to_le_bytes());
        }
    }
    let checksum = fnv1a(&body);
    let mut out = Vec::with_capacity(8 + body.len() + 8);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&body);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Serialises every parameter of `session` into `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer as [`CheckpointError::Io`].
pub fn save<W: Write>(session: &Session, mut writer: W) -> Result<(), CheckpointError> {
    writer
        .write_all(&to_bytes(session))
        .map_err(CheckpointError::Io)?;
    Ok(())
}

/// Atomically writes a checkpoint to `path`: the bytes land in a sibling
/// temp file first and are renamed into place only after a successful
/// flush, so a crash mid-write never leaves a half-written file where the
/// previous good checkpoint used to be.
///
/// # Errors
///
/// Filesystem errors surface as [`CheckpointError::Io`].
pub fn save_to_path<P: AsRef<Path>>(session: &Session, path: P) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp).map_err(CheckpointError::Io)?;
        file.write_all(&to_bytes(session))
            .map_err(CheckpointError::Io)?;
        file.sync_all().map_err(CheckpointError::Io)?;
    }
    std::fs::rename(&tmp, path).map_err(CheckpointError::Io)
}

/// Restores parameters (and the step counter) into `session` from a
/// checkpoint written by [`save`], matching parameters by name.
///
/// The whole stream is read and checksum-verified *before* any session
/// state is touched, so a corrupt checkpoint can never leave the session
/// half-restored.
///
/// # Errors
///
/// Typed [`CheckpointError`]s for bad magic, unsupported version,
/// truncation, checksum mismatch, malformed records, and shape mismatch;
/// reader errors surface as [`CheckpointError::Io`].
pub fn load<R: Read>(session: &mut Session, mut reader: R) -> Result<LoadReport, CheckpointError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic[..7] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if magic[7] != VERSION {
        return Err(CheckpointError::UnsupportedVersion(magic[7]));
    }
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).map_err(CheckpointError::Io)?;
    if rest.len() < 8 + 8 + 8 {
        // step + count + checksum is the smallest possible v2 body.
        return Err(CheckpointError::Truncated);
    }
    let (body, checksum_bytes) = rest.split_at(rest.len() - 8);
    let stored = u64::from_le_bytes(checksum_bytes.try_into().expect("8-byte split"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    from_verified_body(session, body)
}

/// Verifies a serialized checkpoint without touching any session: checks
/// magic, version and the trailing FNV-1a checksum over the body.
///
/// # Errors
///
/// [`CheckpointError::BadMagic`], [`CheckpointError::UnsupportedVersion`],
/// [`CheckpointError::Truncated`] or [`CheckpointError::ChecksumMismatch`].
pub fn verify(bytes: &[u8]) -> Result<(), CheckpointError> {
    if bytes.len() < 8 {
        return Err(CheckpointError::Truncated);
    }
    if &bytes[..7] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes[7] != VERSION {
        return Err(CheckpointError::UnsupportedVersion(bytes[7]));
    }
    if bytes.len() < 8 + 8 + 8 + 8 {
        return Err(CheckpointError::Truncated);
    }
    let (body, checksum_bytes) = bytes[8..].split_at(bytes.len() - 16);
    let stored = u64::from_le_bytes(checksum_bytes.try_into().expect("8-byte split"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    Ok(())
}

/// Convenience wrapper over [`load`] for a filesystem path.
///
/// # Errors
///
/// Same as [`load`]; a missing file surfaces as [`CheckpointError::Io`].
pub fn load_from_path<P: AsRef<Path>>(
    session: &mut Session,
    path: P,
) -> Result<LoadReport, CheckpointError> {
    let file = std::fs::File::open(path).map_err(CheckpointError::Io)?;
    load(session, io::BufReader::new(file))
}

/// Parses a checksum-verified body and applies it to the session.
fn from_verified_body(session: &mut Session, body: &[u8]) -> Result<LoadReport, CheckpointError> {
    let mut cursor = body;
    let step = read_u64(&mut cursor)?;
    let count = read_u64(&mut cursor)? as usize;
    // Name → node id index for the session's parameters.
    let by_name: std::collections::HashMap<String, tbd_graph::NodeId> = session
        .graph()
        .params()
        .iter()
        .filter_map(|(id, _)| match &session.graph().node(*id).op {
            Op::Parameter { name } => Some((name.clone(), *id)),
            _ => None,
        })
        .collect();
    // Decode every record before touching the session so a malformed tail
    // cannot leave a partial restore behind.
    let mut staged: Vec<(tbd_graph::NodeId, Tensor)> = Vec::new();
    for _ in 0..count {
        let name_len = read_u32(&mut cursor)? as usize;
        if name_len > 1 << 20 {
            return Err(CheckpointError::Malformed("implausible name length"));
        }
        let name_bytes = take(&mut cursor, name_len)?;
        let name = String::from_utf8(name_bytes.to_vec())
            .map_err(|_| CheckpointError::Malformed("parameter name is not UTF-8"))?;
        let rank = read_u32(&mut cursor)? as usize;
        if rank > 8 {
            return Err(CheckpointError::Malformed("implausible rank"));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(&mut cursor)? as usize);
        }
        let len: usize = dims.iter().product();
        if len > 1 << 30 {
            return Err(CheckpointError::Malformed("implausible tensor size"));
        }
        let raw = take(&mut cursor, len * 4)?;
        if let Some(&id) = by_name.get(&name) {
            let mut data = vec![0.0f32; len];
            for (v, chunk) in data.iter_mut().zip(raw.chunks_exact(4)) {
                *v = f32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            let tensor = Tensor::from_vec(data, dims.as_slice())
                .map_err(|_| CheckpointError::Malformed("corrupt tensor record"))?;
            let slot = session.param(id).expect("registered parameter");
            if slot.shape() != tensor.shape() {
                return Err(CheckpointError::ShapeMismatch { name });
            }
            staged.push((id, tensor));
        }
    }
    if !cursor.is_empty() {
        return Err(CheckpointError::Malformed("trailing bytes after records"));
    }
    let loaded = staged.len();
    for (id, tensor) in staged {
        *session.param_mut(id).expect("registered parameter") = tensor;
    }
    session.set_step_count(step);
    Ok(LoadReport { loaded, step })
}

fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], CheckpointError> {
    if cursor.len() < n {
        return Err(CheckpointError::Truncated);
    }
    let (head, tail) = cursor.split_at(n);
    *cursor = tail;
    Ok(head)
}

fn read_u64(cursor: &mut &[u8]) -> Result<u64, CheckpointError> {
    let bytes = take(cursor, 8)?;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

fn read_u32(cursor: &mut &[u8]) -> Result<u32, CheckpointError> {
    let bytes = take(cursor, 4)?;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::{GraphBuilder, Init};

    fn session() -> Session {
        let mut g = GraphBuilder::new();
        let w = g.parameter("layer/w", [3, 2], Init::Uniform { lo: -1.0, hi: 1.0 });
        let b = g.parameter("layer/b", [2], Init::Uniform { lo: -1.0, hi: 1.0 });
        let _ = (w, b);
        Session::new(g.finish(), 99)
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let mut donor = session();
        donor.set_step_count(17);
        let mut buffer = Vec::new();
        save(&donor, &mut buffer).unwrap();
        // Different seed would give different weights; overwrite via load.
        let mut other = {
            let mut g = GraphBuilder::new();
            g.parameter("layer/w", [3, 2], Init::Zeros);
            g.parameter("layer/b", [2], Init::Zeros);
            Session::new(g.finish(), 1)
        };
        let report = load(&mut other, buffer.as_slice()).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.step, 17);
        assert_eq!(other.step_count(), 17, "step counter must be restored");
        for (a, b) in donor.snapshot().iter().zip(other.snapshot().iter()) {
            assert_eq!(a.1, b.1, "weights must round-trip bit-exactly");
        }
    }

    #[test]
    fn unknown_names_are_skipped() {
        let donor = session();
        let mut buffer = Vec::new();
        save(&donor, &mut buffer).unwrap();
        let mut g = GraphBuilder::new();
        g.parameter("different/name", [3, 2], Init::Zeros);
        let mut other = Session::new(g.finish(), 0);
        let report = load(&mut other, buffer.as_slice()).unwrap();
        assert_eq!(report.loaded, 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut s = session();
        let err = load(&mut s, b"NOTACKPTxxxxxxxxxxxxxxxxxxxxxxxx".as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic), "{err}");
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut s = session();
        let err = load(&mut s, b"TBDCKPT9xxxxxxxxxxxxxxxxxxxxxxxx".as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::UnsupportedVersion(b'9')), "{err}");
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let donor = session();
        let mut buffer = Vec::new();
        save(&donor, &mut buffer).unwrap();
        let mut g = GraphBuilder::new();
        g.parameter("layer/w", [2, 2], Init::Zeros); // wrong shape
        let mut other = Session::new(g.finish(), 0);
        let err = load(&mut other, buffer.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn truncated_checkpoints_error_instead_of_panicking() {
        let donor = session();
        let mut buffer = Vec::new();
        save(&donor, &mut buffer).unwrap();
        for cut in [buffer.len() / 2, 9, 12, buffer.len() - 1] {
            let mut short = buffer.clone();
            short.truncate(cut);
            let mut other = session();
            let err = load(&mut other, short.as_slice()).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn single_bit_flip_is_caught_by_checksum() {
        let donor = session();
        let mut buffer = Vec::new();
        save(&donor, &mut buffer).unwrap();
        // Flip one bit in the middle of the payload (well past the header).
        let idx = buffer.len() / 2;
        buffer[idx] ^= 0x10;
        let mut other = session();
        let before = other.snapshot();
        let err = load(&mut other, buffer.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::ChecksumMismatch { .. }), "{err}");
        // And the failed load must not have touched the session.
        assert_eq!(before, other.snapshot(), "failed load must leave session intact");
    }

    #[test]
    fn atomic_path_save_round_trips_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("tbd-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let mut donor = session();
        donor.set_step_count(5);
        save_to_path(&donor, &path).unwrap();
        assert!(!dir.join("model.ckpt.tmp").exists(), "temp file must be renamed away");
        let mut other = session();
        let report = load_from_path(&mut other, &path).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(other.step_count(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
