//! Asynchronous advantage actor-critic on the real Pong environment.
//!
//! This is the paper's sixth application domain running end-to-end: several
//! worker threads (crossbeam) each own a [`Pong`] game and a replica of the
//! A3C network, collect n-step rollouts with the current policy, compute
//! advantage-weighted policy gradients plus value-regression gradients, and
//! send them to a central parameter server that applies the update and
//! returns fresh weights — the "asynchronously updated policy and value
//! function networks trained in parallel over several processing threads"
//! of Mnih et al. (2016) / paper §3.1.6.

use crossbeam::channel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tbd_data::{Pong, PongAction};
use tbd_graph::{NodeId, Session};
use tbd_models::a3c::A3cConfig;
use tbd_tensor::{ops, Tensor};

/// Hyper-parameters of the A3C trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct A3cTrainer {
    /// Network configuration.
    pub config: A3cConfig,
    /// Steps per rollout (t_max).
    pub rollout: usize,
    /// Discount factor.
    pub gamma: f32,
    /// Learning rate of the central SGD update.
    pub lr: f32,
    /// Global-norm gradient clip.
    pub clip: f32,
}

impl A3cTrainer {
    /// Standard Pong hyper-parameters at the given learning rate.
    pub fn new(config: A3cConfig, lr: f32) -> Self {
        A3cTrainer { config, rollout: 5, gamma: 0.99, lr, clip: 5.0 }
    }

    /// Runs asynchronous training: `workers` threads each contribute
    /// `updates` gradient packets. Returns the trained central session and
    /// the per-update mean rollout rewards, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if the A3C graph fails to build (a bug in the model
    /// definition) or a worker thread panics.
    pub fn train(&self, workers: usize, updates: usize, seed: u64) -> (Session, Vec<f32>) {
        let center = A3cWorker::new(self.config, seed);
        let mut central = center.session;
        let (grad_tx, grad_rx) = channel::unbounded::<(usize, Vec<(NodeId, Tensor)>, f32)>();
        let mut reply_txs = Vec::new();
        let mut rewards = Vec::new();
        crossbeam::scope(|scope| {
            for w in 0..workers {
                let (reply_tx, reply_rx) = channel::unbounded::<Vec<(NodeId, Tensor)>>();
                reply_txs.push(reply_tx);
                let grad_tx = grad_tx.clone();
                let trainer = *self;
                let snapshot = central.snapshot();
                scope.spawn(move |_| {
                    let mut worker = A3cWorker::new(trainer.config, seed + 1 + w as u64);
                    worker.session.load_snapshot(&snapshot);
                    for _ in 0..updates {
                        let (grads, mean_reward) = worker.collect_gradients(&trainer);
                        if grad_tx.send((w, grads, mean_reward)).is_err() {
                            return;
                        }
                        match reply_rx.recv() {
                            Ok(fresh) => worker.session.load_snapshot(&fresh),
                            Err(_) => return,
                        }
                    }
                });
            }
            drop(grad_tx);
            // Parameter server: apply each packet as it arrives and return
            // the fresh weights to the sender (Hogwild-style asynchrony:
            // packets computed against stale weights are still applied).
            while let Ok((w, grads, mean_reward)) = grad_rx.recv() {
                apply_clipped(&mut central, &grads, self.lr, self.clip);
                rewards.push(mean_reward);
                let _ = reply_txs[w].send(central.snapshot());
            }
        })
        .expect("worker threads must not panic");
        (central, rewards)
    }
}

fn apply_clipped(session: &mut Session, grads: &[(NodeId, Tensor)], lr: f32, clip: f32) {
    let norm: f32 = grads.iter().map(|(_, g)| g.l2_norm().powi(2)).sum::<f32>().sqrt();
    let scale = if norm > clip { clip / norm } else { 1.0 };
    for (id, g) in grads {
        if let Some(w) = session.param_mut(*id) {
            *w = ops::add_scaled(w, g, -lr * scale).expect("shapes match");
        }
    }
}

/// One worker: an environment, a network replica and an RNG.
struct A3cWorker {
    session: Session,
    env: Pong,
    rng: StdRng,
    frames: NodeId,
    actions: NodeId,
    returns: NodeId,
    policy: NodeId,
    value: NodeId,
}

impl A3cWorker {
    fn new(config: A3cConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let built = config.build(1).expect("A3C graph builds");
        let batch_model = built; // batch-1 model used for acting
        let frames = batch_model.input("frames").expect("declared");
        let actions = batch_model.input("actions").expect("declared");
        let returns = batch_model.input("returns").expect("declared");
        let policy = batch_model.output("policy").expect("declared");
        let value = batch_model.output("value").expect("declared");
        let env = Pong::new(&mut rng);
        A3cWorker {
            session: Session::new(batch_model.graph, seed),
            env,
            rng,
            frames,
            actions,
            returns,
            policy,
            value,
        }
    }

    /// Plays one rollout and returns `(parameter gradients, mean reward)`.
    fn collect_gradients(&mut self, cfg: &A3cTrainer) -> (Vec<(NodeId, Tensor)>, f32) {
        let mut observations = Vec::with_capacity(cfg.rollout);
        let mut taken = Vec::with_capacity(cfg.rollout);
        let mut rewards = Vec::with_capacity(cfg.rollout);
        let mut values = Vec::with_capacity(cfg.rollout);
        let actions_available = self.session.graph().node(self.policy).shape.dim(1);
        for _ in 0..cfg.rollout {
            let obs = self.env.observation();
            let batch1 = obs.reshape([1, 4, 84, 84]).expect("fixed shape");
            let run = self
                .session
                .forward(&[
                    (self.frames, batch1.clone()),
                    (self.actions, Tensor::zeros([1])),
                    (self.returns, Tensor::zeros([1, 1])),
                ])
                .expect("forward succeeds");
            let probs = run.value(self.policy).expect("computed").clone();
            let v = run.scalar(self.value).unwrap_or(0.0);
            let action_index = sample_categorical(probs.data(), &mut self.rng)
                .min(actions_available - 1)
                .min(PongAction::ALL.len() - 1);
            let outcome = self.env.step(PongAction::from_index(action_index), &mut self.rng);
            observations.push(batch1);
            taken.push(action_index);
            rewards.push(outcome.reward);
            values.push(v);
            if outcome.done {
                break;
            }
        }
        let steps = observations.len();
        // Bootstrapped n-step returns.
        let bootstrap = *values.last().unwrap_or(&0.0);
        let mut returns = vec![0.0f32; steps];
        let mut acc = bootstrap;
        for t in (0..steps).rev() {
            acc = rewards[t] + cfg.gamma * acc;
            returns[t] = acc;
        }
        let mean_reward = rewards.iter().sum::<f32>() / steps.max(1) as f32;

        // One batched forward over the rollout, then two seeded backwards:
        // advantage-weighted policy gradient + value regression.
        let mut frames_data = Vec::with_capacity(steps * 4 * 84 * 84);
        for obs in &observations {
            frames_data.extend_from_slice(obs.data());
        }
        // Rebuild a batch-`steps` graph when the rollout ended early would
        // churn; instead pad to the configured rollout with repeats.
        let pad_to = steps;
        let frames_batch =
            Tensor::from_vec(frames_data, [pad_to, 4, 84, 84]).expect("sized buffer");
        let mut model = self.batched_model(pad_to);
        model.session.load_snapshot(&self.session.snapshot());
        let actions_tensor = Tensor::from_fn([pad_to], |i| taken[i] as f32);
        let returns_tensor =
            Tensor::from_vec(returns.clone(), [pad_to, 1]).expect("sized buffer");
        let run = model
            .session
            .forward(&[
                (model.frames, frames_batch),
                (model.actions, actions_tensor),
                (model.returns, returns_tensor),
            ])
            .expect("forward succeeds");
        let probs = run.value(model.policy).expect("computed").clone();
        let value_out = run.value(model.value).expect("computed").clone();
        // Policy-gradient seed: (π − one_hot(a)) · advantage / steps.
        let classes = probs.shape().dim(1);
        let mut seed = probs.data().to_vec();
        for t in 0..pad_to {
            let advantage = returns[t] - value_out.data()[t];
            for c in 0..classes {
                let onehot = if c == taken[t] { 1.0 } else { 0.0 };
                seed[t * classes + c] =
                    (seed[t * classes + c] - onehot) * advantage / pad_to as f32;
            }
        }
        let seed = Tensor::from_vec(seed, probs.shape().clone()).expect("sized buffer");
        let policy_grads = model
            .session
            .backward(&run, model.policy_logits, seed)
            .expect("backward succeeds");
        let value_grads = model
            .session
            .backward(&run, model.value_loss, Tensor::scalar(0.5))
            .expect("backward succeeds");
        let mut merged = Vec::new();
        for (id, _) in model.session.graph().params() {
            let p = policy_grads.param_grad(*id);
            let v = value_grads.param_grad(*id);
            let grad = match (p, v) {
                (Some(p), Some(v)) => ops::add(p, v).expect("same shape"),
                (Some(p), None) => p.clone(),
                (None, Some(v)) => v.clone(),
                (None, None) => continue,
            };
            merged.push((*id, grad));
        }
        (merged, mean_reward)
    }

    fn batched_model(&self, batch: usize) -> BatchedA3c {
        let cfg = A3cConfig {
            frame: 84,
            stack: 4,
            actions: self.session.graph().node(self.policy).shape.dim(1),
        };
        let built = cfg.build(batch).expect("A3C graph builds");
        BatchedA3c {
            frames: built.input("frames").expect("declared"),
            actions: built.input("actions").expect("declared"),
            returns: built.input("returns").expect("declared"),
            policy_logits: built.output("policy_logits").expect("declared"),
            policy: built.output("policy").expect("declared"),
            value: built.output("value").expect("declared"),
            value_loss: built.output("value_loss").expect("declared"),
            session: Session::new(built.graph, 0),
        }
    }
}

struct BatchedA3c {
    session: Session,
    frames: NodeId,
    actions: NodeId,
    returns: NodeId,
    policy_logits: NodeId,
    policy: NodeId,
    value: NodeId,
    value_loss: NodeId,
}

fn sample_categorical<R: Rng + ?Sized>(probs: &[f32], rng: &mut R) -> usize {
    let mut u: f32 = rng.gen();
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    probs.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_categorical_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let probs = [0.0f32, 1.0, 0.0];
        for _ in 0..20 {
            assert_eq!(sample_categorical(&probs, &mut rng), 1);
        }
        let skewed = [0.9f32, 0.1];
        let hits = (0..200).filter(|_| sample_categorical(&skewed, &mut rng) == 0).count();
        assert!(hits > 140, "hits {hits}");
    }

    #[test]
    fn async_training_runs_and_updates_weights() {
        let trainer = A3cTrainer::new(A3cConfig::tiny(), 1e-3);
        let before = {
            let built = A3cConfig::tiny().build(1).unwrap();
            Session::new(built.graph, 100).snapshot()
        };
        let (session, rewards) = trainer.train(2, 2, 100);
        assert_eq!(rewards.len(), 4, "2 workers × 2 updates");
        // Weights moved away from the central initialisation.
        let after = session.snapshot();
        let mut moved = 0.0f32;
        for ((_, a), (_, b)) in after.iter().zip(&before) {
            moved += a.max_abs_diff(b).unwrap_or(0.0);
        }
        assert!(moved > 0.0, "updates must change parameters");
        for (_, t) in &after {
            assert!(t.all_finite(), "weights must stay finite");
        }
    }
}
