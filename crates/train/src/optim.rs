//! Optimizers over graph sessions.

use std::collections::HashMap;
use tbd_graph::{Gradients, NodeId, Session};
use tbd_tensor::{ops, Tensor};

/// An optimizer that applies parameter updates to a [`Session`].
///
/// `step` visits every parameter with a gradient; `step_filtered` restricts
/// updates to parameters whose name satisfies a predicate (WGAN alternates
/// between `gen/…` and `critic/…`).
pub trait Optimizer {
    /// Applies one update from `grads` to every parameter of `session`.
    fn step(&mut self, session: &mut Session, grads: &Gradients) {
        self.step_filtered(session, grads, &|_| true);
    }

    /// Applies one update to parameters whose name passes `filter`.
    fn step_filtered(
        &mut self,
        session: &mut Session,
        grads: &Gradients,
        filter: &dyn Fn(&str) -> bool,
    );
}

fn param_name(session: &Session, id: NodeId) -> String {
    match &session.graph().node(id).op {
        tbd_graph::Op::Parameter { name } => name.clone(),
        _ => String::new(),
    }
}

fn updatable_params(
    session: &Session,
    grads: &Gradients,
    filter: &dyn Fn(&str) -> bool,
) -> Vec<(NodeId, Tensor)> {
    session
        .graph()
        .params()
        .iter()
        .map(|(id, _)| *id)
        .filter(|id| filter(&param_name(session, *id)))
        .filter_map(|id| grads.param_grad(id).map(|g| (id, g.clone())))
        .collect()
}

/// Plain stochastic gradient descent: `w ← w − lr·g`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step_filtered(
        &mut self,
        session: &mut Session,
        grads: &Gradients,
        filter: &dyn Fn(&str) -> bool,
    ) {
        for (id, grad) in updatable_params(session, grads, filter) {
            if let Some(w) = session.param_mut(id) {
                *w = ops::add_scaled(w, &grad, -self.lr).expect("shapes match");
            }
        }
    }
}

/// SGD with classical momentum: `v ← μv + g; w ← w − lr·v` — the optimizer
/// all three frameworks use for the paper's CNN workloads.
#[derive(Debug, Clone)]
pub struct Momentum {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient μ.
    pub momentum: f32,
    velocity: HashMap<usize, Tensor>,
}

impl Momentum {
    /// Creates momentum SGD.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Momentum { lr, momentum, velocity: HashMap::new() }
    }
}

impl Optimizer for Momentum {
    fn step_filtered(
        &mut self,
        session: &mut Session,
        grads: &Gradients,
        filter: &dyn Fn(&str) -> bool,
    ) {
        for (id, grad) in updatable_params(session, grads, filter) {
            let v = self
                .velocity
                .entry(id.index())
                .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
            *v = ops::add_scaled(&ops::scale(v, self.momentum), &grad, 1.0)
                .expect("shapes match");
            let vc = v.clone();
            if let Some(w) = session.param_mut(id) {
                *w = ops::add_scaled(w, &vc, -self.lr).expect("shapes match");
            }
        }
    }
}

/// Adam (Kingma & Ba), used by the paper's Transformer and GAN workloads.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: i32,
    m: HashMap<usize, Tensor>,
    v: HashMap<usize, Tensor>,
}

impl Adam {
    /// Creates Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: HashMap::new(), v: HashMap::new() }
    }
}

impl Optimizer for Adam {
    fn step_filtered(
        &mut self,
        session: &mut Session,
        grads: &Gradients,
        filter: &dyn Fn(&str) -> bool,
    ) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (id, grad) in updatable_params(session, grads, filter) {
            let m = self
                .m
                .entry(id.index())
                .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
            *m = ops::add_scaled(&ops::scale(m, self.beta1), &grad, 1.0 - self.beta1)
                .expect("shapes match");
            let g2 = ops::mul(&grad, &grad).expect("same shape");
            let v = self
                .v
                .entry(id.index())
                .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
            *v = ops::add_scaled(&ops::scale(v, self.beta2), &g2, 1.0 - self.beta2)
                .expect("shapes match");
            let (mc, vc) = (m.clone(), v.clone());
            let lr = self.lr;
            let (eps, bc1, bc2) = (self.eps, bc1, bc2);
            if let Some(w) = session.param_mut(id) {
                let mut out = w.clone();
                for i in 0..out.len() {
                    let mhat = mc.data()[i] / bc1;
                    let vhat = vc.data()[i] / bc2;
                    out.data_mut()[i] -= lr * mhat / (vhat.sqrt() + eps);
                }
                *w = out;
            }
        }
    }
}

/// Clamps every parameter passing `filter` into `[-c, c]` — the WGAN
/// Lipschitz weight-clipping rule applied to the critic after each update.
pub fn clip_weights(session: &mut Session, c: f32, filter: &dyn Fn(&str) -> bool) {
    let ids: Vec<NodeId> = session
        .graph()
        .params()
        .iter()
        .map(|(id, _)| *id)
        .filter(|id| filter(&param_name(session, *id)))
        .collect();
    for id in ids {
        if let Some(w) = session.param_mut(id) {
            *w = w.map(|v| v.clamp(-c, c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::{GraphBuilder, Init};

    /// loss = mean((w − 3)²): minimised at w = 3.
    fn quadratic() -> (Session, NodeId, NodeId) {
        let mut g = GraphBuilder::new();
        let w = g.parameter("w", [4], Init::Zeros);
        let t = g.input("t", [4]);
        let d = g.sub(w, t).unwrap();
        let sq = g.mul(d, d).unwrap();
        let loss = g.mean_all(sq).unwrap();
        (Session::new(g.finish(), 0), w, loss)
    }

    fn run_steps(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let (mut session, w, loss) = quadratic();
        let t_id = session.graph().inputs()[0];
        let target = Tensor::full([4], 3.0);
        let mut last = f32::MAX;
        for _ in 0..steps {
            let run = session.forward(&[(t_id, target.clone())]).unwrap();
            last = run.scalar(loss).unwrap();
            let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
            opt.step(&mut session, &grads);
        }
        let _ = w;
        last
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(run_steps(&mut Sgd::new(0.5), 40) < 1e-3);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        assert!(run_steps(&mut Momentum::new(0.2, 0.9), 80) < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(run_steps(&mut Adam::new(0.2), 120) < 1e-2);
    }

    #[test]
    fn filtered_step_leaves_other_params_untouched() {
        let mut g = GraphBuilder::new();
        let a = g.parameter("gen/a", [2], Init::Ones);
        let b = g.parameter("critic/b", [2], Init::Ones);
        let s = g.add(a, b).unwrap();
        let loss = g.sum_all(s).unwrap();
        let mut session = Session::new(g.finish(), 0);
        let run = session.forward(&[]).unwrap();
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        let mut opt = Sgd::new(0.1);
        opt.step_filtered(&mut session, &grads, &|name| name.starts_with("gen/"));
        assert!(session.param(a).unwrap().data()[0] < 1.0);
        assert_eq!(session.param(b).unwrap().data()[0], 1.0);
    }

    #[test]
    fn clip_weights_bounds_parameters() {
        let mut g = GraphBuilder::new();
        let w = g.parameter("critic/w", [3], Init::Constant(5.0));
        let _ = g.sum_all(w).unwrap();
        let mut session = Session::new(g.finish(), 0);
        clip_weights(&mut session, 0.1, &|n| n.starts_with("critic/"));
        assert!(session.param(w).unwrap().data().iter().all(|&v| v.abs() <= 0.1));
    }
}
