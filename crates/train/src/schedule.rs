//! Learning-rate schedules.
//!
//! §4.2 of the paper notes that scaling to large mini-batches (for
//! multi-GPU data parallelism) requires "additional work … on model
//! parameters such as learning rate to preserve the training accuracy",
//! citing Goyal et al.'s linear-scaling rule with warm-up and You et al.'s
//! ImageNet-in-minutes recipes. This module provides those schedules.

/// A learning-rate schedule: maps a step index to a learning rate.
pub trait Schedule {
    /// Learning rate at optimization step `step` (0-based).
    fn lr(&self, step: usize) -> f32;
}

/// Constant learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f32);

impl Schedule for Constant {
    fn lr(&self, _step: usize) -> f32 {
        self.0
    }
}

/// Goyal et al. (the paper's ref. 43): linear warm-up from a tenth of the
/// target over `warmup_steps`, then step decay by 10× at given milestones.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmupStepDecay {
    /// Target (post-warm-up) learning rate.
    pub base_lr: f32,
    /// Warm-up length in steps.
    pub warmup_steps: usize,
    /// Steps at which the rate divides by 10.
    pub milestones: Vec<usize>,
}

impl WarmupStepDecay {
    /// The linear-scaling rule: the base rate grows proportionally with the
    /// global mini-batch ("when the minibatch size is multiplied by k,
    /// multiply the learning rate by k").
    pub fn linear_scaling(reference_lr: f32, reference_batch: usize, batch: usize) -> f32 {
        reference_lr * batch as f32 / reference_batch.max(1) as f32
    }
}

impl Schedule for WarmupStepDecay {
    fn lr(&self, step: usize) -> f32 {
        let base = if step < self.warmup_steps {
            let start = self.base_lr / 10.0;
            start
                + (self.base_lr - start) * step as f32 / self.warmup_steps.max(1) as f32
        } else {
            self.base_lr
        };
        let decays = self.milestones.iter().filter(|&&m| step >= m).count() as i32;
        base * 0.1f32.powi(decays)
    }
}

/// The Transformer's inverse-square-root schedule (Vaswani et al.):
/// `d_model^-0.5 · min(step^-0.5, step · warmup^-1.5)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverseSqrt {
    /// Model width.
    pub d_model: usize,
    /// Warm-up length in steps.
    pub warmup_steps: usize,
}

impl Schedule for InverseSqrt {
    fn lr(&self, step: usize) -> f32 {
        let step = (step + 1) as f32;
        let warmup = self.warmup_steps.max(1) as f32;
        (self.d_model as f32).powf(-0.5) * f32::min(step.powf(-0.5), step * warmup.powf(-1.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = Constant(0.1);
        assert_eq!(s.lr(0), 0.1);
        assert_eq!(s.lr(10_000), 0.1);
    }

    #[test]
    fn warmup_ramps_then_decays() {
        let s = WarmupStepDecay { base_lr: 1.0, warmup_steps: 100, milestones: vec![1000, 2000] };
        assert!((s.lr(0) - 0.1).abs() < 1e-6, "starts at a tenth");
        assert!(s.lr(50) > s.lr(0) && s.lr(50) < 1.0, "ramping");
        assert!((s.lr(100) - 1.0).abs() < 1e-6, "reaches base");
        assert!((s.lr(1500) - 0.1).abs() < 1e-6, "first decay");
        assert!((s.lr(2500) - 0.01).abs() < 1e-6, "second decay");
    }

    #[test]
    fn linear_scaling_rule() {
        // Goyal et al.: lr 0.1 at batch 256 → 0.4 at batch 1024.
        let lr = WarmupStepDecay::linear_scaling(0.1, 256, 1024);
        assert!((lr - 0.4).abs() < 1e-6);
    }

    #[test]
    fn inverse_sqrt_peaks_at_warmup() {
        let s = InverseSqrt { d_model: 512, warmup_steps: 4000 };
        let before = s.lr(1000);
        let peak = s.lr(3999);
        let after = s.lr(16_000);
        assert!(before < peak, "{before} < {peak}");
        assert!(after < peak, "{after} < {peak}");
        assert!(peak < 0.01, "transformer rates are small");
    }

    #[test]
    fn schedules_drive_a_trainer() {
        use crate::{Sgd, Trainer};
        use tbd_graph::{GraphBuilder, Init, Session};
        use tbd_tensor::Tensor;
        // w → 3 under a warm-up schedule applied step by step.
        let mut g = GraphBuilder::new();
        let w = g.parameter("w", [2], Init::Zeros);
        let t = g.input("t", [2]);
        let d = g.sub(w, t).unwrap();
        let sq = g.mul(d, d).unwrap();
        let loss = g.mean_all(sq).unwrap();
        let session = Session::new(g.finish(), 0);
        let mut trainer = Trainer::new(session, loss, Sgd::new(0.0));
        let schedule = WarmupStepDecay { base_lr: 0.5, warmup_steps: 10, milestones: vec![] };
        let target = Tensor::full([2], 3.0);
        for step in 0..60 {
            trainer.optimizer_mut().lr = schedule.lr(step);
            trainer.step(&[(t, target.clone())]).unwrap();
        }
        let wv = trainer.session().param(w).unwrap();
        assert!(wv.data().iter().all(|&v| (v - 3.0).abs() < 0.05), "{wv}");
    }
}
