//! Calibration snapshot: full-scale workloads against the paper's reported
//! absolute numbers (Fig. 4 and Fig. 8). Run with `--nocapture` to inspect
//! current values while tuning the device-model constants.

use tbd_frameworks::Framework;
use tbd_gpusim::GpuSpec;
use tbd_models::{resnet::ResNetConfig, seq2seq::Seq2SeqConfig};

#[test]
fn calibration_snapshot_prints_key_points() {
    let p4000 = GpuSpec::quadro_p4000();
    let xp = GpuSpec::titan_xp();

    let resnet32 = ResNetConfig::resnet50().build(32).unwrap();
    for fw in Framework::all() {
        let p = fw.profile(&resnet32, &p4000).unwrap();
        println!(
            "ResNet-50 b32 {:>10} P4000: {:6.1} img/s gpu={:4.1}% fp32={:4.1}% cpu={:4.1}% mem={:.2} GB",
            fw.name(),
            p.throughput,
            100.0 * p.iteration.gpu_utilization,
            100.0 * p.iteration.fp32_utilization,
            100.0 * p.iteration.cpu_utilization,
            p.memory.total() as f64 / 1e9
        );
    }
    let ptx = Framework::mxnet().profile(&resnet32, &xp).unwrap();
    println!("ResNet-50 b32 MXNet TITANXp: {:6.1} img/s (paper 184)", ptx.throughput);

    for &b in &[4usize, 8, 16, 32] {
        let m = ResNetConfig::resnet50().build(b).unwrap();
        let p = Framework::mxnet().profile(&m, &p4000).unwrap();
        println!(
            "ResNet-50 b{:>3} MXNet: {:6.1} img/s gpu={:4.1}% fp32={:4.1}%",
            b,
            p.throughput,
            100.0 * p.iteration.gpu_utilization,
            100.0 * p.iteration.fp32_utilization
        );
    }

    let s64 = Seq2SeqConfig::full().build(64).unwrap();
    let pmx = Framework::mxnet()
        .profile_with_hints(&s64, &p4000, Framework::mxnet().hints(tbd_models::ModelKind::Seq2Seq, 64))
        .unwrap();
    println!(
        "Sockeye  b64 MXNet: {:6.1} sent/s (paper 229) gpu={:4.1}% fp32={:4.1}%",
        pmx.throughput,
        100.0 * pmx.iteration.gpu_utilization,
        100.0 * pmx.iteration.fp32_utilization
    );
    let s128 = Seq2SeqConfig::full().build(128).unwrap();
    let ptf = Framework::tensorflow()
        .profile_with_hints(&s128, &p4000, Framework::tensorflow().hints(tbd_models::ModelKind::Seq2Seq, 128))
        .unwrap();
    println!(
        "NMT     b128 TF   : {:6.1} sent/s (paper 365) gpu={:4.1}% fp32={:4.1}% mem={:.2} GB",
        ptf.throughput,
        100.0 * ptf.iteration.gpu_utilization,
        100.0 * ptf.iteration.fp32_utilization,
        ptf.memory.total() as f64 / 1e9
    );
}

#[test]
fn calibration_busy_breakdown_resnet() {
    use std::collections::BTreeMap;
    let p4000 = GpuSpec::quadro_p4000();
    let model = ResNetConfig::resnet50().build(32).unwrap();
    let p = Framework::mxnet().profile(&model, &p4000).unwrap();
    let mut by_class: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    for r in &p.iteration.records {
        let e = by_class.entry(format!("{:?}", r.class)).or_insert((0.0, 0));
        e.0 += r.duration_s;
        e.1 += 1;
    }
    let mut rows: Vec<_> = by_class.into_iter().collect();
    rows.sort_by(|a, b| b.1 .0.partial_cmp(&a.1 .0).unwrap());
    for (class, (t, n)) in rows {
        println!("{class:>22}: {:8.1} ms over {n:5} kernels", t * 1e3);
    }
    println!("busy total {:8.1} ms wall {:8.1} ms", p.iteration.gpu_busy_s * 1e3, p.iteration.wall_time_s * 1e3);
}
