//! Regression anchors: the headline absolute numbers of the paper's Fig. 4
//! and Fig. 8 must stay inside calibrated bands. These tests pin the
//! device-model constants — if a retune moves a headline workload outside
//! its band, this fails before `EXPERIMENTS.md` silently drifts.

use tbd_frameworks::Framework;
use tbd_gpusim::GpuSpec;
use tbd_models::{resnet::ResNetConfig, seq2seq::Seq2SeqConfig, ModelKind};

fn throughput(fw: Framework, kind: ModelKind, batch: usize, gpu: &GpuSpec) -> f64 {
    let model = kind.build_full(batch).unwrap();
    let hints = fw.hints(kind, batch);
    fw.profile_with_hints(&model, gpu, hints).unwrap().throughput
}

#[test]
fn resnet50_batch32_anchors() {
    let gpu = GpuSpec::quadro_p4000();
    let mx = throughput(Framework::mxnet(), ModelKind::ResNet50, 32, &gpu);
    let tf = throughput(Framework::tensorflow(), ModelKind::ResNet50, 32, &gpu);
    let ck = throughput(Framework::cntk(), ModelKind::ResNet50, 32, &gpu);
    // Paper: MXNet 89, TF 71, CNTK ~61.
    assert!((70.0..=100.0).contains(&mx), "MXNet {mx}");
    assert!((60.0..=82.0).contains(&tf), "TF {tf}");
    assert!((52.0..=75.0).contains(&ck), "CNTK {ck}");
    assert!(mx > tf && tf > ck, "paper ordering");
}

#[test]
fn seq2seq_anchors() {
    let gpu = GpuSpec::quadro_p4000();
    let nmt = throughput(Framework::tensorflow(), ModelKind::Seq2Seq, 128, &gpu);
    let sockeye = throughput(Framework::mxnet(), ModelKind::Seq2Seq, 64, &gpu);
    // Paper: NMT 365 @128, Sockeye 229 @64.
    assert!((320.0..=450.0).contains(&nmt), "NMT {nmt}");
    assert!((210.0..=320.0).contains(&sockeye), "Sockeye {sockeye}");
}

#[test]
fn titan_xp_speedup_anchor() {
    // Paper Fig. 8: MXNet ResNet-50 89 → 184 (2.07×).
    let p4000 = GpuSpec::quadro_p4000();
    let xp = GpuSpec::titan_xp();
    let a = throughput(Framework::mxnet(), ModelKind::ResNet50, 32, &p4000);
    let b = throughput(Framework::mxnet(), ModelKind::ResNet50, 32, &xp);
    let ratio = b / a;
    assert!((1.8..=2.3).contains(&ratio), "speedup {ratio}");
}

#[test]
fn faster_rcnn_anchor() {
    let gpu = GpuSpec::quadro_p4000();
    let tf = throughput(Framework::tensorflow(), ModelKind::FasterRcnn, 1, &gpu);
    // Paper: 2.3 images/s.
    assert!((1.5..=3.5).contains(&tf), "Faster R-CNN {tf}");
}

#[test]
fn memory_wall_anchors() {
    // Batch feasibility boundaries the paper reports.
    let gpu = GpuSpec::quadro_p4000();
    let profile = |fw: Framework, kind: ModelKind, batch: usize| {
        let model = kind.build_full(batch).unwrap();
        fw.profile_with_hints(&model, &gpu, fw.hints(kind, batch)).is_ok()
    };
    assert!(profile(Framework::tensorflow(), ModelKind::Seq2Seq, 128));
    assert!(!profile(Framework::mxnet(), ModelKind::Seq2Seq, 128));
    assert!(profile(Framework::mxnet(), ModelKind::ResNet50, 32));
    assert!(!profile(Framework::mxnet(), ModelKind::ResNet50, 64));
    let _ = (ResNetConfig::resnet50(), Seq2SeqConfig::full());
}
