//! Kernel fusion passes — the optimization direction behind the paper's
//! RNN findings (Observations 5 and 7 recommend "further research … in how
//! to optimize LSTM cells on GPUs"; cuDNN's fused RNN kernels are exactly
//! that).
//!
//! A fusion pass rewrites a lowered kernel stream by merging adjacent
//! launches into one (summing FLOPs and bytes): fewer launches means fewer
//! per-kernel setup costs and fewer scheduling gaps, which is where the
//! per-time-step RNN formulation loses its time.

use tbd_graph::lower::LoweredKernel;
use tbd_graph::KernelClass;

/// Merges runs of adjacent element-wise-family kernels (element-wise,
/// activations, data movement, dropout) into single launches — the
/// "pointwise fusion" every framework's graph compiler performs today.
pub fn fuse_pointwise(kernels: &[LoweredKernel]) -> Vec<LoweredKernel> {
    fuse_adjacent(kernels, |a, b| is_pointwise(a.spec.class) && is_pointwise(b.spec.class))
}

/// Simulates cuDNN's fused-RNN lowering: within each training phase, runs
/// of small GEMMs *and* their surrounding pointwise kernels merge into
/// layer-level launches of at most `kernels_per_launch` original kernels.
///
/// With `kernels_per_launch` around the per-layer time-step count, a
/// 5-layer/25-step Seq2Seq collapses from thousands of launches to dozens —
/// the cuDNN `RNNForwardTraining` shape.
pub fn fuse_rnn(kernels: &[LoweredKernel], kernels_per_launch: usize) -> Vec<LoweredKernel> {
    let mut out: Vec<LoweredKernel> = Vec::with_capacity(kernels.len());
    let mut run_len = 0usize;
    for k in kernels {
        let fusable = is_rnn_family(k.spec.class);
        if fusable
            && run_len > 0
            && run_len < kernels_per_launch.max(1)
            && out.last().map(|last: &LoweredKernel| last.phase == k.phase).unwrap_or(false)
        {
            let last = out.last_mut().expect("run in progress");
            last.spec.flops += k.spec.flops;
            last.spec.bytes += k.spec.bytes;
            last.spec.workspace_bytes = last.spec.workspace_bytes.max(k.spec.workspace_bytes);
            run_len += 1;
        } else {
            let mut merged = k.clone();
            if fusable {
                // The fused launch presents as one large GEMM-class kernel.
                merged.spec.class = KernelClass::Gemm;
                merged.spec.origin = "fused_rnn";
                run_len = 1;
            } else {
                run_len = 0;
            }
            out.push(merged);
        }
    }
    out
}

fn is_pointwise(class: KernelClass) -> bool {
    matches!(
        class,
        KernelClass::Elementwise
            | KernelClass::ActivationForward
            | KernelClass::ActivationBackward
            | KernelClass::DataMovement
            | KernelClass::Dropout
    )
}

fn is_rnn_family(class: KernelClass) -> bool {
    is_pointwise(class) || matches!(class, KernelClass::Gemm)
}

fn fuse_adjacent(
    kernels: &[LoweredKernel],
    can_merge: impl Fn(&LoweredKernel, &LoweredKernel) -> bool,
) -> Vec<LoweredKernel> {
    let mut out: Vec<LoweredKernel> = Vec::with_capacity(kernels.len());
    for k in kernels {
        if let Some(last) = out.last_mut() {
            if last.phase == k.phase && can_merge(last, k) {
                last.spec.flops += k.spec.flops;
                last.spec.bytes += k.spec.bytes;
                last.spec.workspace_bytes = last.spec.workspace_bytes.max(k.spec.workspace_bytes);
                continue;
            }
        }
        out.push(k.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::{KernelSpec, NodeId, Phase};

    fn kern(class: KernelClass, phase: Phase, flops: f64) -> LoweredKernel {
        LoweredKernel {
            node: NodeId::from_index(0),
            phase,
            spec: KernelSpec::new(class, flops, flops, "k"),
        }
    }

    #[test]
    fn pointwise_runs_merge_and_costs_are_preserved() {
        let stream = vec![
            kern(KernelClass::Gemm, Phase::Forward, 100.0),
            kern(KernelClass::Elementwise, Phase::Forward, 1.0),
            kern(KernelClass::ActivationForward, Phase::Forward, 2.0),
            kern(KernelClass::Elementwise, Phase::Forward, 3.0),
            kern(KernelClass::Gemm, Phase::Forward, 100.0),
        ];
        let fused = fuse_pointwise(&stream);
        assert_eq!(fused.len(), 3);
        let total: f64 = stream.iter().map(|k| k.spec.flops).sum();
        let total_fused: f64 = fused.iter().map(|k| k.spec.flops).sum();
        assert_eq!(total, total_fused, "fusion must not lose work");
        assert_eq!(fused[1].spec.flops, 6.0);
    }

    #[test]
    fn fusion_never_crosses_phases() {
        let stream = vec![
            kern(KernelClass::Elementwise, Phase::Forward, 1.0),
            kern(KernelClass::Elementwise, Phase::Backward, 1.0),
        ];
        assert_eq!(fuse_pointwise(&stream).len(), 2);
    }

    #[test]
    fn rnn_fusion_collapses_step_kernels() {
        // 40 tiny per-step kernels → ceil(40 / 10) launches.
        let stream: Vec<_> = (0..40)
            .map(|i| {
                let class = if i % 2 == 0 { KernelClass::Gemm } else { KernelClass::Elementwise };
                kern(class, Phase::Forward, 10.0)
            })
            .collect();
        let fused = fuse_rnn(&stream, 10);
        assert_eq!(fused.len(), 4);
        let total: f64 = fused.iter().map(|k| k.spec.flops).sum();
        assert_eq!(total, 400.0);
        assert!(fused.iter().all(|k| k.spec.origin == "fused_rnn"));
    }

    #[test]
    fn conv_kernels_pass_through_untouched() {
        let stream = vec![
            kern(KernelClass::ConvForward, Phase::Forward, 50.0),
            kern(KernelClass::BatchNormForward, Phase::Forward, 5.0),
        ];
        let fused = fuse_rnn(&stream, 100);
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].spec.class, KernelClass::ConvForward);
    }
}
