//! Framework execution profiles.
//!
//! §3.2 of the paper observes that for the same model the GPU kernels the
//! three frameworks invoke are "usually functionally the same" — what
//! differs is the *system* around them: per-op dispatch overhead, memory
//! allocator strategy, workspace autotuning, input-pipeline overlap and the
//! kernel libraries linked in. This crate encodes each framework as such a
//! profile and provides [`Framework::profile`], which plans one training
//! iteration of a [`BuiltModel`] on a [`GpuSpec`]: it places every
//! allocation category in device memory (failing with [`OutOfMemory`] for
//! infeasible mini-batches, exactly where the paper reports memory limits),
//! autotunes convolution workspace out of the leftover capacity
//! (Observation 12) and replays the kernel stream through the timeline
//! simulator.
//!
//! # Examples
//!
//! ```
//! use tbd_frameworks::Framework;
//! use tbd_gpusim::GpuSpec;
//! use tbd_models::a3c::A3cConfig;
//!
//! # fn main() -> Result<(), tbd_gpusim::OutOfMemory> {
//! let model = A3cConfig::full().build(16).expect("builds");
//! let profile = Framework::mxnet().profile(&model, &GpuSpec::quadro_p4000())?;
//! assert!(profile.throughput > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod fusion;

use std::sync::Arc;
use tbd_graph::lower::{
    lower_training_iteration, lower_training_iteration_fused, memory_footprint,
    optimizer_update_kernels, LoweredKernel,
};
use tbd_graph::trace::{EventKind, TraceEvent, TraceLayer, TraceRecorder};
use tbd_graph::{FusionPlan, KernelClass};
use tbd_tensor::Precision;
use tbd_gpusim::{
    simulate_iteration_traced, CpuSpec, DeviceMemory, ExecutionParams, GpuSpec, IterationProfile,
    MemoryBreakdown, MemoryCategory, OutOfMemory,
};
use tbd_models::{BuiltModel, ModelKind};

pub use tbd_gpusim::timeline::KernelRecord;

/// The three frameworks the paper studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FrameworkKind {
    /// TensorFlow 1.3 profile.
    TensorFlow,
    /// MXNet 0.11 profile.
    Mxnet,
    /// CNTK 2.0 profile.
    Cntk,
}

/// A framework execution profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Framework {
    kind: FrameworkKind,
}

/// Model-specific execution hints that live outside the dataflow graph:
/// sequence-bucket padding (memory is allocated for the longest bucket while
/// compute runs on real lengths), on-policy environment stepping that
/// cannot be prefetched (A3C), and kernel-quality derating for workloads
/// whose odd shapes hit slow cuDNN paths (Faster R-CNN's non-square
/// convolutions, WGAN's gradient-penalty pass).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadHints {
    /// Multiplier on the feature-map footprint for bucket padding.
    pub memory_padding: f64,
    /// Non-overlappable per-iteration input cost in seconds (on-policy
    /// environment stepping, proposal generation).
    pub serial_input_s: f64,
    /// Kernel-quality multiplier (< 1 derates compute-bound kernels).
    pub compute_derate: f64,
    /// Overrides the framework's pipeline overlap when set.
    pub overlap_override: Option<f64>,
    /// Overrides the CPU cores the input pipeline occupies when set
    /// (environment emulation, proposal generation).
    pub pipeline_cores_override: Option<f64>,
}

impl Default for WorkloadHints {
    fn default() -> Self {
        WorkloadHints {
            memory_padding: 1.0,
            serial_input_s: 0.0,
            compute_derate: 1.0,
            overlap_override: None,
            pipeline_cores_override: None,
        }
    }
}

impl WorkloadHints {
    /// The hints for one of the paper's workloads at the given mini-batch,
    /// independent of framework. Prefer [`Framework::hints`], which also
    /// accounts for implementation differences (Sockeye's coarser
    /// bucketing).
    pub fn for_model(kind: ModelKind, batch: usize) -> Self {
        match kind {
            // IWSLT sentences are padded to bucket lengths well above the
            // average length; LibriSpeech utterances pad to the longest in
            // the shard.
            ModelKind::Seq2Seq => {
                WorkloadHints { memory_padding: 2.1, ..WorkloadHints::default() }
            }
            ModelKind::DeepSpeech2 => {
                WorkloadHints { memory_padding: 4.0, ..WorkloadHints::default() }
            }
            // A3C steps its Atari environments on-policy: frames cannot be
            // prefetched, so every iteration pays the emulator.
            ModelKind::A3c => WorkloadHints {
                serial_input_s: 0.2 + 0.005 * batch as f64,
                overlap_override: Some(0.0),
                pipeline_cores_override: Some(8.0),
                ..WorkloadHints::default()
            },
            // Non-square images and per-proposal convolutions hit slower
            // cuDNN paths; proposal generation/NMS adds serial CPU work.
            ModelKind::FasterRcnn => WorkloadHints {
                compute_derate: 0.55,
                serial_input_s: 0.05,
                pipeline_cores_override: Some(12.0),
                ..WorkloadHints::default()
            },
            // The WGAN-GP gradient penalty adds an extra critic pass with
            // CPU-side interpolate sampling not present in the lowered
            // graph: a kernel-quality derate plus a per-iteration serial
            // cost that bends the batch-scaling curve as in Fig. 4e.
            ModelKind::Wgan => WorkloadHints {
                compute_derate: 0.8,
                serial_input_s: 0.08,
                overlap_override: Some(0.3),
                ..WorkloadHints::default()
            },
            // TensorFlow's buffer forwarding reuses the attention stack's
            // temporaries; without it the per-head slices double-count and
            // token-batch 4096 would not fit the 8 GB card the paper used.
            ModelKind::Transformer => {
                WorkloadHints { memory_padding: 0.8, ..WorkloadHints::default() }
            }
            _ => WorkloadHints::default(),
        }
    }
}

/// Speed-tier knobs threaded from `tbd trace` / `tbd bench`: kernel fusion
/// in the lowering pass and reduced-precision storage in the roofline.
///
/// The default (`fuse: false`, [`Precision::F32`]) reproduces the paper's
/// baseline configuration bit-for-bit, so every pinned profile
/// (scale/chaos baselines, observation checks) is unaffected unless a
/// caller opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpeedOptions {
    /// Fuse elementwise/activation/bias/norm chains into single kernels.
    pub fuse: bool,
    /// Storage precision for GEMM/conv operands (f32 accumulation).
    pub precision: Precision,
}

impl SpeedOptions {
    /// The full speed tier: fusion on, at the given precision.
    pub fn fused(precision: Precision) -> Self {
        SpeedOptions { fuse: true, precision }
    }
}

/// Result of planning and simulating one training iteration.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Timeline metrics (wall time, utilisations, kernel trace).
    pub iteration: IterationProfile,
    /// Peak memory per category.
    pub memory: MemoryBreakdown,
    /// Mini-batch the model was built for.
    pub batch: usize,
    /// Training throughput in samples per second.
    pub throughput: f64,
}

impl Framework {
    /// The TensorFlow profile: dataflow runtime with a low-overhead
    /// executor, aggressive input pipeline, pooled allocator.
    pub fn tensorflow() -> Self {
        Framework { kind: FrameworkKind::TensorFlow }
    }

    /// The MXNet profile: fastest kernel selection on CNNs, but a heavier
    /// dependency engine between kernels and extra "dynamic" allocations
    /// made during iterations (momentum buffers — §3.4.3).
    pub fn mxnet() -> Self {
        Framework { kind: FrameworkKind::Mxnet }
    }

    /// The CNTK profile.
    pub fn cntk() -> Self {
        Framework { kind: FrameworkKind::Cntk }
    }

    /// All three frameworks, in the paper's order.
    pub fn all() -> [Framework; 3] {
        [Framework::tensorflow(), Framework::mxnet(), Framework::cntk()]
    }

    /// Which framework this profile models.
    pub fn kind(&self) -> FrameworkKind {
        self.kind
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self.kind {
            FrameworkKind::TensorFlow => "TensorFlow",
            FrameworkKind::Mxnet => "MXNet",
            FrameworkKind::Cntk => "CNTK",
        }
    }

    /// Whether the paper has an implementation of `model` on this framework
    /// (Table 2, "Frameworks" column).
    pub fn supports(&self, model: ModelKind) -> bool {
        use FrameworkKind::*;
        use ModelKind::*;
        match model {
            ResNet50 | InceptionV3 => true,
            Seq2Seq => matches!(self.kind, TensorFlow | Mxnet),
            Transformer => self.kind == TensorFlow,
            FasterRcnn => matches!(self.kind, TensorFlow | Mxnet),
            DeepSpeech2 => self.kind == Mxnet,
            Wgan => self.kind == TensorFlow,
            A3c => self.kind == Mxnet,
        }
    }

    /// The name of the Seq2Seq implementation on this framework (the paper
    /// distinguishes TensorFlow's NMT from MXNet's Sockeye).
    pub fn seq2seq_implementation(&self) -> &'static str {
        match self.kind {
            FrameworkKind::TensorFlow => "NMT",
            FrameworkKind::Mxnet => "Sockeye",
            FrameworkKind::Cntk => "(none)",
        }
    }

    /// Timeline parameters of this framework for a model whose input feed
    /// totals `input_bytes` per iteration.
    pub fn execution_params(&self, input_bytes: u64) -> ExecutionParams {
        // The input pipeline decodes/augments on the CPU at a few GB/s and
        // overlaps with GPU compute (Observation 4's "efficiently
        // parallelized" transfers).
        let pipeline_s = input_bytes as f64 / 2.0e9;
        match self.kind {
            FrameworkKind::TensorFlow => ExecutionParams {
                launch_overhead_s: 4e-6,
                sync_gap_s: 7e-6,
                iteration_overhead_s: 2.5e-3,
                input_pipeline_s: pipeline_s,
                pipeline_overlap: 0.95,
                pipeline_cores: 3.0,
                background_cores: 1.4,
                compute_speedup: 0.80,
                precision: Precision::F32,
            },
            FrameworkKind::Mxnet => ExecutionParams {
                launch_overhead_s: 4e-6,
                sync_gap_s: 16e-6,
                iteration_overhead_s: 1.5e-3,
                input_pipeline_s: pipeline_s,
                pipeline_overlap: 0.93,
                pipeline_cores: 2.0,
                background_cores: 1.3,
                compute_speedup: 1.0,
                precision: Precision::F32,
            },
            // CNTK is a pure C++ runtime: its near-zero CPU utilisation is
            // the striking pattern of the paper's Fig. 7.
            FrameworkKind::Cntk => ExecutionParams {
                launch_overhead_s: 5e-6,
                sync_gap_s: 8e-6,
                iteration_overhead_s: 2.0e-3,
                input_pipeline_s: pipeline_s,
                pipeline_overlap: 0.9,
                pipeline_cores: 2.0,
                background_cores: 0.02,
                compute_speedup: 0.70,
                precision: Precision::F32,
            },
        }
    }

    /// Host-side threading knobs for functional (CPU) execution, mirroring
    /// the paper's §3.5 CPU-utilisation analysis (Fig. 7): TensorFlow
    /// saturates its intra-op pool (auto-sized) and its dataflow executor
    /// runs independent nodes concurrently; MXNet's dependency engine also
    /// overlaps nodes but drives fewer threads per kernel; CNTK's pure-C++
    /// runtime shows near-zero host CPU — it executes serially.
    pub fn host_threading(&self) -> tbd_graph::ExecConfig {
        use tbd_graph::ExecConfig;
        match self.kind {
            FrameworkKind::TensorFlow => {
                ExecConfig { intra_op_threads: 0, inter_op_parallel: true }
            }
            FrameworkKind::Mxnet => ExecConfig { intra_op_threads: 2, inter_op_parallel: true },
            FrameworkKind::Cntk => ExecConfig { intra_op_threads: 1, inter_op_parallel: false },
        }
    }

    /// Momentum-SGD update cost per parameter element
    /// `(flops, bytes)` — all three frameworks train with momentum.
    pub fn optimizer_cost(&self) -> (f64, f64) {
        (4.0, 16.0)
    }

    /// Bytes the framework allocates *during* iterations (the profiler's
    /// "dynamic" category): momentum state plus scratch. MXNet allocates
    /// its momentum buffers lazily inside the first iterations (§3.4.3),
    /// making its dynamic slice the largest.
    pub fn dynamic_bytes(&self, weight_bytes: u64) -> u64 {
        match self.kind {
            FrameworkKind::TensorFlow => weight_bytes / 4,
            FrameworkKind::Mxnet => weight_bytes + weight_bytes / 8,
            FrameworkKind::Cntk => weight_bytes / 8,
        }
    }

    /// Allocator slack: the factor by which pooled allocation and
    /// fragmentation inflate the feature-map footprint. MXNet's higher
    /// slack is why Sockeye tops out at mini-batch 64 where NMT reaches 128
    /// on the same 8 GB card (Observation 3).
    pub fn allocator_slack(&self) -> f64 {
        match self.kind {
            FrameworkKind::TensorFlow => 1.02,
            FrameworkKind::Mxnet => 1.08,
            FrameworkKind::Cntk => 1.10,
        }
    }

    /// Maximum workspace appetite as a multiple of the minimum conv
    /// workspace, granted from leftover memory (Observation 12).
    pub fn workspace_appetite(&self) -> f64 {
        match self.kind {
            FrameworkKind::TensorFlow => 4.0,
            FrameworkKind::Mxnet => 2.0,
            FrameworkKind::Cntk => 3.0,
        }
    }

    /// Model- and framework-specific execution hints: Sockeye (MXNet's
    /// Seq2Seq) buckets far more coarsely than TensorFlow's NMT, which is
    /// why it tops out at mini-batch 64 where NMT reaches 128 on the same
    /// 8 GB card (Observation 3).
    pub fn hints(&self, kind: ModelKind, batch: usize) -> WorkloadHints {
        let mut hints = WorkloadHints::for_model(kind, batch);
        if kind == ModelKind::Seq2Seq && self.kind == FrameworkKind::Mxnet {
            hints.memory_padding = 4.2;
        }
        hints
    }

    /// Lowers one full training iteration, including this framework's
    /// optimizer-update kernels.
    pub fn plan(&self, model: &BuiltModel) -> Vec<LoweredKernel> {
        self.plan_with(model, SpeedOptions::default())
    }

    /// Like [`Framework::plan`], honouring the speed tier's fusion knob:
    /// with `speed.fuse` set, elementwise/activation/bias/norm chains lower
    /// as single fused kernels (fewer launches, interior traffic dropped).
    pub fn plan_with(&self, model: &BuiltModel, speed: SpeedOptions) -> Vec<LoweredKernel> {
        let (f, b) = self.optimizer_cost();
        let mut kernels = if speed.fuse {
            let plan = FusionPlan::analyze(&model.graph);
            lower_training_iteration_fused(&model.graph, Some(&plan))
        } else {
            lower_training_iteration(&model.graph)
        };
        kernels.extend(optimizer_update_kernels(&model.graph, f, b));
        kernels
    }

    /// Plans device memory and simulates one training iteration of `model`
    /// on `gpu`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the mini-batch does not fit the device
    /// (the paper's infeasible configurations).
    pub fn profile(&self, model: &BuiltModel, gpu: &GpuSpec) -> Result<WorkloadProfile, OutOfMemory> {
        self.profile_with_hints(model, gpu, WorkloadHints::default())
    }

    /// Like [`Framework::profile`], with model-specific [`WorkloadHints`].
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the mini-batch does not fit the device.
    pub fn profile_with_hints(
        &self,
        model: &BuiltModel,
        gpu: &GpuSpec,
        hints: WorkloadHints,
    ) -> Result<WorkloadProfile, OutOfMemory> {
        self.profile_inner(model, gpu, hints, SpeedOptions::default(), None)
    }

    /// Like [`Framework::profile_with_hints`], emitting the whole run into
    /// `tracer`: allocator events (including a failing allocation on the
    /// OOM path), the simulated launch/kernel/sync timeline, and
    /// framework-tagged spans that make TF/MXNet/CNTK traces of the same
    /// model distinguishable (per-framework launch overhead, sync gap and
    /// pipeline overlap — the paper's §3.2 "same kernels, different system
    /// behaviour").
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the mini-batch does not fit the device.
    pub fn profile_traced(
        &self,
        model: &BuiltModel,
        gpu: &GpuSpec,
        hints: WorkloadHints,
        tracer: &Arc<TraceRecorder>,
    ) -> Result<WorkloadProfile, OutOfMemory> {
        self.profile_inner(model, gpu, hints, SpeedOptions::default(), Some(tracer))
    }

    /// Like [`Framework::profile_traced`], with explicit speed-tier options:
    /// fused lowering and/or reduced-precision roofline timing.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the mini-batch does not fit the device.
    pub fn profile_traced_with_speed(
        &self,
        model: &BuiltModel,
        gpu: &GpuSpec,
        hints: WorkloadHints,
        speed: SpeedOptions,
        tracer: &Arc<TraceRecorder>,
    ) -> Result<WorkloadProfile, OutOfMemory> {
        self.profile_inner(model, gpu, hints, speed, Some(tracer))
    }

    /// Like [`Framework::profile_with_hints`], with explicit speed-tier
    /// options but no tracer.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the mini-batch does not fit the device.
    pub fn profile_with_speed(
        &self,
        model: &BuiltModel,
        gpu: &GpuSpec,
        hints: WorkloadHints,
        speed: SpeedOptions,
    ) -> Result<WorkloadProfile, OutOfMemory> {
        self.profile_inner(model, gpu, hints, speed, None)
    }

    fn profile_inner(
        &self,
        model: &BuiltModel,
        gpu: &GpuSpec,
        hints: WorkloadHints,
        speed: SpeedOptions,
        tracer: Option<&Arc<TraceRecorder>>,
    ) -> Result<WorkloadProfile, OutOfMemory> {
        let cpu = CpuSpec::xeon_e5_2680();
        let fp = memory_footprint(&model.graph);
        let mut mem = DeviceMemory::new(gpu.memory_bytes);
        if let Some(tr) = tracer {
            mem.set_tracer(Some(Arc::clone(tr)));
        }
        mem.alloc(MemoryCategory::Weights, fp.weights)?;
        mem.alloc(MemoryCategory::WeightGrads, fp.weight_grads)?;
        let feature =
            (fp.feature_maps as f64 * self.allocator_slack() * hints.memory_padding) as u64;
        mem.alloc(MemoryCategory::FeatureMaps, feature)?;
        mem.alloc(MemoryCategory::Dynamic, self.dynamic_bytes(fp.weights))?;
        // Workspace autotuning (Observation 12): each operator caches its
        // chosen algorithm's workspace, so the framework grabs up to
        // `appetite × Σ per-layer workspace` from leftover memory — never
        // less than the largest single request the algorithms need.
        let base_ws = fp.workspace.max(1);
        let desired = (fp.workspace_total as f64 * self.workspace_appetite()) as u64;
        let available = (mem.available() as f64 * 0.8) as u64;
        let ws = desired.min(available);
        mem.alloc(MemoryCategory::Workspace, ws.max(base_ws))?;
        // A roomy workspace lets cuDNN pick faster algorithms.
        let ws_bonus = if ws >= 2 * base_ws { 1.05 } else { 1.0 };

        let input_bytes: u64 = model
            .inputs
            .values()
            .map(|&id| model.graph.node(id).shape.byte_len() as u64)
            .sum();
        let mut params = self.execution_params(input_bytes);
        params.precision = speed.precision;
        params.compute_speedup *= ws_bonus * hints.compute_derate;
        params.input_pipeline_s += hints.serial_input_s;
        if let Some(overlap) = hints.overlap_override {
            params.pipeline_overlap = overlap;
        }
        if let Some(cores) = hints.pipeline_cores_override {
            params.pipeline_cores = cores;
        }

        let kernels = self.plan_with(model, speed);
        let iteration =
            simulate_iteration_traced(&kernels, gpu, &cpu, &params, tracer.map(|t| &**t));
        let throughput = iteration.throughput(model.batch);
        if let Some(tr) = tracer {
            // Framework-tagged spans: same kernel stream, framework-specific
            // system behaviour around it (§3.2). These args are what makes
            // the three frameworks' traces of one model differ.
            let wall_us = iteration.wall_time_s * 1e6;
            tr.record(
                TraceEvent::span(
                    format!("{} iteration", self.name()),
                    TraceLayer::Framework,
                    EventKind::Iteration,
                    0.0,
                    wall_us,
                )
                .with_arg("framework", self.name())
                .with_arg("batch", model.batch)
                .with_arg("kernels", kernels.len())
                .with_arg("launch_overhead_us", params.launch_overhead_s * 1e6)
                .with_arg("sync_gap_us", params.sync_gap_s * 1e6)
                .with_arg("pipeline_overlap", params.pipeline_overlap)
                .with_arg("gpu_utilization", iteration.gpu_utilization)
                .with_arg("throughput", throughput)
                .with_arg("cpu_utilization", iteration.cpu_utilization)
                .with_arg("fp32_utilization", iteration.fp32_utilization),
            );
            tr.record(
                TraceEvent::span(
                    format!("{} input pipeline", self.name()),
                    TraceLayer::Framework,
                    EventKind::Phase,
                    0.0,
                    params.input_pipeline_s * 1e6,
                )
                .on_track(1)
                .with_arg("overlap", params.pipeline_overlap)
                .with_arg("cores", params.pipeline_cores),
            );
        }
        Ok(WorkloadProfile { iteration, memory: mem.breakdown(), batch: model.batch, throughput })
    }

    /// Maps a kernel-trace record to the library kernel name this framework
    /// would show in an nvprof trace (paper Tables 5 and 6).
    pub fn kernel_name(&self, record: &KernelRecord) -> String {
        use KernelClass::*;
        let tf = self.kind == FrameworkKind::TensorFlow;
        let mx = self.kind == FrameworkKind::Mxnet;
        match record.class {
            Gemm | BatchedGemm => {
                if tf {
                    "magma_lds128_sgemm_kernel".to_string()
                } else if mx {
                    "cublas::sgemm_128x64_nt".to_string()
                } else {
                    "cublas::sgemm_64x64_nn".to_string()
                }
            }
            ConvForward => "cudnn::detail::implicit_convolve_sgemm".to_string(),
            ConvBackwardData => "cudnn::detail::dgrad_engine".to_string(),
            ConvBackwardFilter => "cudnn::detail::wgrad_alg0_engine".to_string(),
            BatchNormForward => "cudnn::detail::bn_fw_tr_1C11_kernel_new".to_string(),
            BatchNormBackward => "cudnn::detail::bn_bw_1C11_kernel_new".to_string(),
            ActivationForward => "cudnn::detail::activation_fw_4d_kernel".to_string(),
            ActivationBackward => "cudnn::detail::activation_bw_4d_kernel".to_string(),
            Elementwise | Dropout | DataMovement => {
                if tf {
                    if record.origin == "bias" {
                        "tensorflow::BiasNHWCKernel".to_string()
                    } else {
                        "Eigen::internal::EigenMetaKernel".to_string()
                    }
                } else if mx {
                    "ZN5mxnet2op8mxnet_op20mxnet_generic_kernel".to_string()
                } else {
                    "Microsoft::MSR::CNTK::_launchUnaryTensorOp".to_string()
                }
            }
            LayerNormForward | LayerNormBackward => {
                if tf {
                    "tensorflow::fused_layer_norm_kernel".to_string()
                } else {
                    "layer_norm_kernel".to_string()
                }
            }
            PoolForward | PoolBackward => "cudnn::detail::pooling_fw_4d_kernel".to_string(),
            SoftmaxForward | SoftmaxBackward => "cudnn::detail::softmax_fw_kernel".to_string(),
            EmbeddingForward | EmbeddingBackward => {
                if tf {
                    "tensorflow::GatherOpKernel".to_string()
                } else {
                    "embedding_kernel".to_string()
                }
            }
            Reduction => {
                if tf {
                    "Eigen::internal::ReductionInitKernel".to_string()
                } else {
                    "reduce_kernel".to_string()
                }
            }
            OptimizerUpdate => {
                if mx {
                    "mxnet::op::sgd_mom_update".to_string()
                } else {
                    "training_ops::ApplyMomentum".to_string()
                }
            }
            MemcpyH2D => "[CUDA memcpy HtoD]".to_string(),
            Communication => "nccl::AllReduceKernel".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_models::resnet::ResNetConfig;

    #[test]
    fn table2_framework_support() {
        let tf = Framework::tensorflow();
        let mx = Framework::mxnet();
        let cntk = Framework::cntk();
        assert!(tf.supports(ModelKind::Transformer));
        assert!(!mx.supports(ModelKind::Transformer));
        assert!(mx.supports(ModelKind::DeepSpeech2));
        assert!(!tf.supports(ModelKind::DeepSpeech2));
        assert!(cntk.supports(ModelKind::ResNet50));
        assert!(!cntk.supports(ModelKind::Seq2Seq));
        assert_eq!(tf.seq2seq_implementation(), "NMT");
        assert_eq!(mx.seq2seq_implementation(), "Sockeye");
    }

    #[test]
    fn host_threading_profiles_rank_like_fig7() {
        // Fig. 7's CPU-utilisation ordering: TensorFlow drives the most
        // host parallelism, CNTK runs essentially serial.
        let tf = Framework::tensorflow().host_threading();
        let mx = Framework::mxnet().host_threading();
        let ck = Framework::cntk().host_threading();
        assert!(tf.inter_op_parallel && mx.inter_op_parallel && !ck.inter_op_parallel);
        assert_eq!(tf.intra_op_threads, 0); // auto: saturate the machine
        assert_eq!(ck.intra_op_threads, 1); // serial kernels
        assert!(mx.intra_op_threads >= 1);
        // The knobs plug straight into a Session.
        let model = ResNetConfig::tiny().build(2).unwrap();
        let mut session = tbd_graph::Session::with_exec(model.graph, 1, ck);
        assert_eq!(session.exec_config(), ck);
        session.set_exec_config(tf);
        assert_eq!(session.exec_config(), tf);
    }

    #[test]
    fn profile_of_tiny_resnet_produces_metrics() {
        let model = ResNetConfig::tiny().build(4).unwrap();
        let gpu = GpuSpec::quadro_p4000();
        let p = Framework::mxnet().profile(&model, &gpu).unwrap();
        assert!(p.throughput > 0.0);
        assert!(p.iteration.gpu_utilization > 0.0 && p.iteration.gpu_utilization <= 1.0);
        assert!(p.memory.total() > 0);
        assert!(p.memory.peak(MemoryCategory::Weights) > 0);
    }

    #[test]
    fn mxnet_has_largest_dynamic_category() {
        let w = 100_000_000u64;
        let d_tf = Framework::tensorflow().dynamic_bytes(w);
        let d_mx = Framework::mxnet().dynamic_bytes(w);
        let d_ck = Framework::cntk().dynamic_bytes(w);
        assert!(d_mx > d_tf && d_mx > d_ck);
        assert!(d_mx >= w, "momentum state is at least the weight size");
    }

    #[test]
    fn oversized_batch_reports_oom() {
        // A paper-scale ResNet-50 at mini-batch 512 exceeds 8 GB.
        let model = ResNetConfig::resnet50().build(512).unwrap();
        let gpu = GpuSpec::quadro_p4000();
        let err = Framework::tensorflow().profile(&model, &gpu).unwrap_err();
        assert!(err.requested > 0);
    }

    #[test]
    fn kernel_names_match_paper_tables() {
        let tf = Framework::tensorflow();
        let mx = Framework::mxnet();
        let rec = |class| KernelRecord {
            origin: "x",
            node: tbd_graph::NodeId::from_index(0),
            class,
            phase: tbd_graph::Phase::Forward,
            duration_s: 1e-3,
            end_s: 1e-3,
            fp32_utilization: 0.3,
            flops: 1.0,
            bound: tbd_gpusim::Bound::Compute,
        };
        assert!(tf.kernel_name(&rec(KernelClass::Gemm)).contains("magma"));
        assert!(tf.kernel_name(&rec(KernelClass::BatchNormBackward)).contains("bn_bw_1C11"));
        assert!(mx.kernel_name(&rec(KernelClass::Elementwise)).contains("mxnet_generic_kernel"));
        assert!(tf.kernel_name(&rec(KernelClass::Elementwise)).contains("Eigen"));
    }

    #[test]
    fn traced_profile_spans_every_layer_and_matches_untraced_metrics() {
        let model = ResNetConfig::tiny().build(4).unwrap();
        let gpu = GpuSpec::quadro_p4000();
        let fw = Framework::tensorflow();
        let tracer = TraceRecorder::shared();
        let traced =
            fw.profile_traced(&model, &gpu, WorkloadHints::default(), &tracer).unwrap();
        let plain = fw.profile(&model, &gpu).unwrap();
        assert_eq!(traced.iteration.wall_time_s.to_bits(), plain.iteration.wall_time_s.to_bits());
        let events = tracer.drain();
        assert!(events.iter().any(|e| e.layer == TraceLayer::GpuSim
            && e.kind == EventKind::KernelExec));
        assert!(events.iter().any(|e| e.layer == TraceLayer::GpuSim && e.kind == EventKind::Alloc));
        assert!(events
            .iter()
            .any(|e| e.layer == TraceLayer::Framework && e.kind == EventKind::Iteration));
    }

    #[test]
    fn traced_oom_run_records_the_failing_allocation() {
        let model = ResNetConfig::resnet50().build(512).unwrap();
        let gpu = GpuSpec::quadro_p4000();
        let tracer = TraceRecorder::shared();
        let err = Framework::tensorflow()
            .profile_traced(&model, &gpu, WorkloadHints::default(), &tracer)
            .unwrap_err();
        let events = tracer.drain();
        let fail = events
            .iter()
            .find(|e| e.kind == EventKind::AllocFail)
            .expect("OOM run must end with an AllocFail event");
        assert_eq!(fail.name, err.category.to_string());
        assert!(fail.args.contains(&("bytes", err.requested.into())));
    }

    #[test]
    fn planned_iteration_ends_with_optimizer_updates() {
        let model = ResNetConfig::tiny().build(2).unwrap();
        let kernels = Framework::cntk().plan(&model);
        let last = kernels.last().unwrap();
        assert_eq!(last.spec.class, KernelClass::OptimizerUpdate);
        let updates =
            kernels.iter().filter(|k| k.spec.class == KernelClass::OptimizerUpdate).count();
        assert_eq!(updates, model.graph.params().len());
    }
}
