//! Error type for graph construction and execution.

use std::error::Error;
use std::fmt;
use tbd_tensor::TensorError;

/// Errors produced while building or executing a dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An underlying tensor kernel rejected its operands.
    Tensor(TensorError),
    /// A node id does not belong to this graph.
    UnknownNode(usize),
    /// `forward` was called without feeding a required input node.
    MissingFeed {
        /// Name given to the input when it was declared.
        name: String,
    },
    /// A feed's shape does not match the declared input shape.
    FeedShapeMismatch {
        /// Name of the input being fed.
        name: String,
        /// Shape the graph declared.
        expected: Vec<usize>,
        /// Shape of the supplied tensor.
        actual: Vec<usize>,
    },
    /// An operation received the wrong number of inputs.
    Arity {
        /// Name of the operation.
        op: &'static str,
        /// Required number of inputs.
        expected: usize,
        /// Supplied number of inputs.
        actual: usize,
    },
    /// `backward` was asked to seed a node that was never computed.
    ValueNotComputed(usize),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Tensor(e) => write!(f, "tensor error: {e}"),
            GraphError::UnknownNode(id) => write!(f, "node {id} does not belong to this graph"),
            GraphError::MissingFeed { name } => write!(f, "input '{name}' was not fed"),
            GraphError::FeedShapeMismatch { name, expected, actual } => {
                write!(f, "input '{name}' expects shape {expected:?}, got {actual:?}")
            }
            GraphError::Arity { op, expected, actual } => {
                write!(f, "{op}: expected {expected} inputs, got {actual}")
            }
            GraphError::ValueNotComputed(id) => {
                write!(f, "node {id} has no value in this run state")
            }
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_errors() {
        let te = TensorError::LengthMismatch { expected: 4, actual: 2 };
        let ge: GraphError = te.clone().into();
        assert_eq!(ge, GraphError::Tensor(te));
        assert!(ge.to_string().contains("tensor error"));
    }

    #[test]
    fn display_variants() {
        assert!(GraphError::MissingFeed { name: "x".into() }.to_string().contains("'x'"));
        assert!(GraphError::Arity { op: "matmul", expected: 2, actual: 1 }
            .to_string()
            .contains("matmul"));
    }
}
