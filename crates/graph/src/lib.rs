//! Dataflow-graph intermediate representation for the TBD reproduction.
//!
//! The frameworks the paper studies (TensorFlow, MXNet, CNTK) all transform
//! user programs into a dataflow graph whose nodes dispatch GPU kernels.
//! This crate provides that layer:
//!
//! * [`GraphBuilder`] / [`Graph`] — construct a typed, shape-inferred graph
//!   of [`Op`]s in topological order;
//! * [`Session`] — eager forward/backward execution with real tensors
//!   (reverse-mode autodiff over the saved activations, exactly the
//!   "stash feature maps for the backward pass" structure the paper's
//!   memory analysis hinges on);
//! * [`lowering`](crate::lower) — per-node [`KernelSpec`]s (FLOPs, bytes
//!   moved, workspace) that the GPU simulator consumes to cost a training
//!   iteration *without* executing it at full scale.
//!
//! # Examples
//!
//! ```
//! use tbd_graph::{GraphBuilder, Init, Session};
//! use tbd_tensor::Tensor;
//!
//! # fn main() -> Result<(), tbd_graph::GraphError> {
//! let mut g = GraphBuilder::new();
//! let x = g.input("x", [4, 2]);
//! let w = g.parameter("w", [2, 3], Init::Xavier { fan_in: 2, fan_out: 3 });
//! let y = g.matmul(x, w)?;
//! let loss = g.mean_all(y)?;
//! let graph = g.finish();
//!
//! let mut session = Session::new(graph, 42);
//! let run = session.forward(&[(x, Tensor::ones([4, 2]))])?;
//! let grads = session.backward(&run, loss, Tensor::scalar(1.0))?;
//! assert!(grads.param_grad(w).is_some());
//! # Ok(())
//! # }
//! ```

pub mod dot;
pub mod error;
pub mod exec;
pub mod fuse;
pub mod graph;
pub mod kernel;
pub mod lower;
pub mod op;
pub mod trace;

pub use dot::to_dot;
pub use error::GraphError;
pub use exec::{ExecConfig, Gradients, RunState, Session};
pub use fuse::{fused_spec, fusion_family, FusionFamily, FusionGroup, FusionPlan, FUSION_RULES};
pub use graph::{Graph, GraphBuilder, Init, Node, NodeId};
pub use kernel::{KernelClass, KernelSpec, Phase};
pub use op::Op;
pub use trace::{ArgValue, EventKind, TraceEvent, TraceLayer, TraceRecorder, TraceSink};

/// Convenience alias for results returned throughout this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
