//! Graphviz DOT export of dataflow graphs — the reproduction's counterpart
//! of the frameworks' graph visualisers (TensorBoard graphs, `mx.viz`).

use crate::{Graph, Op};

/// Renders the graph in Graphviz DOT format.
///
/// Parameters are boxes, inputs are diamonds, compute nodes are ellipses
/// labelled `mnemonic  [shape]`. Pipe through `dot -Tsvg` to visualise.
/// Graphs above `max_nodes` are truncated with a summary node so that
/// full-scale RNN unrollings stay renderable.
pub fn to_dot(graph: &Graph, max_nodes: usize) -> String {
    let mut out = String::from("digraph tbd {\n  rankdir=TB;\n  node [fontsize=10];\n");
    let n = graph.len().min(max_nodes);
    for (i, node) in graph.nodes().iter().take(n).enumerate() {
        let (shape_attr, label) = match &node.op {
            Op::Parameter { name } => ("box", format!("{name}\\n{}", node.shape)),
            Op::Input { name } => ("diamond", format!("{name}\\n{}", node.shape)),
            op => ("ellipse", format!("{}\\n{}", op.mnemonic(), node.shape)),
        };
        out.push_str(&format!("  n{i} [shape={shape_attr}, label=\"{label}\"];\n"));
        for input in &node.inputs {
            if input.index() < n {
                out.push_str(&format!("  n{} -> n{i};\n", input.index()));
            }
        }
    }
    if graph.len() > max_nodes {
        out.push_str(&format!(
            "  truncated [shape=note, label=\"… {} more nodes\"];\n",
            graph.len() - max_nodes
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Init};

    fn sample() -> Graph {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [2, 3]);
        let w = g.parameter("w", [3, 4], Init::Zeros);
        let y = g.matmul(x, w).unwrap();
        let _ = g.relu(y).unwrap();
        g.finish()
    }

    #[test]
    fn dot_contains_every_node_and_edge() {
        let dot = to_dot(&sample(), 100);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("shape=diamond")); // input
        assert!(dot.contains("shape=box")); // parameter
        assert!(dot.contains("matmul"));
        assert!(dot.contains("n0 -> n2"));
        assert!(dot.contains("n2 -> n3"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn truncation_leaves_valid_dot() {
        let dot = to_dot(&sample(), 2);
        assert!(dot.contains("2 more nodes"));
        // No dangling edge to a truncated node.
        assert!(!dot.contains("-> n3"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
