//! Lowering of graph nodes to GPU-kernel cost descriptors.
//!
//! Per paper §3.4, the kernels invoked for the same model on different
//! frameworks are "usually functionally the same"; this module produces that
//! framework-independent kernel stream. Framework-specific behaviour
//! (launch overheads, kernel library names, workspace autotuning) is layered
//! on top by `tbd-frameworks`.

use crate::fuse::{fused_spec, fusion_family, FusionFamily, FusionPlan};
use crate::{Graph, KernelClass, KernelSpec, NodeId, Op, Phase};

const F32: f64 = 4.0;

/// A kernel launch attributed to the node that generated it.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredKernel {
    /// Node that generated the launch.
    pub node: NodeId,
    /// Phase the launch belongs to.
    pub phase: Phase,
    /// Cost descriptor.
    pub spec: KernelSpec,
}

/// Lowers one training iteration (forward + backward over every node that
/// requires gradients) into an ordered kernel stream.
///
/// Weight-update kernels are *not* included — optimizers differ per
/// framework and are appended by the caller (see
/// [`optimizer_update_kernels`]).
pub fn lower_training_iteration(graph: &Graph) -> Vec<LoweredKernel> {
    lower_training_iteration_fused(graph, None)
}

/// Lowers one training iteration with an optional [`FusionPlan`] applied.
///
/// The plan fuses the backward pass symmetrically to the forward pass: a
/// group's epilogue tail (every member except a contraction root)
/// back-propagates as **one** fused gradient kernel, emitted at the
/// anchor — the first member the reverse sweep reaches. A contraction
/// root keeps its own dgrad/wgrad kernels, exactly as cuDNN keeps
/// convolution backward-data/-filter launches separate from the fused
/// `bn+relu` backward epilogue.
pub fn lower_training_iteration_fused(
    graph: &Graph,
    plan: Option<&FusionPlan>,
) -> Vec<LoweredKernel> {
    let needs = graph.requires_grad();
    let mut stream = Vec::new();
    forward_stream_into(graph, plan, &mut stream);
    for i in (0..graph.len()).rev() {
        if !needs[i] {
            continue;
        }
        let id = NodeId(i);
        if let Some(plan) = plan {
            if let Some(g) = plan.group_of(id) {
                let group = &plan.groups()[g];
                let root_is_contraction = fusion_family(&graph.node(group.root()).op)
                    == Some(FusionFamily::Contraction);
                let tail = &group.nodes()[usize::from(root_is_contraction)..];
                let in_tail = tail.contains(&id);
                if in_tail && id != group.anchor() {
                    continue; // folded into the fused kernel at the anchor
                }
                if id == group.anchor() {
                    if let Some(spec) = fused_backward_spec(graph, tail, &needs) {
                        stream.push(LoweredKernel {
                            node: group.anchor(),
                            phase: Phase::Backward,
                            spec,
                        });
                    }
                    continue;
                }
                // Contraction root: falls through to its own backward
                // kernels below.
            }
        }
        for spec in backward_kernels(graph, id, &needs) {
            stream.push(LoweredKernel { node: id, phase: Phase::Backward, spec });
        }
    }
    stream
}

/// The merged gradient kernel for a fusion group's epilogue tail: FLOPs,
/// traffic, and workspace are summed over the members' per-node backward
/// kernels (traffic is kept conservative — interior gradients are not
/// elided), the class is the backward class of the strongest member, and
/// the name is `fused:<m1>+<m2>+….grad` over the tail in dataflow order.
/// Returns `None` when no tail member emits a backward kernel.
fn fused_backward_spec(graph: &Graph, tail: &[NodeId], needs: &[bool]) -> Option<KernelSpec> {
    let mut flops = 0.0;
    let mut bytes = 0.0;
    let mut workspace = 0u64;
    let mut any = false;
    let mut best = FusionFamily::Elementwise;
    let mut class = KernelClass::Elementwise;
    for &id in tail {
        if !needs[id.index()] {
            continue;
        }
        for spec in backward_kernels(graph, id, needs) {
            flops += spec.flops;
            bytes += spec.bytes;
            workspace = workspace.max(spec.workspace_bytes);
            any = true;
        }
        let node = graph.node(id);
        let family = fusion_family(&node.op).expect("tail members are fusable");
        if family >= best {
            best = family;
            class = match (&node.op, family) {
                (Op::BatchNorm { .. }, _) => KernelClass::BatchNormBackward,
                (Op::LayerNorm { .. }, _) => KernelClass::LayerNormBackward,
                (_, FusionFamily::Activation) => KernelClass::ActivationBackward,
                (_, FusionFamily::Dropout) => KernelClass::Dropout,
                (_, _) => KernelClass::Elementwise,
            };
        }
    }
    if !any {
        return None;
    }
    let name = crate::fuse::intern_name(format!(
        "fused:{}.grad",
        tail.iter().map(|&id| graph.node(id).op.mnemonic()).collect::<Vec<_>>().join("+")
    ));
    Some(KernelSpec::new(class, flops, bytes, name).with_workspace(workspace))
}

/// Lowers only the forward pass (inference-style execution).
pub fn lower_forward(graph: &Graph) -> Vec<LoweredKernel> {
    lower_forward_fused(graph, None)
}

/// Lowers only the forward pass with an optional [`FusionPlan`] applied.
pub fn lower_forward_fused(graph: &Graph, plan: Option<&FusionPlan>) -> Vec<LoweredKernel> {
    let mut stream = Vec::new();
    forward_stream_into(graph, plan, &mut stream);
    stream
}

/// The single forward kernel-emission path shared by
/// [`lower_training_iteration`] and [`lower_forward`] (and their fused
/// variants), so forward lowering cannot diverge between the two: the
/// forward prefix of a training stream always equals the forward-only
/// stream for the same plan.
fn forward_stream_into(graph: &Graph, plan: Option<&FusionPlan>, stream: &mut Vec<LoweredKernel>) {
    for i in 0..graph.len() {
        let id = NodeId(i);
        if let Some(plan) = plan {
            if plan.is_interior(id) {
                continue; // emitted as part of the group's fused kernel
            }
            if let Some(group) = plan.anchored_at(id) {
                stream.push(LoweredKernel {
                    node: group.root(),
                    phase: Phase::Forward,
                    spec: fused_spec(graph, group),
                });
                continue;
            }
        }
        for spec in forward_kernels(graph, id) {
            stream.push(LoweredKernel { node: id, phase: Phase::Forward, spec });
        }
    }
}

/// Kernels for the weight-update phase: one fused update launch per
/// parameter tensor, with `flops_per_elem`/`bytes_per_elem` set by the
/// optimizer (SGD ≈ 2 FLOPs & 12 B/elem, momentum ≈ 4 & 16, Adam ≈ 8 & 24).
pub fn optimizer_update_kernels(
    graph: &Graph,
    flops_per_elem: f64,
    bytes_per_elem: f64,
) -> Vec<LoweredKernel> {
    graph
        .params()
        .iter()
        .map(|(id, _)| {
            let n = graph.node(*id).shape.len() as f64;
            LoweredKernel {
                node: *id,
                phase: Phase::Update,
                spec: KernelSpec::new(
                    KernelClass::OptimizerUpdate,
                    flops_per_elem * n,
                    bytes_per_elem * n,
                    "optimizer",
                ),
            }
        })
        .collect()
}

fn in_bytes(graph: &Graph, id: NodeId) -> f64 {
    graph.node(id).inputs.iter().map(|i| graph.node(*i).shape.byte_len() as f64).sum()
}

fn out_bytes(graph: &Graph, id: NodeId) -> f64 {
    graph.node(id).shape.byte_len() as f64
}

fn conv_dims(graph: &Graph, id: NodeId) -> (f64, f64, f64, f64, f64, f64, f64, f64) {
    let node = graph.node(id);
    let x = &graph.node(node.inputs[0]).shape;
    let w = &graph.node(node.inputs[1]).shape;
    let out = &node.shape;
    (
        x.dim(0) as f64, // n
        x.dim(1) as f64, // c
        w.dim(0) as f64, // oc
        w.dim(2) as f64, // kh
        w.dim(3) as f64, // kw
        out.dim(2) as f64, // oh
        out.dim(3) as f64, // ow
        x.dim(2) as f64 * x.dim(3) as f64, // in spatial
    )
}

/// Forward kernels of a single node.
pub fn forward_kernels(graph: &Graph, id: NodeId) -> Vec<KernelSpec> {
    let node = graph.node(id);
    let inb = in_bytes(graph, id);
    let outb = out_bytes(graph, id);
    let len = node.shape.len() as f64;
    match &node.op {
        Op::Parameter { .. } => vec![],
        Op::Input { .. } => {
            vec![KernelSpec::new(KernelClass::MemcpyH2D, 0.0, outb, "input")]
        }
        Op::MatMul => {
            let a = &graph.node(node.inputs[0]).shape;
            let (m, k) = (a.dim(0) as f64, a.dim(1) as f64);
            let n = node.shape.dim(1) as f64;
            vec![KernelSpec::new(KernelClass::Gemm, 2.0 * m * k * n, inb + outb, "matmul")]
        }
        Op::BatchMatMul => {
            let a = &graph.node(node.inputs[0]).shape;
            let (b, m, k) = (a.dim(0) as f64, a.dim(1) as f64, a.dim(2) as f64);
            let n = node.shape.dim(2) as f64;
            vec![KernelSpec::new(
                KernelClass::BatchedGemm,
                2.0 * b * m * k * n,
                inb + outb,
                "batch_matmul",
            )]
        }
        Op::Conv2d(_) => {
            let (n, c, oc, kh, kw, oh, ow, _) = conv_dims(graph, id);
            let flops = 2.0 * n * oc * oh * ow * c * kh * kw;
            let ws = (F32 * c * kh * kw * oh * ow) as u64;
            vec![KernelSpec::new(KernelClass::ConvForward, flops, inb + outb, "conv2d")
                .with_workspace(ws)]
        }
        Op::Transpose
        | Op::BatchTranspose
        | Op::Concat { .. }
        | Op::SliceCols { .. }
        | Op::SliceRows { .. }
        | Op::Permute3(_) => {
            vec![KernelSpec::new(KernelClass::DataMovement, 0.0, inb + outb, node_origin(&node.op))]
        }
        Op::Reshape(_) => vec![],
        Op::AddBias | Op::Add | Op::Sub | Op::Mul | Op::Scale(_) | Op::AddScalar(_) => {
            vec![KernelSpec::new(KernelClass::Elementwise, len, inb + outb, node_origin(&node.op))]
        }
        Op::Relu | Op::LeakyRelu(_) => {
            vec![KernelSpec::new(KernelClass::ActivationForward, len, inb + outb, "activation")]
        }
        Op::Sigmoid | Op::Tanh => {
            vec![KernelSpec::new(KernelClass::ActivationForward, 4.0 * len, inb + outb, "activation")]
        }
        Op::MaxPool(cfg) | Op::AvgPool(cfg) => {
            let window = (cfg.kernel * cfg.kernel) as f64;
            vec![KernelSpec::new(KernelClass::PoolForward, len * window, inb + outb, "pool")]
        }
        Op::GlobalAvgPool => {
            vec![KernelSpec::new(KernelClass::Reduction, inb / F32, inb + outb, "gap")]
        }
        Op::Upsample2x => {
            vec![KernelSpec::new(KernelClass::DataMovement, 0.0, inb + outb, "upsample")]
        }
        Op::BatchNorm { .. } => {
            // Two statistics passes + one normalise pass over the data.
            vec![KernelSpec::new(KernelClass::BatchNormForward, 8.0 * len, 3.0 * (inb + outb) / 2.0, "batch_norm")]
        }
        Op::LayerNorm { .. } => {
            vec![KernelSpec::new(KernelClass::LayerNormForward, 8.0 * len, 3.0 * (inb + outb) / 2.0, "layer_norm")]
        }
        Op::Softmax => {
            vec![KernelSpec::new(KernelClass::SoftmaxForward, 5.0 * len, 2.0 * (inb + outb), "softmax")]
        }
        Op::CrossEntropy => {
            let lin = graph.node(node.inputs[0]).shape.len() as f64;
            vec![KernelSpec::new(KernelClass::Reduction, 5.0 * lin, 2.0 * inb, "cross_entropy")]
        }
        Op::Embedding => {
            vec![KernelSpec::new(KernelClass::EmbeddingForward, 0.0, 2.0 * outb, "embedding")]
        }
        Op::MeanAll | Op::SumAll => {
            vec![KernelSpec::new(KernelClass::Reduction, inb / F32, inb, "reduce")]
        }
        Op::Dropout { .. } => {
            vec![KernelSpec::new(KernelClass::Dropout, 2.0 * len, 3.0 * outb, "dropout")]
        }
    }
}

/// Backward kernels of a single node, restricted to inputs that require
/// gradients.
pub fn backward_kernels(graph: &Graph, id: NodeId, needs: &[bool]) -> Vec<KernelSpec> {
    let node = graph.node(id);
    let input_needs =
        |k: usize| node.op.input_differentiable(k) && needs[node.inputs[k].index()];
    let inb = in_bytes(graph, id);
    let outb = out_bytes(graph, id);
    let len = node.shape.len() as f64;
    match &node.op {
        Op::Input { .. } | Op::Parameter { .. } => vec![],
        Op::MatMul => {
            let a = &graph.node(node.inputs[0]).shape;
            let (m, k) = (a.dim(0) as f64, a.dim(1) as f64);
            let n = node.shape.dim(1) as f64;
            let mut v = Vec::new();
            if input_needs(0) {
                v.push(KernelSpec::new(KernelClass::Gemm, 2.0 * m * n * k, inb + outb, "matmul_bwd_a"));
            }
            if input_needs(1) {
                v.push(KernelSpec::new(KernelClass::Gemm, 2.0 * k * m * n, inb + outb, "matmul_bwd_b"));
            }
            v
        }
        Op::BatchMatMul => {
            let a = &graph.node(node.inputs[0]).shape;
            let (b, m, k) = (a.dim(0) as f64, a.dim(1) as f64, a.dim(2) as f64);
            let n = node.shape.dim(2) as f64;
            let mut v = Vec::new();
            if input_needs(0) {
                v.push(KernelSpec::new(
                    KernelClass::BatchedGemm,
                    2.0 * b * m * n * k,
                    inb + outb,
                    "batch_matmul_bwd_a",
                ));
            }
            if input_needs(1) {
                v.push(KernelSpec::new(
                    KernelClass::BatchedGemm,
                    2.0 * b * k * m * n,
                    inb + outb,
                    "batch_matmul_bwd_b",
                ));
            }
            v
        }
        Op::Conv2d(_) => {
            let (n, c, oc, kh, kw, oh, ow, _) = conv_dims(graph, id);
            let flops = 2.0 * n * oc * oh * ow * c * kh * kw;
            let ws = (F32 * c * kh * kw * oh * ow) as u64;
            let mut v = Vec::new();
            if input_needs(0) {
                v.push(
                    KernelSpec::new(KernelClass::ConvBackwardData, flops, inb + outb, "conv2d_bwd_data")
                        .with_workspace(ws),
                );
            }
            if input_needs(1) {
                v.push(
                    KernelSpec::new(KernelClass::ConvBackwardFilter, flops, inb + outb, "conv2d_bwd_filter")
                        .with_workspace(ws),
                );
            }
            v
        }
        Op::Transpose
        | Op::BatchTranspose
        | Op::Concat { .. }
        | Op::SliceCols { .. }
        | Op::SliceRows { .. }
        | Op::Permute3(_) => {
            vec![KernelSpec::new(KernelClass::DataMovement, 0.0, inb + outb, node_origin(&node.op))]
        }
        Op::Reshape(_) => vec![],
        Op::AddBias => {
            // dx is the identity; only the bias reduction launches a kernel.
            if input_needs(1) {
                vec![KernelSpec::new(KernelClass::Reduction, len, outb, "bias_bwd")]
            } else {
                vec![]
            }
        }
        Op::Add | Op::Sub => {
            vec![KernelSpec::new(KernelClass::Elementwise, len, 2.0 * outb, "ew_bwd")]
        }
        Op::Mul => {
            let mut v = Vec::new();
            if input_needs(0) {
                v.push(KernelSpec::new(KernelClass::Elementwise, len, 3.0 * outb, "mul_bwd"));
            }
            if input_needs(1) {
                v.push(KernelSpec::new(KernelClass::Elementwise, len, 3.0 * outb, "mul_bwd"));
            }
            v
        }
        Op::Scale(_) | Op::AddScalar(_) => {
            vec![KernelSpec::new(KernelClass::Elementwise, len, 2.0 * outb, "ew_bwd")]
        }
        Op::Relu | Op::LeakyRelu(_) => {
            vec![KernelSpec::new(KernelClass::ActivationBackward, len, 3.0 * outb, "activation_bwd")]
        }
        Op::Sigmoid | Op::Tanh => {
            vec![KernelSpec::new(KernelClass::ActivationBackward, 3.0 * len, 3.0 * outb, "activation_bwd")]
        }
        Op::MaxPool(_) => {
            vec![KernelSpec::new(KernelClass::PoolBackward, len, inb + outb, "pool_bwd")]
        }
        Op::AvgPool(cfg) => {
            let window = (cfg.kernel * cfg.kernel) as f64;
            vec![KernelSpec::new(KernelClass::PoolBackward, len * window, inb + outb, "pool_bwd")]
        }
        Op::GlobalAvgPool => {
            vec![KernelSpec::new(KernelClass::Elementwise, inb / F32, inb, "gap_bwd")]
        }
        Op::Upsample2x => {
            vec![KernelSpec::new(KernelClass::Elementwise, len, inb + outb, "upsample_bwd")]
        }
        Op::BatchNorm { .. } => {
            let xb = graph.node(node.inputs[0]).shape.byte_len() as f64;
            vec![KernelSpec::new(KernelClass::BatchNormBackward, 12.0 * len, 4.0 * xb, "batch_norm_bwd")]
        }
        Op::LayerNorm { .. } => {
            let xb = graph.node(node.inputs[0]).shape.byte_len() as f64;
            vec![KernelSpec::new(KernelClass::LayerNormBackward, 12.0 * len, 4.0 * xb, "layer_norm_bwd")]
        }
        Op::Softmax => {
            vec![KernelSpec::new(KernelClass::SoftmaxBackward, 4.0 * len, 3.0 * outb, "softmax_bwd")]
        }
        Op::CrossEntropy => {
            let lin = graph.node(node.inputs[0]).shape.len() as f64;
            let lb = graph.node(node.inputs[0]).shape.byte_len() as f64;
            vec![KernelSpec::new(KernelClass::SoftmaxBackward, 2.0 * lin, 2.0 * lb, "cross_entropy_bwd")]
        }
        Op::Embedding => {
            vec![KernelSpec::new(KernelClass::EmbeddingBackward, len, 2.0 * outb, "embedding_bwd")]
        }
        Op::MeanAll | Op::SumAll => {
            vec![KernelSpec::new(KernelClass::Elementwise, inb / F32, inb, "reduce_bwd")]
        }
        Op::Dropout { .. } => {
            vec![KernelSpec::new(KernelClass::Elementwise, len, 3.0 * outb, "dropout_bwd")]
        }
    }
}

fn node_origin(op: &Op) -> &'static str {
    op.mnemonic()
}

/// Static memory footprint of a training iteration, broken down into the
/// categories of the paper's memory profiler (Fig. 9). The `dynamic`
/// category (optimizer state et al.) is framework-specific and added by
/// `tbd-frameworks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryFootprint {
    /// Model weights.
    pub weights: u64,
    /// Weight gradients (same extent as the weights).
    pub weight_grads: u64,
    /// Feature maps: every intermediate activation stashed for the backward
    /// pass, plus per-op auxiliary buffers (argmax indices, saved
    /// normalisations, dropout masks), the device-resident mini-batch, and
    /// the gradient maps mirroring them (see `GRADIENT_MAPS_FACTOR`).
    pub feature_maps: u64,
    /// Raw stashed activations only (no gradient-map mirror) — the bytes a
    /// vDNN-style offloader can actually move to the host.
    pub activations: u64,
    /// Largest single-kernel workspace requested during the iteration (the
    /// minimum a framework must reserve).
    pub workspace: u64,
    /// Sum of per-layer workspace requests across forward and backward
    /// kernels — what a framework that caches one workspace per operator
    /// (as MXNet and TensorFlow do) would hold at its autotuning maximum.
    pub workspace_total: u64,
}

impl MemoryFootprint {
    /// Total bytes across all categories (counting the minimum workspace).
    pub fn total(&self) -> u64 {
        self.weights + self.weight_grads + self.feature_maps + self.workspace
    }
}

/// Multiplier covering the gradient maps of stashed activations: the
/// backward pass materialises a gradient buffer for (nearly) every forward
/// activation, and the paper's profiler folds those into the feature-map
/// category (its Fig. 1 shows "gradient maps" mirroring every feature map).
const GRADIENT_MAPS_FACTOR: f64 = 1.75;

/// Computes the framework-independent memory footprint of one training
/// iteration over `graph`.
///
/// Activations of in-place operators (ReLU family) are not counted — all
/// three frameworks apply them in place, overwriting their input buffer.
pub fn memory_footprint(graph: &Graph) -> MemoryFootprint {
    let needs = graph.requires_grad();
    let mut weights = 0u64;
    let mut activations = 0u64;
    for (i, node) in graph.nodes().iter().enumerate() {
        let bytes = node.shape.byte_len() as u64;
        match &node.op {
            Op::Parameter { .. } => weights += bytes,
            Op::Reshape(_) => {} // aliases its input
            Op::Relu | Op::LeakyRelu(_) => {} // applied in place
            _ => {
                activations += bytes;
                activations += aux_bytes(graph, NodeId(i));
            }
        }
    }
    let feature_maps = (activations as f64 * GRADIENT_MAPS_FACTOR) as u64;
    let mut workspace = 0u64;
    let mut workspace_total = 0u64;
    for (i, node) in graph.nodes().iter().enumerate() {
        for k in forward_kernels(graph, NodeId(i)) {
            workspace = workspace.max(k.workspace_bytes);
            workspace_total += k.workspace_bytes;
        }
        if needs[i] {
            for k in backward_kernels(graph, NodeId(i), &needs) {
                workspace = workspace.max(k.workspace_bytes);
                workspace_total += k.workspace_bytes;
            }
        }
        let _ = node;
    }
    MemoryFootprint { weights, weight_grads: weights, feature_maps, activations, workspace, workspace_total }
}

/// Weight-gradient bytes attributed to the graph node whose backward kernel
/// completes each parameter's gradient.
///
/// The backward pass walks nodes in reverse topological order, so for a
/// parameter with several consumers the *lowest-indexed* consumer's backward
/// kernel is the last to touch the accumulated gradient — that node is the
/// one whose completion makes the gradient ready to ship. The returned list
/// is sorted by consumer node id and its byte total equals
/// [`MemoryFootprint::weight_grads`] whenever every parameter is consumed.
pub fn weight_grad_bytes_by_consumer(graph: &Graph) -> Vec<(NodeId, u64)> {
    use std::collections::BTreeMap;
    // One edge sweep instead of a per-parameter scan: consumers are visited
    // in ascending index order, so the first sighting of each producer IS
    // its minimum consumer.
    let mut first_consumer: Vec<Option<usize>> = vec![None; graph.nodes().len()];
    for (j, node) in graph.nodes().iter().enumerate() {
        for input in &node.inputs {
            let slot = &mut first_consumer[input.index()];
            if slot.is_none() {
                *slot = Some(j);
            }
        }
    }
    let mut by_consumer: BTreeMap<usize, u64> = BTreeMap::new();
    for (i, node) in graph.nodes().iter().enumerate() {
        if !matches!(node.op, Op::Parameter { .. }) {
            continue;
        }
        if let Some(j) = first_consumer[i] {
            *by_consumer.entry(j).or_insert(0) += node.shape.byte_len() as u64;
        }
    }
    by_consumer.into_iter().map(|(j, b)| (NodeId(j), b)).collect()
}

/// Auxiliary per-op buffers stashed between forward and backward.
fn aux_bytes(graph: &Graph, id: NodeId) -> u64 {
    let node = graph.node(id);
    let out = node.shape.byte_len() as u64;
    match &node.op {
        // cuDNN saves only per-channel statistics (x̂ is recomputed in the
        // backward kernel), so the aux cost is negligible.
        Op::BatchNorm { .. } | Op::LayerNorm { .. } => 0,
        // int32 argmax per output element.
        Op::MaxPool(_) => out,
        // The survival mask.
        Op::Dropout { .. } => out,
        // Saved probabilities.
        Op::CrossEntropy => graph.node(node.inputs[0]).shape.byte_len() as u64,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Init};
    use tbd_tensor::ops::Conv2dConfig;

    fn mlp() -> (Graph, NodeId) {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [8, 16]);
        let w = g.parameter("w", [16, 32], Init::Zeros);
        let h = g.matmul(x, w).unwrap();
        let h = g.relu(h).unwrap();
        let t = g.input("t", [8]);
        let loss = g.cross_entropy(h, t).unwrap();
        (g.finish(), loss)
    }

    #[test]
    fn matmul_flops_are_2mkn() {
        let (graph, _) = mlp();
        let stream = lower_training_iteration(&graph);
        let gemm: Vec<_> =
            stream.iter().filter(|k| k.spec.class == KernelClass::Gemm).collect();
        // One forward GEMM, one backward (only the weight needs grad: the
        // input x does not, so dA is skipped).
        assert_eq!(gemm.len(), 2);
        assert_eq!(gemm[0].spec.flops, 2.0 * 8.0 * 16.0 * 32.0);
        assert_eq!(gemm[0].phase, Phase::Forward);
        assert_eq!(gemm[1].phase, Phase::Backward);
    }

    #[test]
    fn weight_grad_bytes_attribute_every_parameter_to_a_consumer() {
        let (graph, _) = mlp();
        let by_consumer = weight_grad_bytes_by_consumer(&graph);
        let total: u64 = by_consumer.iter().map(|(_, b)| b).sum();
        assert_eq!(total, memory_footprint(&graph).weight_grads);
        // Every consumer is a non-parameter node that really takes the
        // parameter as input.
        for (id, bytes) in &by_consumer {
            assert!(*bytes > 0);
            assert!(!matches!(graph.node(*id).op, Op::Parameter { .. }));
        }
    }

    #[test]
    fn backward_stream_is_reverse_topological() {
        let (graph, _) = mlp();
        let stream = lower_training_iteration(&graph);
        let bwd: Vec<_> =
            stream.iter().filter(|k| k.phase == Phase::Backward).map(|k| k.node).collect();
        for w in bwd.windows(2) {
            assert!(w[0] >= w[1], "backward kernels must run in reverse order");
        }
    }

    #[test]
    fn conv_lowering_has_three_heavy_kernels() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [2, 3, 8, 8]);
        let w = g.parameter("w", [4, 3, 3, 3], Init::Zeros);
        let y = g.conv2d(x, w, Conv2dConfig::new(1, 1)).unwrap();
        let s = g.sum_all(y).unwrap();
        let _ = s;
        let graph = g.finish();
        let stream = lower_training_iteration(&graph);
        let conv_fwd = stream.iter().find(|k| k.spec.class == KernelClass::ConvForward).unwrap();
        assert_eq!(conv_fwd.spec.flops, 2.0 * 2.0 * 4.0 * 8.0 * 8.0 * 3.0 * 3.0 * 3.0);
        assert!(conv_fwd.spec.workspace_bytes > 0);
        // x is an input without grad: only the filter gradient kernel runs.
        assert!(stream.iter().any(|k| k.spec.class == KernelClass::ConvBackwardFilter));
        assert!(!stream.iter().any(|k| k.spec.class == KernelClass::ConvBackwardData));
    }

    #[test]
    fn memory_footprint_categories() {
        let (graph, _) = mlp();
        let fp = memory_footprint(&graph);
        // w is 16*32 floats.
        assert_eq!(fp.weights, 16 * 32 * 4);
        assert_eq!(fp.weight_grads, fp.weights);
        // feature maps: x (8*16) + h (8*32) + relu(h) (8*32) + loss scalar +
        // targets (8) + CE aux probs (8*32).
        assert!(fp.feature_maps > 0);
        assert_eq!(fp.total(), fp.weights + fp.weight_grads + fp.feature_maps + fp.workspace);
    }

    #[test]
    fn optimizer_kernels_cover_every_param() {
        let (graph, _) = mlp();
        let upd = optimizer_update_kernels(&graph, 2.0, 12.0);
        assert_eq!(upd.len(), graph.params().len());
        assert_eq!(upd[0].spec.flops, 2.0 * (16 * 32) as f64);
        assert_eq!(upd[0].phase, Phase::Update);
    }

    #[test]
    fn forward_stream_is_a_prefix_of_the_training_stream() {
        // The regression contract for the shared emission path: for any
        // plan (none or fused), lower_forward is exactly the forward prefix
        // of lower_training_iteration, and everything after it is backward.
        let graphs = [mlp().0, {
            let mut g = GraphBuilder::new();
            let x = g.input("x", [2, 3, 8, 8]);
            let w = g.parameter("w", [4, 3, 3, 3], Init::Zeros);
            let c = g.conv2d(x, w, Conv2dConfig::new(1, 1)).unwrap();
            let gamma = g.parameter("g", [4], Init::Ones);
            let beta = g.parameter("b", [4], Init::Zeros);
            let bn = g.batch_norm(c, gamma, beta, 1e-5).unwrap();
            let r = g.relu(bn).unwrap();
            let _ = g.sum_all(r).unwrap();
            g.finish()
        }];
        for graph in &graphs {
            let plan = FusionPlan::analyze(graph);
            for plan in [None, Some(&plan)] {
                let fwd = lower_forward_fused(graph, plan);
                let full = lower_training_iteration_fused(graph, plan);
                assert!(fwd.len() <= full.len());
                assert_eq!(&full[..fwd.len()], &fwd[..], "forward prefix diverged");
                assert!(full[fwd.len()..].iter().all(|k| k.phase == Phase::Backward));
            }
        }
    }

    #[test]
    fn fused_lowering_emits_fewer_launches_with_same_flops() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [2, 3, 8, 8]);
        let w = g.parameter("w", [4, 3, 3, 3], Init::Zeros);
        let c = g.conv2d(x, w, Conv2dConfig::new(1, 1)).unwrap();
        let gamma = g.parameter("g", [4], Init::Ones);
        let beta = g.parameter("b", [4], Init::Zeros);
        let bn = g.batch_norm(c, gamma, beta, 1e-5).unwrap();
        let r = g.relu(bn).unwrap();
        let _ = g.sum_all(r).unwrap();
        let graph = g.finish();
        let plan = FusionPlan::analyze(&graph);
        let unfused = lower_forward(&graph);
        let fused = lower_forward_fused(&graph, Some(&plan));
        assert_eq!(unfused.len() - fused.len(), plan.launches_eliminated());
        let flops = |s: &[LoweredKernel]| s.iter().map(|k| k.spec.flops).sum::<f64>();
        assert_eq!(flops(&unfused), flops(&fused), "fusion must not change arithmetic");
        let bytes = |s: &[LoweredKernel]| s.iter().map(|k| k.spec.bytes).sum::<f64>();
        assert!(bytes(&fused) < bytes(&unfused), "fusion eliminates interior traffic");
        assert!(fused.iter().any(|k| k.spec.origin == "fused:conv2d+batch_norm+relu"));
    }

    #[test]
    fn reshape_is_free() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [2, 6]);
        let r = g.reshape(x, [3, 4]).unwrap();
        let _ = g.sum_all(r).unwrap();
        let graph = g.finish();
        let stream = lower_forward(&graph);
        assert!(stream.iter().all(|k| k.node != r));
    }
}

/// Attributes stashed-activation bytes to the operator type that produced
/// them — the layer-wise view the paper's memory profiler gives developers
/// ("pinpoint how much memory is consumed by different data structures").
///
/// Reshape aliases and in-place activations contribute nothing, matching
/// [`memory_footprint`]'s accounting; the returned bytes are raw
/// activations (no gradient-map factor).
pub fn activation_bytes_by_op(graph: &Graph) -> std::collections::BTreeMap<&'static str, u64> {
    let mut by_op = std::collections::BTreeMap::new();
    for (i, node) in graph.nodes().iter().enumerate() {
        let bytes = node.shape.byte_len() as u64;
        match &node.op {
            Op::Parameter { .. } | Op::Reshape(_) | Op::Relu | Op::LeakyRelu(_) => {}
            op => {
                *by_op.entry(op.mnemonic()).or_insert(0) +=
                    bytes + aux_bytes(graph, NodeId(i));
            }
        }
    }
    by_op
}

#[cfg(test)]
mod attribution_tests {
    use super::*;
    use crate::{GraphBuilder, Init};
    use tbd_tensor::ops::Conv2dConfig;

    #[test]
    fn attribution_sums_to_raw_activations() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [2, 3, 8, 8]);
        let w = g.parameter("w", [4, 3, 3, 3], Init::Zeros);
        let c = g.conv2d(x, w, Conv2dConfig::new(1, 1)).unwrap();
        let gamma = g.parameter("g", [4], Init::Ones);
        let beta = g.parameter("b", [4], Init::Zeros);
        let bn = g.batch_norm(c, gamma, beta, 1e-5).unwrap();
        let r = g.relu(bn).unwrap();
        let _ = g.sum_all(r).unwrap();
        let graph = g.finish();
        let by_op = activation_bytes_by_op(&graph);
        let total: u64 = by_op.values().sum();
        let fp = memory_footprint(&graph);
        assert_eq!(total, fp.activations);
        // The ReLU is in-place and must not appear.
        assert!(!by_op.contains_key("relu"));
        assert!(by_op["conv2d"] > 0 && by_op["batch_norm"] > 0);
    }
}

/// Memory footprint of *inference* over the same graph: weights plus the
/// transient activation working set (producers freed as soon as all
/// consumers ran — no stashing, no gradients).
///
/// This quantifies the paper's motivating contrast (§1): inference
/// footprints are dominated by weights and are orders of magnitude below
/// training footprints, which stash every feature map for the backward
/// pass.
pub fn inference_footprint(graph: &Graph) -> MemoryFootprint {
    let mut weights = 0u64;
    // Last consumer index per node determines when its buffer frees.
    let mut last_use = vec![0usize; graph.len()];
    for (i, node) in graph.nodes().iter().enumerate() {
        for input in &node.inputs {
            last_use[input.index()] = i;
        }
    }
    let mut live = 0u64;
    let mut peak = 0u64;
    let mut free_at: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
    for (i, node) in graph.nodes().iter().enumerate() {
        // Release buffers whose last consumer has executed.
        if let Some(bytes) = free_at.remove(&i) {
            live = live.saturating_sub(bytes);
        }
        let bytes = node.shape.byte_len() as u64;
        match &node.op {
            Op::Parameter { .. } => weights += bytes,
            Op::Reshape(_) | Op::Relu | Op::LeakyRelu(_) => {}
            _ => {
                live += bytes;
                peak = peak.max(live);
                let release = last_use[i].max(i) + 1;
                *free_at.entry(release).or_insert(0) += bytes;
            }
        }
    }
    MemoryFootprint {
        weights,
        weight_grads: 0,
        feature_maps: peak,
        activations: peak,
        workspace: memory_footprint(graph).workspace,
        workspace_total: 0,
    }
}

/// Liveness-based arena plan for one training iteration, computed from
/// [`lower_training_iteration`] order.
///
/// The plan walks the kernel stream in emission order and simulates a
/// slab allocator: every forward kernel allocates its node's output buffer
/// (plus a transient workspace that frees as soon as the kernel retires),
/// activations stay live until the owning node's backward kernel consumes
/// them, and gradient buffers free once handed to the optimizer. `reused`
/// is the byte volume that freed slabs can serve instead of fresh
/// allocations — the arena's headroom over a bump allocator — and `peak`
/// is the high-water mark an arena actually needs.
///
/// Everything here is a pure function of graph topology, so the numbers
/// are deterministic and safe to attach to digest-bearing trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaPlan {
    /// Number of buffer requests across the iteration.
    pub requests: u64,
    /// Total bytes requested (what a bump allocator would consume).
    pub requested_bytes: u64,
    /// Peak live bytes (what the arena must actually hold).
    pub peak_bytes: u64,
    /// Bytes served by reusing freed slabs: `requested - peak`.
    pub reused_bytes: u64,
}

/// Computes the [`ArenaPlan`] of one training iteration over `graph`.
pub fn arena_plan(graph: &Graph) -> ArenaPlan {
    let needs = graph.requires_grad();
    let mut requests = 0u64;
    let mut requested = 0u64;
    let mut live = 0u64;
    let mut peak = 0u64;
    let mut alloc = |bytes: u64, live: &mut u64, peak: &mut u64| {
        if bytes == 0 {
            return;
        }
        requests += 1;
        requested += bytes;
        *live += bytes;
        *peak = (*peak).max(*live);
    };
    // Forward: every node's output (and transient workspace) allocates;
    // activations stay live for the backward pass.
    for (i, node) in graph.nodes().iter().enumerate() {
        let out = node.shape.byte_len() as u64;
        match &node.op {
            Op::Parameter { .. } | Op::Reshape(_) => {}
            _ => alloc(out, &mut live, &mut peak),
        }
        for kernel in forward_kernels(graph, NodeId(i)) {
            if kernel.workspace_bytes > 0 {
                alloc(kernel.workspace_bytes, &mut live, &mut peak);
                live -= kernel.workspace_bytes; // workspace frees with the kernel
            }
        }
    }
    // Backward, in reverse emission order: each node allocates its input
    // gradients, then its own stashed activation and incoming gradient
    // free (their last consumer has run).
    for i in (0..graph.len()).rev() {
        if !needs[i] {
            continue;
        }
        let node = graph.node(NodeId(i));
        for kernel in backward_kernels(graph, NodeId(i), &needs) {
            if kernel.workspace_bytes > 0 {
                alloc(kernel.workspace_bytes, &mut live, &mut peak);
                live -= kernel.workspace_bytes;
            }
        }
        for input in &node.inputs {
            let in_node = graph.node(*input);
            if needs[input.index()] && !matches!(in_node.op, Op::Parameter { .. }) {
                alloc(in_node.shape.byte_len() as u64, &mut live, &mut peak);
            }
        }
        if !matches!(node.op, Op::Parameter { .. } | Op::Reshape(_)) {
            live = live.saturating_sub(node.shape.byte_len() as u64);
        }
    }
    ArenaPlan {
        requests,
        requested_bytes: requested,
        peak_bytes: peak,
        reused_bytes: requested.saturating_sub(peak),
    }
}

#[cfg(test)]
mod arena_tests {
    use super::*;
    use crate::{GraphBuilder, Init};

    #[test]
    fn arena_plan_finds_reuse_in_deep_chains() {
        let mut g = GraphBuilder::new();
        let mut x = g.input("x", [4, 64]);
        for i in 0..10 {
            let w = g.parameter(&format!("w{i}"), [64, 64], Init::Zeros);
            x = g.matmul(x, w).unwrap();
            x = g.tanh(x).unwrap();
        }
        let _ = g.sum_all(x).unwrap();
        let graph = g.finish();
        let plan = arena_plan(&graph);
        assert!(plan.requests > 0);
        assert!(plan.peak_bytes > 0);
        assert!(plan.peak_bytes <= plan.requested_bytes);
        assert_eq!(plan.reused_bytes, plan.requested_bytes - plan.peak_bytes);
        // The backward pass frees stashed activations as it retires them,
        // so a deep chain must show real reuse headroom.
        assert!(plan.reused_bytes > 0, "{plan:?}");
    }

    #[test]
    fn arena_plan_is_deterministic() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [8, 16]);
        let w = g.parameter("w", [16, 32], Init::Zeros);
        let h = g.matmul(x, w).unwrap();
        let h = g.relu(h).unwrap();
        let t = g.input("t", [8]);
        let _ = g.cross_entropy(h, t).unwrap();
        let graph = g.finish();
        assert_eq!(arena_plan(&graph), arena_plan(&graph));
    }
}

#[cfg(test)]
mod inference_tests {
    use super::*;
    use crate::{GraphBuilder, Init};

    #[test]
    fn inference_frees_activations_training_stashes_them() {
        // A deep chain: training keeps every layer, inference keeps ~2.
        let mut g = GraphBuilder::new();
        let mut x = g.input("x", [4, 64]);
        for i in 0..10 {
            let w = g.parameter(&format!("w{i}"), [64, 64], Init::Zeros);
            x = g.matmul(x, w).unwrap();
            x = g.tanh(x).unwrap();
        }
        let _ = g.sum_all(x).unwrap();
        let graph = g.finish();
        let train = memory_footprint(&graph);
        let infer = inference_footprint(&graph);
        assert_eq!(infer.weight_grads, 0, "no gradients at inference");
        assert!(
            infer.feature_maps * 4 < train.feature_maps,
            "inference working set {} vs training stash {}",
            infer.feature_maps,
            train.feature_maps
        );
        assert_eq!(infer.weights, train.weights);
    }
}
