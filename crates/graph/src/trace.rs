//! The unified trace spine shared by every layer of the toolchain.
//!
//! The paper's measurement apparatus (§3.4) stitches together nvprof kernel
//! timelines, framework-level profiles and memory snapshots; this module is
//! the reproduction's equivalent backbone. Every layer — the functional
//! executor ([`crate::exec::Session`]), the GPU simulator (`tbd-gpusim`),
//! the framework profiles (`tbd-frameworks`), the cluster model
//! (`tbd-distrib`) and the analysis pipeline (`tbd-profiler`) — records
//! typed [`TraceEvent`]s into one [`TraceRecorder`], and `tbd-profiler`
//! merges them into a single per-iteration `Trace` with Chrome-trace and
//! nvprof-style exporters.
//!
//! The spine lives here (not in `tbd-profiler`) because `tbd-graph` is the
//! lowest crate all instrumented layers already depend on; `tbd-profiler`
//! re-exports everything, so user code only sees `tbd_profiler::trace`.
//!
//! Recording is zero-cost when disabled: instrumented code holds an
//! `Option<Arc<TraceRecorder>>` and the disabled path is a null check.
//! Threads inside the executor's wave scheduler buffer events locally and
//! publish the whole batch under a single short lock per wave, so tracing
//! never serialises kernel execution.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which layer of the toolchain emitted an event. Maps to a Chrome-trace
/// process so each layer gets its own swim-lane group in Perfetto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceLayer {
    /// The functional graph executor (`tbd-graph::exec`), host wall-clock.
    Executor,
    /// The analytic device model (`tbd-gpusim`), simulated device time.
    GpuSim,
    /// Framework execution profiles (`tbd-frameworks`), simulated time.
    Framework,
    /// The cluster model (`tbd-distrib`), simulated time.
    Distrib,
    /// The analysis pipeline (`tbd-profiler`), logical analysis steps.
    Profiler,
}

impl TraceLayer {
    /// Chrome-trace `pid` of this layer's process.
    pub fn pid(self) -> u32 {
        match self {
            TraceLayer::Executor => 1,
            TraceLayer::GpuSim => 2,
            TraceLayer::Framework => 3,
            TraceLayer::Distrib => 4,
            TraceLayer::Profiler => 5,
        }
    }

    /// Human-readable process name shown in the trace viewer.
    pub fn process_name(self) -> &'static str {
        match self {
            TraceLayer::Executor => "executor (host)",
            TraceLayer::GpuSim => "gpusim (device model)",
            TraceLayer::Framework => "framework profile",
            TraceLayer::Distrib => "distrib (cluster model)",
            TraceLayer::Profiler => "profiler (analysis)",
        }
    }

    /// All layers, in pid order.
    pub const ALL: [TraceLayer; 5] = [
        TraceLayer::Executor,
        TraceLayer::GpuSim,
        TraceLayer::Framework,
        TraceLayer::Distrib,
        TraceLayer::Profiler,
    ];

    /// Dense index of this layer into per-layer accounting arrays
    /// (`ALL[layer.index()] == layer`).
    pub fn index(self) -> usize {
        self.pid() as usize - 1
    }
}

impl std::fmt::Display for TraceLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TraceLayer::Executor => "executor",
            TraceLayer::GpuSim => "gpusim",
            TraceLayer::Framework => "framework",
            TraceLayer::Distrib => "distrib",
            TraceLayer::Profiler => "profiler",
        };
        f.write_str(s)
    }
}

/// What kind of work a span or instant event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// Execution of one graph node (executor layer).
    NodeExec,
    /// A kernel resident on the simulated device.
    KernelExec,
    /// CPU-side kernel launch (driver + framework dispatch).
    KernelLaunch,
    /// Host-to-device (or device-to-host) copy.
    Memcpy,
    /// Device-memory allocation.
    Alloc,
    /// Device-memory release.
    Free,
    /// An allocation that failed (out of device memory).
    AllocFail,
    /// Framework synchronisation / bookkeeping that keeps the device idle.
    Sync,
    /// Gradient exchange (all-reduce / parameter-server push+pull).
    Communication,
    /// A whole training-iteration span.
    Iteration,
    /// A named phase of the pipeline (input pipeline, analysis stage…).
    Phase,
    /// An injected fault (worker crash, OOM, loss spike, stall, corrupted
    /// checkpoint) observed by the resilience layer.
    Fault,
    /// A recovery action taken in response to a fault (restore, replay,
    /// skip-batch, re-plan, wait).
    Recovery,
    /// A checkpoint written (or verified) by the training loop.
    Checkpoint,
    /// A membership-epoch transition in the elastic layer: the worker
    /// cohort changed (eviction or rejoin) and collectives re-bucketed.
    Membership,
    /// A worker evicted from the cohort after missing a collective
    /// deadline (exhausted per-bucket retries).
    Eviction,
    /// A previously evicted worker rejoining the cohort via checkpoint
    /// restore plus replay catch-up.
    Rejoin,
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EventKind::NodeExec => "node",
            EventKind::KernelExec => "kernel",
            EventKind::KernelLaunch => "launch",
            EventKind::Memcpy => "memcpy",
            EventKind::Alloc => "alloc",
            EventKind::Free => "free",
            EventKind::AllocFail => "alloc_fail",
            EventKind::Sync => "sync",
            EventKind::Communication => "comm",
            EventKind::Iteration => "iteration",
            EventKind::Phase => "phase",
            EventKind::Fault => "fault",
            EventKind::Recovery => "recovery",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Membership => "membership",
            EventKind::Eviction => "eviction",
            EventKind::Rejoin => "rejoin",
        };
        f.write_str(s)
    }
}

/// Typed argument value attached to an event. Only deterministic data may
/// be stored here — args always participate in the golden-trace digest.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// String argument.
    Str(Cow<'static, str>),
    /// Floating-point argument (digested by exact bit pattern).
    F64(f64),
    /// Unsigned integer argument.
    U64(u64),
    /// Boolean argument.
    Bool(bool),
}

impl ArgValue {
    /// JSON rendering of the value.
    pub fn to_json(&self) -> String {
        match self {
            ArgValue::Str(s) => format!("\"{}\"", escape_json(s)),
            ArgValue::F64(v) => {
                if v.is_finite() {
                    format!("{v:.6}")
                } else {
                    "null".to_string()
                }
            }
            ArgValue::U64(v) => v.to_string(),
            ArgValue::Bool(b) => b.to_string(),
        }
    }

    /// Canonical text used by the digest: exact, platform-independent.
    pub fn canonical(&self) -> String {
        match self {
            ArgValue::Str(s) => format!("s:{s}"),
            ArgValue::F64(v) => format!("f:{:016x}", v.to_bits()),
            ArgValue::U64(v) => format!("u:{v}"),
            ArgValue::Bool(b) => format!("b:{b}"),
        }
    }
}

impl From<&'static str> for ArgValue {
    fn from(s: &'static str) -> Self {
        ArgValue::Str(Cow::Borrowed(s))
    }
}

impl From<String> for ArgValue {
    fn from(s: String) -> Self {
        ArgValue::Str(Cow::Owned(s))
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One structured trace event: a span (`dur_us > 0`) or an instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event label (kernel name, op mnemonic, phase name).
    pub name: Cow<'static, str>,
    /// Emitting layer (Chrome-trace process).
    pub layer: TraceLayer,
    /// Work category.
    pub kind: EventKind,
    /// Start time in microseconds on the layer's own clock.
    pub start_us: f64,
    /// Duration in microseconds (0 for instant events).
    pub dur_us: f64,
    /// Track within the layer (Chrome-trace `tid`): simulated GPU stream,
    /// executor thread slot, memory track…
    pub track: u32,
    /// Whether `start_us`/`dur_us`/`track` are deterministic (simulated or
    /// logical time). Host wall-clock spans set this to `false`, and the
    /// golden-trace digest then ignores their timing fields while still
    /// digesting name, layer, kind and args.
    pub deterministic: bool,
    /// Typed arguments. Only deterministic values belong here — every arg
    /// participates in the golden-trace digest.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// Creates a deterministic span (simulated or logical time).
    pub fn span(
        name: impl Into<Cow<'static, str>>,
        layer: TraceLayer,
        kind: EventKind,
        start_us: f64,
        dur_us: f64,
    ) -> Self {
        TraceEvent {
            name: name.into(),
            layer,
            kind,
            start_us,
            dur_us,
            track: 0,
            deterministic: true,
            args: Vec::new(),
        }
    }

    /// Creates a deterministic instant event.
    pub fn instant(
        name: impl Into<Cow<'static, str>>,
        layer: TraceLayer,
        kind: EventKind,
        start_us: f64,
    ) -> Self {
        TraceEvent::span(name, layer, kind, start_us, 0.0)
    }

    /// Marks the timing fields as host wall-clock (excluded from digests).
    pub fn wall_clock(mut self) -> Self {
        self.deterministic = false;
        self
    }

    /// Sets the track (builder style).
    pub fn on_track(mut self, track: u32) -> Self {
        self.track = track;
        self
    }

    /// Attaches an argument (builder style).
    pub fn with_arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }

    /// End time in microseconds.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }

    /// Canonical one-line form consumed by the golden-trace digest.
    ///
    /// Non-deterministic events contribute their identity (layer, kind,
    /// name, args) but not their wall-clock timing or thread attribution,
    /// which is what keeps digests stable across `intra_op_threads`
    /// settings while still asserting bitwise-identical *results* via
    /// value-hash args.
    pub fn canonical(&self) -> String {
        use std::fmt::Write;
        let mut line = String::with_capacity(64);
        let _ = write!(line, "{}|{}|{}", self.layer, self.kind, self.name);
        if self.deterministic {
            let _ = write!(
                line,
                "|t:{:016x}+{:016x}@{}",
                self.start_us.to_bits(),
                self.dur_us.to_bits(),
                self.track
            );
        }
        for (key, value) in &self.args {
            let _ = write!(line, "|{key}={}", value.canonical());
        }
        line
    }
}

/// A live consumer of trace events, attached to a [`TraceRecorder`] via
/// [`TraceRecorder::set_sink`].
///
/// Sinks observe every recorded event *online*, batch by batch, in exactly
/// the order the recorder stores them — the contract that lets a streaming
/// aggregator (`tbd-profiler::agg`) fold an unbounded event stream into
/// bounded-memory metrics while the run is still executing, instead of
/// draining the whole trace afterwards. `consume` is called with the
/// recorder's event lock held so ordering is serialised; implementations
/// must be fast, must not panic, and must never call back into the
/// recorder.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Observes a batch of events that were just recorded, in order.
    fn consume(&self, events: &[TraceEvent]);
}

/// Number of log2 buckets in the sink-latency histogram: bucket `i` counts
/// sink batches whose `consume` call took `[2^i, 2^(i+1))` nanoseconds
/// (bucket 0 additionally absorbs sub-nanosecond readings), so 32 buckets
/// span up to ~4 s — far beyond any sane sink.
pub const SINK_LATENCY_BUCKETS: usize = 32;

/// Platform-independent size model of one retained event: a fixed struct
/// overhead plus the name bytes plus a fixed cost per typed argument. The
/// observer accounts its own memory with this formula (not
/// `size_of`-based arithmetic) so `tbd_internal_event_bytes_total` is
/// byte-identical across hosts and pointer widths.
#[must_use]
pub fn approx_event_bytes(event: &TraceEvent) -> u64 {
    64 + event.name.len() as u64 + 16 * event.args.len() as u64
}

/// The recorder's self-observability counters (DESIGN.md §5i): what the
/// observer itself cost, measured by the observer. Deterministic fields
/// (event counts, modelled bytes, drops) feed the `tbd_internal_*` metric
/// series; wall-clock fields (`record_ns_total`, the sink latency
/// histogram) are reported out-of-band via `/health` and the bench
/// overhead gate, never through digested exporters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecorderOverhead {
    /// Events recorded per layer, indexed by [`TraceLayer::index`].
    /// Includes events dropped past the retain cap — the sink observed
    /// them even when storage did not.
    pub events_by_layer: [u64; 5],
    /// Modelled bytes of every *retained* event ([`approx_event_bytes`]).
    pub event_bytes_total: u64,
    /// `record` + `record_batch` invocations.
    pub record_calls_total: u64,
    /// Events discarded by the retain cap (observed by the sink, not
    /// stored).
    pub events_dropped_total: u64,
    /// Host nanoseconds spent inside `record`/`record_batch` bodies,
    /// including sink folding. Wall-clock: never digested.
    pub record_ns_total: u64,
    /// Host nanoseconds spent inside attached-sink `consume` calls.
    pub sink_ns_total: u64,
    /// Batches forwarded to the attached sink.
    pub sink_batches_total: u64,
    /// Log2 histogram of per-batch sink `consume` latency in nanoseconds.
    pub sink_latency_hist: [u64; SINK_LATENCY_BUCKETS],
}

impl RecorderOverhead {
    /// Total events recorded across every layer (including dropped ones).
    pub fn events_total(&self) -> u64 {
        self.events_by_layer.iter().sum()
    }

    /// Fraction of `wall_s` seconds spent inside the recorder — the
    /// quantity the bench harness gates below 5%.
    pub fn overhead_fraction(&self, wall_s: f64) -> f64 {
        if wall_s <= 0.0 {
            return 0.0;
        }
        self.record_ns_total as f64 / 1e9 / wall_s
    }
}

#[derive(Debug, Default)]
struct OverheadCells {
    events_by_layer: [AtomicU64; 5],
    event_bytes: AtomicU64,
    record_calls: AtomicU64,
    dropped: AtomicU64,
    record_ns: AtomicU64,
    sink_ns: AtomicU64,
    sink_batches: AtomicU64,
    sink_latency_hist: [AtomicU64; SINK_LATENCY_BUCKETS],
}

impl OverheadCells {
    fn bucket(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(SINK_LATENCY_BUCKETS - 1)
        }
    }

    fn note_sink(&self, ns: u64) {
        self.sink_batches.fetch_add(1, Ordering::Relaxed);
        self.sink_ns.fetch_add(ns, Ordering::Relaxed);
        self.sink_latency_hist[Self::bucket(ns)].fetch_add(1, Ordering::Relaxed);
    }

    fn note_events(&self, events: &[TraceEvent]) {
        let mut by_layer = [0u64; 5];
        for event in events {
            by_layer[event.layer.index()] += 1;
        }
        for (cell, n) in self.events_by_layer.iter().zip(by_layer) {
            if n > 0 {
                cell.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    fn snapshot(&self) -> RecorderOverhead {
        let mut events_by_layer = [0u64; 5];
        for (slot, cell) in events_by_layer.iter_mut().zip(&self.events_by_layer) {
            *slot = cell.load(Ordering::Relaxed);
        }
        let mut sink_latency_hist = [0u64; SINK_LATENCY_BUCKETS];
        for (slot, cell) in sink_latency_hist.iter_mut().zip(&self.sink_latency_hist) {
            *slot = cell.load(Ordering::Relaxed);
        }
        RecorderOverhead {
            events_by_layer,
            event_bytes_total: self.event_bytes.load(Ordering::Relaxed),
            record_calls_total: self.record_calls.load(Ordering::Relaxed),
            events_dropped_total: self.dropped.load(Ordering::Relaxed),
            record_ns_total: self.record_ns.load(Ordering::Relaxed),
            sink_ns_total: self.sink_ns.load(Ordering::Relaxed),
            sink_batches_total: self.sink_batches.load(Ordering::Relaxed),
            sink_latency_hist,
        }
    }
}

/// A shared, thread-safe event sink with a wall-clock epoch.
///
/// Cloning the `Arc` hands the same sink to every layer; each layer either
/// pushes single events ([`TraceRecorder::record`]) or publishes a locally
/// buffered batch under one lock ([`TraceRecorder::record_batch`]).
///
/// An optional [`TraceSink`] observes every event live at the same batch
/// boundaries (streaming consumers pay nothing when detached: the hot path
/// is a null check under the lock already being held).
///
/// The recorder also watches itself: every record path feeds
/// [`RecorderOverhead`] (per-layer span counts, modelled retained bytes,
/// sink latency, drops), and an optional retain cap
/// ([`TraceRecorder::set_retain_cap`]) bounds stored events for
/// long-running servers — capped events still reach the sink, so streamed
/// metrics stay exact while storage stays bounded.
#[derive(Debug)]
pub struct TraceRecorder {
    events: Mutex<Vec<TraceEvent>>,
    sink: Mutex<Option<Arc<dyn TraceSink>>>,
    epoch: Instant,
    retain_cap: AtomicUsize,
    overhead: OverheadCells,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder {
            events: Mutex::new(Vec::new()),
            sink: Mutex::new(None),
            epoch: Instant::now(),
            retain_cap: AtomicUsize::new(usize::MAX),
            overhead: OverheadCells::default(),
        }
    }
}

impl TraceRecorder {
    /// Creates a shared recorder.
    pub fn shared() -> Arc<Self> {
        Arc::new(TraceRecorder::default())
    }

    /// Creates a shared recorder with a live [`TraceSink`] attached.
    pub fn shared_with_sink(sink: Arc<dyn TraceSink>) -> Arc<Self> {
        let recorder = TraceRecorder::default();
        *recorder.sink.lock().expect("sink lock") = Some(sink);
        Arc::new(recorder)
    }

    /// Attaches (or detaches, with `None`) a live event sink. Events
    /// recorded from now on are forwarded to the sink in recording order;
    /// already-recorded events are not replayed.
    pub fn set_sink(&self, sink: Option<Arc<dyn TraceSink>>) {
        *self.sink.lock().expect("sink lock") = sink;
    }

    /// Microseconds of host wall-clock elapsed since the recorder was
    /// created — the time base for executor-layer events.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Bounds the number of *retained* events. Once storage holds `cap`
    /// events, further ones are counted in
    /// [`RecorderOverhead::events_dropped_total`] and discarded — but the
    /// attached sink still observes them first, so streaming aggregation
    /// stays exact while a long-running server's memory stays bounded.
    /// The default cap is unlimited.
    pub fn set_retain_cap(&self, cap: usize) {
        self.retain_cap.store(cap, Ordering::Relaxed);
    }

    /// Snapshot of the recorder's self-observability counters.
    pub fn overhead(&self) -> RecorderOverhead {
        self.overhead.snapshot()
    }

    /// Appends one event, forwarding it to the attached sink (if any)
    /// while the event lock is held so sink order equals storage order.
    pub fn record(&self, event: TraceEvent) {
        let t0 = Instant::now();
        let mut events = self.events.lock().expect("trace lock");
        if let Some(sink) = self.sink.lock().expect("sink lock").as_ref() {
            let s0 = Instant::now();
            sink.consume(std::slice::from_ref(&event));
            self.overhead.note_sink(s0.elapsed().as_nanos() as u64);
        }
        self.overhead.record_calls.fetch_add(1, Ordering::Relaxed);
        self.overhead.note_events(std::slice::from_ref(&event));
        if events.len() < self.retain_cap.load(Ordering::Relaxed) {
            self.overhead.event_bytes.fetch_add(approx_event_bytes(&event), Ordering::Relaxed);
            events.push(event);
        } else {
            self.overhead.dropped.fetch_add(1, Ordering::Relaxed);
        }
        drop(events);
        self.overhead.record_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Appends a batch of events under a single lock — the cheap path for
    /// per-thread buffers inside the wave scheduler. The attached sink (if
    /// any) observes the whole batch in order before the lock drops.
    pub fn record_batch(&self, mut events: Vec<TraceEvent>) {
        if events.is_empty() {
            return;
        }
        let t0 = Instant::now();
        let mut stored = self.events.lock().expect("trace lock");
        if let Some(sink) = self.sink.lock().expect("sink lock").as_ref() {
            let s0 = Instant::now();
            sink.consume(&events);
            self.overhead.note_sink(s0.elapsed().as_nanos() as u64);
        }
        self.overhead.record_calls.fetch_add(1, Ordering::Relaxed);
        self.overhead.note_events(&events);
        let room = self.retain_cap.load(Ordering::Relaxed).saturating_sub(stored.len());
        if events.len() > room {
            self.overhead.dropped.fetch_add((events.len() - room) as u64, Ordering::Relaxed);
            events.truncate(room);
        }
        let bytes: u64 = events.iter().map(approx_event_bytes).sum();
        self.overhead.event_bytes.fetch_add(bytes, Ordering::Relaxed);
        stored.append(&mut events);
        drop(stored);
        self.overhead.record_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace lock").len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns every recorded event.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace lock"))
    }

    /// Clones the recorded events without draining them.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace lock").clone()
    }
}

/// FNV-1a 64-bit hash — the digest primitive used for both tensor value
/// hashes and the golden-trace digest (stable, dependency-free and
/// platform-independent).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Bitwise hash of an `f32` slice: equal exactly when the tensors are
/// bitwise identical. Attached to executor node spans so trace digests
/// assert the thread-count-invariance guarantee at the trace level.
#[must_use]
pub fn value_hash(data: &[f32]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for v in data {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_collects_and_drains() {
        let rec = TraceRecorder::shared();
        rec.record(TraceEvent::span("a", TraceLayer::GpuSim, EventKind::KernelExec, 0.0, 1.0));
        rec.record_batch(vec![
            TraceEvent::instant("b", TraceLayer::Executor, EventKind::NodeExec, 2.0),
            TraceEvent::instant("c", TraceLayer::Executor, EventKind::NodeExec, 3.0),
        ]);
        assert_eq!(rec.len(), 3);
        let events = rec.drain();
        assert_eq!(events.len(), 3);
        assert!(rec.is_empty());
        assert_eq!(events[0].name, "a");
        assert_eq!(events[2].end_us(), 3.0);
    }

    #[test]
    fn batch_publish_from_threads_is_lock_cheap_and_complete() {
        let rec = TraceRecorder::shared();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    let local: Vec<TraceEvent> = (0..25)
                        .map(|i| {
                            TraceEvent::instant(
                                format!("t{t}e{i}"),
                                TraceLayer::Executor,
                                EventKind::NodeExec,
                                f64::from(i),
                            )
                            .on_track(t)
                        })
                        .collect();
                    rec.record_batch(local);
                });
            }
        });
        assert_eq!(rec.len(), 100);
    }

    #[test]
    fn canonical_ignores_wall_clock_timing_but_keeps_args() {
        let a = TraceEvent::span("relu", TraceLayer::Executor, EventKind::NodeExec, 10.0, 5.0)
            .wall_clock()
            .on_track(1)
            .with_arg("node", 7usize)
            .with_arg("value_hash", 0xDEADu64);
        let b = TraceEvent::span("relu", TraceLayer::Executor, EventKind::NodeExec, 99.0, 1.0)
            .wall_clock()
            .on_track(3)
            .with_arg("node", 7usize)
            .with_arg("value_hash", 0xDEADu64);
        assert_eq!(a.canonical(), b.canonical(), "wall times and tracks are excluded");
        let c = b.clone().with_arg("extra", true);
        assert_ne!(a.canonical(), c.canonical());
    }

    #[test]
    fn canonical_keeps_simulated_timing_exactly() {
        let a = TraceEvent::span("sgemm", TraceLayer::GpuSim, EventKind::KernelExec, 1.5, 2.5);
        let mut b = a.clone();
        assert_eq!(a.canonical(), b.canonical());
        b.start_us = 1.5 + 1e-12;
        assert_ne!(a.canonical(), b.canonical(), "sim times are digested bit-exactly");
    }

    #[test]
    fn value_hash_is_bitwise() {
        assert_eq!(value_hash(&[1.0, 2.0]), value_hash(&[1.0, 2.0]));
        assert_ne!(value_hash(&[1.0, 2.0]), value_hash(&[2.0, 1.0]));
        // 0.0 and -0.0 are numerically equal but not bitwise identical.
        assert_ne!(value_hash(&[0.0]), value_hash(&[-0.0]));
    }

    #[test]
    fn arg_values_render_json_and_canonical() {
        assert_eq!(ArgValue::from(3usize).to_json(), "3");
        assert_eq!(ArgValue::from(true).to_json(), "true");
        assert_eq!(ArgValue::from("conv\"x\"").to_json(), "\"conv\\\"x\\\"\"");
        assert_eq!(ArgValue::from(0.5f64).canonical(), format!("f:{:016x}", 0.5f64.to_bits()));
        assert!(ArgValue::F64(f64::NAN).to_json() == "null");
    }

    #[test]
    fn overhead_counts_events_bytes_and_calls_per_layer() {
        let rec = TraceRecorder::shared();
        let a = TraceEvent::span("a", TraceLayer::GpuSim, EventKind::KernelExec, 0.0, 1.0)
            .with_arg("bytes", 64u64);
        let expected_a = approx_event_bytes(&a);
        assert_eq!(expected_a, 64 + 1 + 16);
        rec.record(a);
        rec.record_batch(vec![
            TraceEvent::instant("bb", TraceLayer::Executor, EventKind::NodeExec, 2.0),
            TraceEvent::instant("cc", TraceLayer::Distrib, EventKind::Communication, 3.0),
        ]);
        let oh = rec.overhead();
        assert_eq!(oh.events_total(), 3);
        assert_eq!(oh.events_by_layer[TraceLayer::GpuSim.index()], 1);
        assert_eq!(oh.events_by_layer[TraceLayer::Executor.index()], 1);
        assert_eq!(oh.events_by_layer[TraceLayer::Distrib.index()], 1);
        assert_eq!(oh.record_calls_total, 2);
        assert_eq!(oh.event_bytes_total, expected_a + 2 * (64 + 2));
        assert_eq!(oh.events_dropped_total, 0);
        // No sink attached: no sink batches, but record time was measured.
        assert_eq!(oh.sink_batches_total, 0);
    }

    #[test]
    fn retain_cap_drops_storage_but_sink_sees_everything() {
        #[derive(Debug, Default)]
        struct Counting(AtomicU64);
        impl TraceSink for Counting {
            fn consume(&self, events: &[TraceEvent]) {
                self.0.fetch_add(events.len() as u64, Ordering::Relaxed);
            }
        }
        let sink = Arc::new(Counting::default());
        let rec = TraceRecorder::shared_with_sink(sink.clone());
        rec.set_retain_cap(3);
        for i in 0..5 {
            rec.record(TraceEvent::instant(
                format!("e{i}"),
                TraceLayer::Profiler,
                EventKind::Phase,
                f64::from(i),
            ));
        }
        rec.record_batch(vec![
            TraceEvent::instant("f", TraceLayer::Profiler, EventKind::Phase, 9.0),
            TraceEvent::instant("g", TraceLayer::Profiler, EventKind::Phase, 10.0),
        ]);
        assert_eq!(rec.len(), 3, "storage is capped");
        assert_eq!(sink.0.load(Ordering::Relaxed), 7, "sink observed every event");
        let oh = rec.overhead();
        assert_eq!(oh.events_dropped_total, 4);
        assert_eq!(oh.events_total(), 7, "dropped events still counted per layer");
        assert_eq!(oh.sink_batches_total, 6);
        assert_eq!(oh.sink_latency_hist.iter().sum::<u64>(), 6);
        // Retained bytes cover only the stored 3 events: e0..e2, 2-byte names.
        assert_eq!(oh.event_bytes_total, 3 * (64 + 2));
    }

    #[test]
    fn sink_latency_buckets_are_log2() {
        assert_eq!(OverheadCells::bucket(0), 0);
        assert_eq!(OverheadCells::bucket(1), 0);
        assert_eq!(OverheadCells::bucket(2), 1);
        assert_eq!(OverheadCells::bucket(3), 1);
        assert_eq!(OverheadCells::bucket(1024), 10);
        assert_eq!(OverheadCells::bucket(u64::MAX), SINK_LATENCY_BUCKETS - 1);
    }

    #[test]
    fn overhead_fraction_scales_with_wall_time() {
        let oh = RecorderOverhead { record_ns_total: 5_000_000, ..RecorderOverhead::default() };
        assert!((oh.overhead_fraction(1.0) - 0.005).abs() < 1e-12);
        assert_eq!(oh.overhead_fraction(0.0), 0.0);
    }

    #[test]
    fn layers_have_distinct_pids_and_names() {
        let mut pids: Vec<u32> = TraceLayer::ALL.iter().map(|l| l.pid()).collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids.len(), TraceLayer::ALL.len());
        for layer in TraceLayer::ALL {
            assert!(!layer.process_name().is_empty());
        }
    }
}
