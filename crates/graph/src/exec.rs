//! Eager graph execution with reverse-mode autodiff.
//!
//! [`Session`] owns the parameter tensors of one graph and can run forward
//! passes (stashing every intermediate activation, exactly the behaviour
//! whose memory cost the paper profiles) and backward passes seeded from any
//! node. Training loops live in `tbd-train`; this module only provides the
//! mechanics.

use crate::fuse::{FusionGroup, FusionPlan};
use crate::trace::{EventKind, TraceEvent, TraceLayer, TraceRecorder, value_hash};
use crate::{Graph, GraphError, Init, NodeId, Op, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use tbd_tensor::ops::{self};
use tbd_tensor::{init, par, Precision, Shape, Tensor};

/// Host-side execution knobs (paper §3.5): the studied frameworks differ
/// sharply in how much CPU they spend driving kernels — TensorFlow
/// saturates an intra-op thread pool and runs independent graph nodes
/// concurrently, while CNTK's pure-C++ runtime is nearly serial (Fig. 7).
/// `tbd-frameworks` exposes one profile per framework via
/// `Framework::host_threading`.
/// The default — `{intra_op_threads: 0, inter_op_parallel: false}` — is
/// auto-sized kernels driven by a sequential node walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecConfig {
    /// Cap on scoped threads *within* one kernel (the intra-op pool size);
    /// `0` means auto (hardware parallelism). Installed process-wide via
    /// [`tbd_tensor::par::set_max_threads`] at the start of every pass.
    pub intra_op_threads: usize,
    /// Run independent ready nodes of the forward pass concurrently
    /// (inter-op parallelism, wave-scheduled). Outputs are bitwise
    /// identical to sequential execution: every kernel is deterministic
    /// across thread counts and dropout draws a per-node stream.
    pub inter_op_parallel: bool,
}

/// Per-node auxiliary state saved by the forward pass for the backward pass.
#[derive(Debug, Clone)]
enum Aux {
    None,
    BatchNorm(ops::BatchNormState),
    LayerNorm(ops::LayerNormState),
    MaxPool(Vec<usize>),
    Dropout(Tensor),
    CrossEntropy(Tensor),
}

/// The values (and auxiliary state) produced by one forward pass.
#[derive(Debug)]
pub struct RunState {
    values: Vec<Option<Tensor>>,
    aux: Vec<Aux>,
}

impl RunState {
    /// The value computed for `id`, if the forward pass reached it.
    pub fn value(&self, id: NodeId) -> Option<&Tensor> {
        self.values.get(id.index()).and_then(|v| v.as_ref())
    }

    /// Scalar convenience accessor (first element of the node's value).
    pub fn scalar(&self, id: NodeId) -> Option<f32> {
        self.value(id).and_then(|t| t.data().first().copied())
    }
}

/// Gradients produced by [`Session::backward`], indexed by node.
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the seed with respect to the given parameter node.
    pub fn param_grad(&self, id: NodeId) -> Option<&Tensor> {
        self.grads.get(id.index()).and_then(|g| g.as_ref())
    }

    /// Gradient with respect to any node (inputs included, when reachable).
    pub fn grad(&self, id: NodeId) -> Option<&Tensor> {
        self.param_grad(id)
    }

    /// Global L2 norm across all parameter gradients of `graph`.
    pub fn global_norm(&self, graph: &Graph) -> f32 {
        graph
            .params()
            .iter()
            .filter_map(|(id, _)| self.param_grad(*id))
            .map(|g| {
                let n = g.l2_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }
}

/// Owns the parameters of a [`Graph`] and executes it eagerly.
#[derive(Debug)]
pub struct Session {
    graph: Graph,
    params: HashMap<usize, Tensor>,
    seed: u64,
    /// Forward passes completed so far; mixed into dropout streams so every
    /// pass draws fresh masks.
    step: u64,
    exec: ExecConfig,
    /// `true` (default) enables dropout; evaluation mode disables it.
    pub training: bool,
    /// Shared trace sink; `None` (default) disables instrumentation and the
    /// hot path pays only a null check.
    tracer: Option<Arc<TraceRecorder>>,
    /// Forward-pass fusion plan; `None` (default) runs one node per
    /// scheduling unit. Fused execution is bitwise identical to unfused —
    /// groups evaluate their members with the same kernels in the same
    /// order — but emits one NodeExec span per group and schedules each
    /// group as a single wave unit.
    fusion: Option<Arc<FusionPlan>>,
    /// Storage precision of the forward matmul/conv kernels. `F32`
    /// (default) runs the exact baseline kernels; `F16`/`Bf16` quantise
    /// GEMM and convolution operands through the half format and
    /// accumulate in f32 (mixed precision). The backward pass always
    /// runs in f32 — the loss-scaling-free regime the paper's frameworks
    /// default to.
    precision: Precision,
    /// Cached inter-op wave schedule. The graph is immutable after
    /// construction, so the dependency structure only changes when the
    /// fusion plan does; `set_fusion`/`set_fusion_enabled` clear this.
    schedule: Option<Arc<WaveSchedule>>,
}

/// Minimum total output elements across a wave's units before the
/// compiled (fused) tier fans the wave out over scoped threads; below
/// this the kernels finish faster than the spawns, so the wave runs
/// inline on the scheduling thread.
const PARALLEL_WAVE_MIN_ELEMS: usize = 1 << 18;

/// Precomputed scheduling structure for the inter-op wave executor:
/// which nodes are leaves (bound inline, no launch), which units start
/// ready once the leaves are bound, and the dependency counts/edges
/// between kernel units. Built once per (graph, fusion plan) and reused
/// across passes — rebuilding this was a per-pass O(nodes + edges) cost
/// paid identically by fused and unfused execution.
#[derive(Debug)]
struct WaveSchedule {
    /// Nodes with no graph inputs (placeholders, parameters, constants),
    /// ascending. Binding one is a memory lookup, not a kernel launch.
    leaves: Vec<usize>,
    /// Kernel units whose external inputs are all leaves, ascending;
    /// these form the first real wave.
    initial_ready: Vec<usize>,
    /// Unresolved non-leaf external-input count per unit (template,
    /// cloned each pass).
    pending: Vec<usize>,
    /// Consumer units of each unit, kernel-launch edges only.
    consumers: Vec<Vec<usize>>,
}

fn build_wave_schedule(graph: &Graph, fusion: Option<&FusionPlan>) -> WaveSchedule {
    let n = graph.len();
    let unit_of = |i: usize| -> usize {
        match fusion.and_then(|p| p.group_of(NodeId(i))) {
            Some(g) => fusion.expect("plan present").groups()[g].anchor().index(),
            None => i,
        }
    };
    let mut is_unit = vec![true; n];
    if let Some(plan) = fusion {
        for (i, unit) in is_unit.iter_mut().enumerate() {
            *unit = !plan.is_interior(NodeId(i));
        }
    }
    // Every fusible op reads at least one input, so a leaf is always its
    // own unit — it can be neither a group interior nor an anchor.
    let is_leaf: Vec<bool> = (0..n)
        .map(|i| graph.node(NodeId(i)).inputs.is_empty())
        .collect();
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pending: Vec<usize> = vec![0; n];
    for i in 0..n {
        let consumer_unit = unit_of(i);
        for input in &graph.node(NodeId(i)).inputs {
            let producer = input.index();
            if is_leaf[producer] {
                continue; // satisfied by the inline bind wave
            }
            let producer_unit = unit_of(producer);
            if producer_unit == consumer_unit {
                continue; // intra-group edge
            }
            pending[consumer_unit] += 1;
            consumers[producer_unit].push(consumer_unit);
        }
    }
    let leaves: Vec<usize> = (0..n).filter(|&i| is_leaf[i]).collect();
    let initial_ready: Vec<usize> = (0..n)
        .filter(|&i| is_unit[i] && !is_leaf[i] && pending[i] == 0)
        .collect();
    WaveSchedule { leaves, initial_ready, pending, consumers }
}

impl Session {
    /// Creates a session, materialising every parameter from its declared
    /// initialiser with the given RNG seed.
    pub fn new(graph: Graph, seed: u64) -> Self {
        Session::with_exec(graph, seed, ExecConfig::default())
    }

    /// Creates a session with explicit host-side execution knobs.
    pub fn with_exec(graph: Graph, seed: u64, exec: ExecConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = HashMap::new();
        for (id, init_kind) in graph.params() {
            let shape = graph.node(*id).shape.clone();
            let tensor = match *init_kind {
                Init::Zeros => Tensor::zeros(shape),
                Init::Ones => Tensor::ones(shape),
                Init::Constant(v) => Tensor::full(shape, v),
                Init::Xavier { fan_in, fan_out } => {
                    init::xavier_uniform(shape, fan_in, fan_out, &mut rng)
                }
                Init::He { fan_in } => init::he_normal(shape, fan_in, &mut rng),
                Init::Uniform { lo, hi } => init::uniform(shape, lo, hi, &mut rng),
            };
            params.insert(id.index(), tensor);
        }
        Session {
            graph,
            params,
            seed,
            step: 0,
            exec,
            training: true,
            tracer: None,
            fusion: None,
            precision: Precision::F32,
            schedule: None,
        }
    }

    /// Sets the forward matmul/conv storage precision (takes effect next
    /// pass). `F32` is bitwise the baseline; `F16`/`Bf16` run the mixed
    /// kernels (half storage, f32 accumulation).
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
    }

    /// The forward storage precision this session runs with.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Installs (or clears, with `None`) a forward-pass fusion plan. The
    /// plan must have been computed for this session's graph.
    pub fn set_fusion(&mut self, plan: Option<Arc<FusionPlan>>) {
        self.fusion = plan;
        self.schedule = None;
    }

    /// Analyses this session's graph and installs the resulting fusion
    /// plan (`true`), or clears fusion (`false`).
    pub fn set_fusion_enabled(&mut self, enabled: bool) {
        self.fusion = enabled.then(|| Arc::new(FusionPlan::analyze(&self.graph)));
        self.schedule = None;
    }

    /// The installed fusion plan, if any.
    pub fn fusion(&self) -> Option<&Arc<FusionPlan>> {
        self.fusion.as_ref()
    }

    /// Attaches a shared trace recorder: subsequent passes emit one
    /// [`EventKind::NodeExec`] span per node (wall-clock timed, with wave
    /// and thread-slot attribution plus a bitwise hash of the node's output
    /// so trace digests can assert thread-count invariance) and one
    /// [`EventKind::Iteration`] span per pass. Pass `None` to detach.
    pub fn set_tracer(&mut self, tracer: Option<Arc<TraceRecorder>>) {
        self.tracer = tracer;
    }

    /// The attached trace recorder, if any.
    pub fn tracer(&self) -> Option<&Arc<TraceRecorder>> {
        self.tracer.as_ref()
    }

    /// The host-side execution knobs this session runs with.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec
    }

    /// Replaces the host-side execution knobs (takes effect next pass).
    pub fn set_exec_config(&mut self, exec: ExecConfig) {
        self.exec = exec;
    }

    /// A deterministic RNG for the dropout node at `node_index` during
    /// forward pass number `step`: SplitMix64-style mixing of (session
    /// seed, node id, step). Each dropout node draws an independent stream
    /// regardless of execution order — the property that keeps inter-op
    /// parallel forward passes bit-identical to sequential ones.
    fn dropout_rng(&self, node_index: usize, step: u64) -> StdRng {
        let mut z = self
            .seed
            .wrapping_add((node_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(step.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }

    /// The graph this session executes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of forward passes completed so far. Dropout streams are keyed
    /// on this counter, so two sessions with equal parameters, seed and
    /// step count produce bitwise-identical passes.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Overrides the forward-pass counter. Checkpoint restore uses this to
    /// resume the dropout streams exactly where the saved session left
    /// them — the property that makes crash-replay recovery bit-exact.
    pub fn set_step_count(&mut self, step: u64) {
        self.step = step;
    }

    /// Current value of a parameter.
    pub fn param(&self, id: NodeId) -> Option<&Tensor> {
        self.params.get(&id.index())
    }

    /// Mutable access to a parameter (used by optimizers).
    pub fn param_mut(&mut self, id: NodeId) -> Option<&mut Tensor> {
        self.params.get_mut(&id.index())
    }

    /// Snapshot of every parameter (A3C workers synchronise through these).
    pub fn snapshot(&self) -> Vec<(NodeId, Tensor)> {
        self.graph
            .params()
            .iter()
            .filter_map(|(id, _)| self.params.get(&id.index()).map(|t| (*id, t.clone())))
            .collect()
    }

    /// Restores parameters from a snapshot taken on a session with the same
    /// graph structure. Unknown ids are ignored.
    pub fn load_snapshot(&mut self, snapshot: &[(NodeId, Tensor)]) {
        for (id, tensor) in snapshot {
            if let Some(slot) = self.params.get_mut(&id.index()) {
                *slot = tensor.clone();
            }
        }
    }

    /// Runs the forward pass with the given input feeds.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingFeed`] / [`GraphError::FeedShapeMismatch`]
    /// for bad feeds and propagates kernel errors.
    pub fn forward(&mut self, feeds: &[(NodeId, Tensor)]) -> Result<RunState> {
        par::set_max_threads(self.exec.intra_op_threads);
        let step = self.step;
        self.step += 1;
        let feed_map: HashMap<usize, &Tensor> =
            feeds.iter().map(|(id, t)| (id.index(), t)).collect();
        let n = self.graph.len();
        let mut values: Vec<Option<Tensor>> = vec![None; n];
        let mut aux: Vec<Aux> = vec![Aux::None; n];
        let pass_start = self.tracer.as_ref().map(|t| t.now_us());
        let fusion = self.fusion.clone();
        if !self.exec.inter_op_parallel {
            for i in 0..n {
                if fusion.as_ref().is_some_and(|p| p.is_interior(NodeId(i))) {
                    continue; // evaluated inline at the group's anchor
                }
                let t0 = self.tracer.as_ref().map(|t| t.now_us());
                if let Some(group) = fusion.as_ref().and_then(|p| p.anchored_at(NodeId(i))) {
                    let computed = self.compute_group(group, step, &values)?;
                    if let Some(tracer) = &self.tracer {
                        let t1 = tracer.now_us();
                        let value = &computed.last().expect("groups are non-empty").1;
                        tracer.record(self.group_span(
                            group,
                            step,
                            (i, 0),
                            (t0.unwrap_or(t1), t1),
                            value,
                        ));
                    }
                    for (k, value, a) in computed {
                        values[k] = Some(value);
                        aux[k] = a;
                    }
                } else {
                    let (value, a) = self.compute_node(i, step, &feed_map, &values)?;
                    if let Some(tracer) = &self.tracer {
                        let t1 = tracer.now_us();
                        tracer.record(self.node_span(i, step, (i, 0), (t0.unwrap_or(t1), t1), &value));
                    }
                    values[i] = Some(value);
                    aux[i] = a;
                }
            }
            self.record_pass_span("forward", step, n, pass_start);
            return Ok(RunState { values, aux });
        }
        // Inter-op wave scheduling: repeatedly run every *unit* whose
        // external inputs are all computed, fanning a wave's units out
        // across scoped threads. A unit is either a single node or a whole
        // fusion group (anchored at its last member, so every external
        // input of every member is available when the unit runs — fewer
        // units per wave means fewer join barriers). Waves and errors are
        // processed in ascending unit order, so scheduling never changes
        // results or error reporting.
        // The two tiers schedule differently. The eager tier (no fusion
        // plan) re-derives its dependency state every pass and schedules
        // every node — leaves included — as a wave unit, modelling an
        // eager framework's per-op dispatch. The speed tier (fusion plan
        // installed) uses a schedule precompiled once per (graph, plan):
        // leaves are bound inline before the first wave (a parameter
        // lookup is a memory bind, not a kernel launch, so it spawns no
        // thread and forms no join barrier) and each fusion group is one
        // unit, modelling a graph compiler's ahead-of-time schedule.
        let schedule_arc;
        let dyn_consumers;
        let consumers: &[Vec<usize>];
        let mut pending: Vec<usize>;
        let mut ready: Vec<usize>;
        let mut wave_index: usize;
        if fusion.is_some() {
            schedule_arc = match &self.schedule {
                Some(s) if s.pending.len() == n => Arc::clone(s),
                _ => {
                    let built = Arc::new(build_wave_schedule(&self.graph, fusion.as_deref()));
                    self.schedule = Some(Arc::clone(&built));
                    built
                }
            };
            let mut leaf_events = Vec::new();
            for (slot, &i) in schedule_arc.leaves.iter().enumerate() {
                let t0 = self.tracer.as_ref().map(|t| t.now_us());
                let (value, a) = self.compute_node(i, step, &feed_map, &values)?;
                if let Some(tracer) = &self.tracer {
                    let t1 = tracer.now_us();
                    leaf_events.push(self.node_span(
                        i,
                        step,
                        (0, slot),
                        (t0.unwrap_or(t1), t1),
                        &value,
                    ));
                }
                values[i] = Some(value);
                aux[i] = a;
            }
            if let Some(tracer) = &self.tracer {
                tracer.record_batch(leaf_events);
            }
            consumers = &schedule_arc.consumers;
            pending = schedule_arc.pending.clone();
            ready = schedule_arc.initial_ready.clone();
            wave_index = 1;
        } else {
            let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
            pending = vec![0; n];
            for (i, count) in pending.iter_mut().enumerate() {
                for input in &self.graph.node(NodeId(i)).inputs {
                    *count += 1;
                    edges[input.index()].push(i);
                }
            }
            dyn_consumers = edges;
            consumers = &dyn_consumers;
            ready = (0..n).filter(|&i| pending[i] == 0).collect();
            wave_index = 0;
        }
        while !ready.is_empty() {
            let wave = std::mem::take(&mut ready);
            // Each thread times its own unit locally; spans are published
            // after the join, in ascending unit order, so the recorded
            // event sequence is deterministic regardless of thread timing.
            type Timed = (usize, Result<Vec<(usize, Tensor, Aux)>>, f64, f64);
            // The compiled tier fans a wave out over threads only when it
            // carries enough work to amortise the spawns — an ahead-of-time
            // cost-model decision keyed on static output sizes, so it is
            // deterministic and thread-count independent. The eager tier
            // always fans out, modelling per-op dispatch.
            let inline = wave.len() == 1
                || (fusion.is_some()
                    && wave
                        .iter()
                        .map(|&i| self.graph.node(NodeId(i)).shape.len())
                        .sum::<usize>()
                        < PARALLEL_WAVE_MIN_ELEMS);
            let results: Vec<Timed> = if inline {
                let mut out = Vec::with_capacity(wave.len());
                for &i in &wave {
                    let t0 = self.tracer.as_ref().map_or(0.0, |t| t.now_us());
                    let r = self.compute_unit(i, step, &feed_map, &values);
                    let t1 = self.tracer.as_ref().map_or(0.0, |t| t.now_us());
                    out.push((i, r, t0, t1));
                }
                out
            } else {
                let (this, vals, fm) = (&*self, &values, &feed_map);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = wave
                        .iter()
                        .map(|&i| {
                            scope.spawn(move || {
                                let t0 = this.tracer.as_ref().map_or(0.0, |t| t.now_us());
                                let r = this.compute_unit(i, step, fm, vals);
                                let t1 = this.tracer.as_ref().map_or(0.0, |t| t.now_us());
                                (i, r, t0, t1)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("node evaluation must not panic"))
                        .collect()
                })
            };
            let mut wave_events = Vec::new();
            for (slot, (i, result, t0, t1)) in results.into_iter().enumerate() {
                let computed = result?;
                if self.tracer.is_some() {
                    let value = &computed.last().expect("units compute at least one node").1;
                    let span = match fusion.as_ref().and_then(|p| p.anchored_at(NodeId(i))) {
                        Some(group) => {
                            self.group_span(group, step, (wave_index, slot), (t0, t1), value)
                        }
                        None => self.node_span(i, step, (wave_index, slot), (t0, t1), value),
                    };
                    wave_events.push(span);
                }
                for (k, value, a) in computed {
                    values[k] = Some(value);
                    aux[k] = a;
                }
            }
            if let Some(tracer) = &self.tracer {
                tracer.record_batch(wave_events);
            }
            for &i in &wave {
                for &consumer in &consumers[i] {
                    pending[consumer] -= 1;
                    if pending[consumer] == 0 {
                        ready.push(consumer);
                    }
                }
            }
            ready.sort_unstable();
            wave_index += 1;
        }
        self.record_pass_span("forward", step, n, pass_start);
        Ok(RunState { values, aux })
    }

    /// Computes one scheduling unit: a single node, or — when `i` anchors a
    /// fusion group — every member of the group in dataflow order. Returns
    /// `(node_index, value, aux)` triples in evaluation order.
    fn compute_unit(
        &self,
        i: usize,
        step: u64,
        feed_map: &HashMap<usize, &Tensor>,
        values: &[Option<Tensor>],
    ) -> Result<Vec<(usize, Tensor, Aux)>> {
        match self.fusion.as_ref().and_then(|p| p.anchored_at(NodeId(i))) {
            Some(group) => self.compute_group(group, step, values),
            None => {
                self.compute_node(i, step, feed_map, values).map(|(t, a)| vec![(i, t, a)])
            }
        }
    }

    /// Evaluates every member of a fusion group in dataflow order, reading
    /// interior values from a local overlay (they are not yet published to
    /// the shared value table — the fused-kernel analogue of keeping
    /// intermediates in registers). Members are never `Input`/`Parameter`
    /// nodes, and all external inputs are already computed because the
    /// group is scheduled at its anchor.
    fn compute_group(
        &self,
        group: &FusionGroup,
        step: u64,
        values: &[Option<Tensor>],
    ) -> Result<Vec<(usize, Tensor, Aux)>> {
        let mut local: Vec<(usize, Tensor, Aux)> = Vec::with_capacity(group.len());
        for &m in group.nodes() {
            let node = self.graph.node(m);
            let ins: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|id| {
                    local
                        .iter()
                        .rev()
                        .find(|(k, _, _)| *k == id.index())
                        .map(|(_, t, _)| t)
                        .or_else(|| values[id.index()].as_ref())
                        .expect("scheduled after inputs")
                })
                .collect();
            let (t, a) = self.eval(m.index(), step, &node.op, &ins, &node.shape)?;
            local.push((m.index(), t, a));
        }
        Ok(local)
    }

    /// Builds the wall-clock span for one executed node. Wave and node
    /// indices are deterministic (the wave schedule is a pure function of
    /// graph topology); wall times and the thread slot are attribution-only
    /// and excluded from golden digests. The `value_hash` arg pins the
    /// node's output bit pattern, so two traces with equal digests computed
    /// bitwise-identical tensors — the PR-1 invariance, asserted at the
    /// trace level.
    fn node_span(
        &self,
        i: usize,
        step: u64,
        (wave, slot): (usize, usize),
        (start_us, end_us): (f64, f64),
        value: &Tensor,
    ) -> TraceEvent {
        let node = self.graph.node(NodeId(i));
        TraceEvent::span(
            node.op.mnemonic(),
            TraceLayer::Executor,
            EventKind::NodeExec,
            start_us,
            (end_us - start_us).max(0.0),
        )
        .wall_clock()
        .on_track(u32::try_from(slot).unwrap_or(u32::MAX))
        .with_arg("node", i)
        .with_arg("step", step)
        .with_arg("wave", wave)
        .with_arg("value_hash", value_hash(value.data()))
    }

    /// Builds the wall-clock span for one executed fusion group: a single
    /// NodeExec span named after the fused kernel, attributed to the
    /// group's root node, carrying the member count and the bitwise hash
    /// of the group's *final* output (interior values never leave the
    /// fused kernel, so only the escaping value is pinned).
    fn group_span(
        &self,
        group: &FusionGroup,
        step: u64,
        (wave, slot): (usize, usize),
        (start_us, end_us): (f64, f64),
        value: &Tensor,
    ) -> TraceEvent {
        TraceEvent::span(
            group.name(),
            TraceLayer::Executor,
            EventKind::NodeExec,
            start_us,
            (end_us - start_us).max(0.0),
        )
        .wall_clock()
        .on_track(u32::try_from(slot).unwrap_or(u32::MAX))
        .with_arg("node", group.root().index())
        .with_arg("step", step)
        .with_arg("wave", wave)
        .with_arg("fused", group.len())
        .with_arg("value_hash", value_hash(value.data()))
    }

    /// Records the whole-pass span (forward or backward). Never includes
    /// `intra_op_threads` in the args: digests must be stable across
    /// thread counts.
    fn record_pass_span(&self, name: &'static str, step: u64, nodes: usize, start: Option<f64>) {
        if let (Some(tracer), Some(start)) = (&self.tracer, start) {
            let end = tracer.now_us();
            tracer.record(
                TraceEvent::span(name, TraceLayer::Executor, EventKind::Phase, start, end - start)
                    .wall_clock()
                    .with_arg("step", step)
                    .with_arg("nodes", nodes)
                    .with_arg("inter_op", self.exec.inter_op_parallel),
            );
        }
    }

    /// Produces the value (and auxiliary state) of one node given the
    /// already-computed values of its inputs.
    fn compute_node(
        &self,
        i: usize,
        step: u64,
        feed_map: &HashMap<usize, &Tensor>,
        values: &[Option<Tensor>],
    ) -> Result<(Tensor, Aux)> {
        let node = self.graph.node(NodeId(i));
        match &node.op {
            Op::Parameter { name } => self
                .params
                .get(&i)
                .cloned()
                .map(|t| (t, Aux::None))
                .ok_or_else(|| GraphError::MissingFeed { name: name.clone() }),
            Op::Input { name } => {
                let t = feed_map
                    .get(&i)
                    .ok_or_else(|| GraphError::MissingFeed { name: name.clone() })?;
                if t.shape() != &node.shape {
                    return Err(GraphError::FeedShapeMismatch {
                        name: name.clone(),
                        expected: node.shape.dims().to_vec(),
                        actual: t.shape().dims().to_vec(),
                    });
                }
                Ok(((*t).clone(), Aux::None))
            }
            op => {
                let ins: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|id| values[id.index()].as_ref().expect("scheduled after inputs"))
                    .collect();
                self.eval(i, step, op, &ins, &node.shape)
            }
        }
    }

    fn eval(
        &self,
        node_index: usize,
        step: u64,
        op: &Op,
        ins: &[&Tensor],
        out_shape: &Shape,
    ) -> Result<(Tensor, Aux)> {
        let mut aux = Aux::None;
        let t = match op {
            Op::Input { .. } | Op::Parameter { .. } => unreachable!("handled by caller"),
            Op::MatMul => match self.precision {
                Precision::F32 => ops::matmul(ins[0], ins[1])?,
                p => ops::matmul_mixed(ins[0], ins[1], p)?,
            },
            Op::BatchMatMul => ops::batch_matmul(ins[0], ins[1])?,
            Op::Transpose => ops::transpose(ins[0])?,
            Op::BatchTranspose => ops::batch_transpose(ins[0])?,
            Op::AddBias => ops::add_bias(ins[0], ins[1])?,
            Op::Add => ops::add(ins[0], ins[1])?,
            Op::Sub => ops::sub(ins[0], ins[1])?,
            Op::Mul => ops::mul(ins[0], ins[1])?,
            Op::Scale(s) => ops::scale(ins[0], *s),
            Op::AddScalar(s) => ins[0].map(|v| v + s),
            Op::Relu => ops::relu_forward(ins[0]),
            Op::LeakyRelu(a) => ops::leaky_relu_forward(ins[0], *a),
            Op::Sigmoid => ops::sigmoid_forward(ins[0]),
            Op::Tanh => ops::tanh_forward(ins[0]),
            Op::Conv2d(cfg) => match self.precision {
                Precision::F32 => ops::conv2d_forward(ins[0], ins[1], *cfg)?,
                p => ops::conv2d_forward_mixed(ins[0], ins[1], *cfg, p)?,
            },
            Op::MaxPool(cfg) => {
                let (y, arg) = ops::max_pool2d_forward(ins[0], *cfg)?;
                aux = Aux::MaxPool(arg);
                y
            }
            Op::AvgPool(cfg) => ops::avg_pool2d_forward(ins[0], *cfg)?,
            Op::GlobalAvgPool => ops::global_avg_pool_forward(ins[0])?,
            Op::Upsample2x => ops::upsample2x_forward(ins[0])?,
            Op::BatchNorm { eps } => {
                let (y, state) = ops::batch_norm_forward(ins[0], ins[1], ins[2], *eps)?;
                aux = Aux::BatchNorm(state);
                y
            }
            Op::LayerNorm { eps } => {
                let (y, state) = ops::layer_norm_forward(ins[0], ins[1], ins[2], *eps)?;
                aux = Aux::LayerNorm(state);
                y
            }
            Op::Softmax => ops::softmax(ins[0])?,
            Op::CrossEntropy => {
                let (loss, probs) = ops::cross_entropy_forward(ins[0], ins[1])?;
                aux = Aux::CrossEntropy(probs);
                Tensor::scalar(loss)
            }
            Op::Embedding => ops::embedding_forward(ins[0], ins[1])?,
            Op::Reshape(shape) => ins[0].reshape(shape.clone())?,
            Op::Concat { axis } => ops::concat(ins, *axis)?,
            Op::SliceCols { start, len } => ops::slice_cols(ins[0], *start, *len)?,
            Op::SliceRows { start, len } => ops::slice_rows(ins[0], *start, *len)?,
            Op::Permute3(perm) => ops::permute3(ins[0], *perm)?,
            Op::MeanAll => ops::mean_all_forward(ins[0]),
            Op::SumAll => ops::sum_all_forward(ins[0]),
            Op::Dropout { p } => {
                if self.training && *p > 0.0 {
                    let mut rng = self.dropout_rng(node_index, step);
                    let (y, mask) = ops::dropout_forward(ins[0], *p, &mut rng)?;
                    aux = Aux::Dropout(mask);
                    y
                } else {
                    ins[0].clone()
                }
            }
        };
        debug_assert_eq!(t.shape(), out_shape, "runtime shape must match inference");
        Ok((t, aux))
    }

    /// Runs reverse-mode autodiff from `seed` (with upstream gradient
    /// `seed_grad`) back to every node that requires gradients.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ValueNotComputed`] when `run` does not contain
    /// a value for `seed`, and propagates kernel errors.
    pub fn backward(&self, run: &RunState, seed: NodeId, seed_grad: Tensor) -> Result<Gradients> {
        par::set_max_threads(self.exec.intra_op_threads);
        if run.value(seed).is_none() {
            return Err(GraphError::ValueNotComputed(seed.index()));
        }
        let needs = self.graph.requires_grad();
        let n = self.graph.len();
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        grads[seed.index()] = Some(seed_grad);
        let pass_start = self.tracer.as_ref().map(|t| t.now_us());
        let mut traced_nodes = 0usize;
        for i in (0..=seed.index()).rev() {
            let Some(dy) = grads[i].clone() else { continue };
            let node = self.graph.node(NodeId(i));
            if node.inputs.is_empty() {
                continue;
            }
            let ins: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|id| run.values[id.index()].as_ref().expect("forward ran"))
                .collect();
            let t0 = self.tracer.as_ref().map(|t| t.now_us());
            let input_grads = self.grad_op(&node.op, &ins, run, i, &dy)?;
            if let Some(tracer) = &self.tracer {
                // With a fusion plan installed, a group back-propagates as
                // one fused launch: the root (reached last by the reverse
                // sweep) carries the group's single `.grad` span and the
                // other members fold into it. Gradient values are
                // untouched — only the recorded launch structure changes.
                let group = self
                    .fusion
                    .as_ref()
                    .and_then(|p| p.group_of(NodeId(i)).map(|g| &p.groups()[g]));
                let span_name = match group {
                    Some(g) if NodeId(i) != g.root() => None,
                    Some(g) => Some(crate::fuse::intern_name(format!("{}.grad", g.name()))),
                    None => {
                        Some(crate::fuse::intern_name(format!("{}.grad", node.op.mnemonic())))
                    }
                };
                if let Some(name) = span_name {
                    let t1 = tracer.now_us();
                    tracer.record(
                        TraceEvent::span(
                            name,
                            TraceLayer::Executor,
                            EventKind::NodeExec,
                            t0.unwrap_or(t1),
                            (t1 - t0.unwrap_or(t1)).max(0.0),
                        )
                        .wall_clock()
                        .with_arg("node", i)
                        .with_arg("grad_hash", value_hash(dy.data())),
                    );
                    traced_nodes += 1;
                }
            }
            for (k, grad) in input_grads.into_iter().enumerate() {
                let Some(grad) = grad else { continue };
                let target = node.inputs[k].index();
                if !needs[target] && !matches!(self.graph.node(node.inputs[k]).op, Op::Input { .. })
                {
                    continue;
                }
                grads[target] = Some(match grads[target].take() {
                    Some(existing) => ops::add(&existing, &grad)?,
                    None => grad,
                });
            }
        }
        self.record_pass_span("backward", self.step, traced_nodes, pass_start);
        Ok(Gradients { grads })
    }

    #[allow(clippy::too_many_lines)]
    fn grad_op(
        &self,
        op: &Op,
        ins: &[&Tensor],
        run: &RunState,
        node_index: usize,
        dy: &Tensor,
    ) -> Result<Vec<Option<Tensor>>> {
        let y = run.values[node_index].as_ref().expect("forward ran");
        let aux = &run.aux[node_index];
        Ok(match op {
            Op::Input { .. } | Op::Parameter { .. } => vec![],
            Op::MatMul => {
                let (da, db) = ops::matmul_backward(ins[0], ins[1], dy)?;
                vec![Some(da), Some(db)]
            }
            Op::BatchMatMul => {
                let (da, db) = ops::batch_matmul_backward(ins[0], ins[1], dy)?;
                vec![Some(da), Some(db)]
            }
            Op::Transpose => vec![Some(ops::transpose(dy)?)],
            Op::BatchTranspose => vec![Some(ops::batch_transpose(dy)?)],
            Op::AddBias => {
                vec![Some(dy.clone()), Some(ops::add_bias_backward(dy)?)]
            }
            Op::Add => vec![Some(dy.clone()), Some(dy.clone())],
            Op::Sub => vec![Some(dy.clone()), Some(ops::scale(dy, -1.0))],
            Op::Mul => {
                vec![Some(ops::mul(dy, ins[1])?), Some(ops::mul(dy, ins[0])?)]
            }
            Op::Scale(s) => vec![Some(ops::scale(dy, *s))],
            Op::AddScalar(_) => vec![Some(dy.clone())],
            Op::Relu => vec![Some(ops::relu_backward(ins[0], dy)?)],
            Op::LeakyRelu(a) => vec![Some(ops::leaky_relu_backward(ins[0], dy, *a)?)],
            Op::Sigmoid => vec![Some(ops::sigmoid_backward(y, dy)?)],
            Op::Tanh => vec![Some(ops::tanh_backward(y, dy)?)],
            Op::Conv2d(cfg) => {
                let (dx, dw) = ops::conv2d_backward(ins[0], ins[1], dy, *cfg)?;
                vec![Some(dx), Some(dw)]
            }
            Op::MaxPool(_) => {
                let Aux::MaxPool(arg) = aux else { unreachable!("max pool saved argmax") };
                vec![Some(ops::max_pool2d_backward(ins[0].shape(), arg, dy)?)]
            }
            Op::AvgPool(cfg) => {
                vec![Some(ops::avg_pool2d_backward(ins[0].shape(), dy, *cfg)?)]
            }
            Op::GlobalAvgPool => {
                vec![Some(ops::global_avg_pool_backward(ins[0].shape(), dy)?)]
            }
            Op::Upsample2x => {
                vec![Some(ops::upsample2x_backward(ins[0].shape(), dy)?)]
            }
            Op::BatchNorm { .. } => {
                let Aux::BatchNorm(state) = aux else { unreachable!("bn saved state") };
                let (dx, dgamma, dbeta) = ops::batch_norm_backward(state, ins[1], dy)?;
                vec![Some(dx), Some(dgamma), Some(dbeta)]
            }
            Op::LayerNorm { .. } => {
                let Aux::LayerNorm(state) = aux else { unreachable!("ln saved state") };
                let (dx, dgamma, dbeta) = ops::layer_norm_backward(state, ins[1], dy)?;
                vec![Some(dx), Some(dgamma), Some(dbeta)]
            }
            Op::Softmax => vec![Some(ops::softmax_backward(y, dy)?)],
            Op::CrossEntropy => {
                let Aux::CrossEntropy(probs) = aux else { unreachable!("ce saved probs") };
                let dloss = dy.data().first().copied().unwrap_or(1.0);
                vec![Some(ops::cross_entropy_backward(probs, ins[1], dloss)?), None]
            }
            Op::Embedding => {
                vec![Some(ops::embedding_backward(ins[0].shape(), ins[1], dy)?), None]
            }
            Op::Reshape(_) => vec![Some(dy.reshape(ins[0].shape().clone())?)],
            Op::Concat { axis } => {
                let shapes: Vec<Shape> = ins.iter().map(|t| t.shape().clone()).collect();
                ops::concat_backward(&shapes, *axis, dy)?.into_iter().map(Some).collect()
            }
            Op::SliceCols { start, .. } => {
                vec![Some(ops::slice_cols_backward(ins[0].shape(), *start, dy)?)]
            }
            Op::SliceRows { start, .. } => {
                vec![Some(ops::slice_rows_backward(ins[0].shape(), *start, dy)?)]
            }
            Op::Permute3(perm) => {
                vec![Some(ops::permute3(dy, ops::invert_perm3(*perm))?)]
            }
            Op::MeanAll => {
                let d = dy.data().first().copied().unwrap_or(1.0);
                vec![Some(ops::mean_all_backward(ins[0].shape(), d))]
            }
            Op::SumAll => {
                let d = dy.data().first().copied().unwrap_or(1.0);
                vec![Some(ops::sum_all_backward(ins[0].shape(), d))]
            }
            Op::Dropout { p } => {
                if let Aux::Dropout(mask) = aux {
                    vec![Some(ops::dropout_backward(mask, dy)?)]
                } else {
                    debug_assert!(!self.training || *p == 0.0);
                    vec![Some(dy.clone())]
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Builds y = relu(x·W + b), loss = CE(y, t).
    fn small_net() -> (Graph, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [4, 3]);
        let w = g.parameter("w", [3, 5], Init::Xavier { fan_in: 3, fan_out: 5 });
        let b = g.parameter("b", [5], Init::Zeros);
        let h = g.matmul(x, w).unwrap();
        let h = g.add_bias(h, b).unwrap();
        let h = g.relu(h).unwrap();
        let t = g.input("t", [4]);
        let loss = g.cross_entropy(h, t).unwrap();
        (g.finish(), x, w, b, t, loss)
    }

    #[test]
    fn forward_produces_scalar_loss() {
        let (graph, x, _, _, t, loss) = small_net();
        let mut session = Session::new(graph, 1);
        let run = session
            .forward(&[(x, Tensor::ones([4, 3])), (t, Tensor::from_slice(&[0.0, 1.0, 2.0, 3.0]))])
            .unwrap();
        let l = run.scalar(loss).unwrap();
        assert!(l.is_finite() && l > 0.0);
    }

    #[test]
    fn missing_feed_is_reported() {
        let (graph, x, _, _, _, _) = small_net();
        let mut session = Session::new(graph, 1);
        let err = session.forward(&[(x, Tensor::ones([4, 3]))]).unwrap_err();
        assert!(matches!(err, GraphError::MissingFeed { .. }));
    }

    #[test]
    fn feed_shape_is_validated() {
        let (graph, x, _, _, t, _) = small_net();
        let mut session = Session::new(graph, 1);
        let err = session
            .forward(&[(x, Tensor::ones([4, 2])), (t, Tensor::zeros([4]))])
            .unwrap_err();
        assert!(matches!(err, GraphError::FeedShapeMismatch { .. }));
    }

    #[test]
    fn autodiff_matches_finite_differences_through_composite_graph() {
        let (graph, x, w, b, t, loss) = small_net();
        // Seed chosen so no relu pre-activation sits at the kink, where a
        // central difference with eps = 1e-2 measures a subgradient blend
        // the analytic pass legitimately does not.
        let mut session = Session::new(graph, 1);
        let xt = Tensor::from_fn([4, 3], |i| ((i * 5 % 11) as f32 - 5.0) * 0.2);
        let tt = Tensor::from_slice(&[0.0, 1.0, 2.0, 4.0]);
        let run = session.forward(&[(x, xt.clone()), (t, tt.clone())]).unwrap();
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        let dw = grads.param_grad(w).unwrap().clone();
        let db = grads.param_grad(b).unwrap().clone();

        let eps = 1e-2;
        let wt = session.param(w).unwrap().clone();
        for i in 0..wt.len() {
            let mut wp = wt.clone();
            wp.data_mut()[i] += eps;
            *session.param_mut(w).unwrap() = wp;
            let lp = session.forward(&[(x, xt.clone()), (t, tt.clone())]).unwrap().scalar(loss).unwrap();
            let mut wm = wt.clone();
            wm.data_mut()[i] -= eps;
            *session.param_mut(w).unwrap() = wm;
            let lm = session.forward(&[(x, xt.clone()), (t, tt.clone())]).unwrap().scalar(loss).unwrap();
            *session.param_mut(w).unwrap() = wt.clone();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - dw.data()[i]).abs() < 1e-2, "dw[{i}] fd {fd} vs {}", dw.data()[i]);
        }
        assert!(db.all_finite());
    }

    #[test]
    fn fan_out_gradients_accumulate() {
        // loss = sum(w + w) => dw = 2.
        let mut g = GraphBuilder::new();
        let w = g.parameter("w", [3], Init::Ones);
        let s = g.add(w, w).unwrap();
        let loss = g.sum_all(s).unwrap();
        let graph = g.finish();
        let mut session = Session::new(graph, 0);
        let run = session.forward(&[]).unwrap();
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        assert_eq!(grads.param_grad(w).unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn backward_from_arbitrary_node_with_custom_seed() {
        // WGAN-style: seed the mean of an intermediate with ±1.
        let mut g = GraphBuilder::new();
        let w = g.parameter("w", [2, 2], Init::Ones);
        let x = g.input("x", [1, 2]);
        let h = g.matmul(x, w).unwrap();
        let m = g.mean_all(h).unwrap();
        let graph = g.finish();
        let mut session = Session::new(graph, 0);
        let run = session.forward(&[(x, Tensor::ones([1, 2]))]).unwrap();
        let grads = session.backward(&run, m, Tensor::scalar(-1.0)).unwrap();
        let dw = grads.param_grad(w).unwrap();
        assert!(dw.data().iter().all(|&v| (v + 0.5).abs() < 1e-6));
    }

    #[test]
    fn inter_op_parallel_matches_sequential_execution() {
        // Diamond graph with two independent branches and a training-mode
        // dropout node: wave scheduling must be bitwise identical to the
        // sequential walk (deterministic kernels + per-node dropout RNG).
        let build = || {
            let mut g = GraphBuilder::new();
            let x = g.input("x", [8, 16]);
            let w1 = g.parameter("w1", [16, 16], Init::Xavier { fan_in: 16, fan_out: 16 });
            let w2 = g.parameter("w2", [16, 16], Init::Xavier { fan_in: 16, fan_out: 16 });
            let a = g.matmul(x, w1).unwrap();
            let a = g.relu(a).unwrap();
            let b = g.matmul(x, w2).unwrap();
            let b = g.tanh(b).unwrap();
            let s = g.add(a, b).unwrap();
            let d = g.dropout(s, 0.3).unwrap();
            let out = g.sum_all(d).unwrap();
            (g.finish(), x, d, out)
        };
        let xt = Tensor::from_fn([8, 16], |i| ((i * 7 % 23) as f32 - 11.0) * 0.1);
        let (g1, x1, d1, out1) = build();
        let mut serial = Session::new(g1, 42);
        let (g2, x2, d2, out2) = build();
        let mut parallel = Session::with_exec(
            g2,
            42,
            ExecConfig { intra_op_threads: 3, inter_op_parallel: true },
        );
        let mut last_mask_value: Option<Tensor> = None;
        for step in 0..3 {
            let rs = serial.forward(&[(x1, xt.clone())]).unwrap();
            let rp = parallel.forward(&[(x2, xt.clone())]).unwrap();
            assert_eq!(rs.value(d1).unwrap(), rp.value(d2).unwrap(), "step {step}");
            assert_eq!(rs.value(out1).unwrap(), rp.value(out2).unwrap(), "step {step}");
            // Dropout must draw fresh masks every pass.
            if let Some(prev) = last_mask_value.replace(rs.value(d1).unwrap().clone()) {
                assert_ne!(&prev, rs.value(d1).unwrap());
            }
        }
        tbd_tensor::par::set_max_threads(0);
    }

    #[test]
    fn tracer_records_node_spans_with_invariant_hashes() {
        use crate::trace::{EventKind, TraceRecorder};
        // The same diamond graph under 1 and 3 intra-op threads must emit
        // node spans whose canonical forms (wall times excluded, value
        // hashes included) are identical — the trace-level statement of the
        // bitwise thread-count-invariance guarantee.
        let build = || {
            let mut g = GraphBuilder::new();
            let x = g.input("x", [4, 8]);
            let w1 = g.parameter("w1", [8, 8], Init::Xavier { fan_in: 8, fan_out: 8 });
            let w2 = g.parameter("w2", [8, 8], Init::Xavier { fan_in: 8, fan_out: 8 });
            let a = g.matmul(x, w1).unwrap();
            let a = g.relu(a).unwrap();
            let b = g.matmul(x, w2).unwrap();
            let b = g.tanh(b).unwrap();
            let s = g.add(a, b).unwrap();
            let d = g.dropout(s, 0.2).unwrap();
            let out = g.sum_all(d).unwrap();
            (g.finish(), x, out)
        };
        let xt = Tensor::from_fn([4, 8], |i| ((i * 3 % 13) as f32 - 6.0) * 0.25);
        let canon_at = |threads: usize| {
            let (graph, x, out) = build();
            let mut session = Session::with_exec(
                graph,
                7,
                ExecConfig { intra_op_threads: threads, inter_op_parallel: true },
            );
            let tracer = TraceRecorder::shared();
            session.set_tracer(Some(Arc::clone(&tracer)));
            let run = session.forward(&[(x, xt.clone())]).unwrap();
            session.backward(&run, out, Tensor::scalar(1.0)).unwrap();
            let events = tracer.drain();
            assert!(events.iter().any(|e| e.kind == EventKind::NodeExec));
            assert!(events.iter().any(|e| e.kind == EventKind::Phase && e.name == "forward"));
            assert!(events.iter().any(|e| e.kind == EventKind::Phase && e.name == "backward"));
            assert!(events.iter().all(|e| !e.deterministic), "executor spans are wall-clock");
            events.iter().map(crate::trace::TraceEvent::canonical).collect::<Vec<_>>()
        };
        assert_eq!(canon_at(1), canon_at(3));
        tbd_tensor::par::set_max_threads(0);
    }

    #[test]
    fn fused_execution_is_bitwise_identical_and_emits_one_span_per_group() {
        use crate::trace::{EventKind, TraceRecorder};
        // bias+relu chain plus a dropout tail: fused execution must produce
        // bitwise-identical values for every node (interiors included, the
        // backward pass needs them) in both sequential and wave modes, and
        // the trace must collapse each group to a single NodeExec span.
        let build = || {
            let mut g = GraphBuilder::new();
            let x = g.input("x", [4, 8]);
            let w = g.parameter("w", [8, 8], Init::Xavier { fan_in: 8, fan_out: 8 });
            let b = g.parameter("b", [8], Init::Ones);
            let h = g.matmul(x, w).unwrap();
            let h = g.add_bias(h, b).unwrap();
            let h = g.relu(h).unwrap();
            let d = g.dropout(h, 0.25).unwrap();
            let out = g.sum_all(d).unwrap();
            (g.finish(), x, out)
        };
        let xt = Tensor::from_fn([4, 8], |i| ((i * 7 % 19) as f32 - 9.0) * 0.2);
        for inter_op in [false, true] {
            let (g1, x1, out1) = build();
            let mut plain = Session::with_exec(
                g1,
                11,
                ExecConfig { intra_op_threads: 1, inter_op_parallel: inter_op },
            );
            let (g2, x2, out2) = build();
            let mut fused = Session::with_exec(
                g2,
                11,
                ExecConfig { intra_op_threads: 1, inter_op_parallel: inter_op },
            );
            fused.set_fusion_enabled(true);
            let plan = Arc::clone(fused.fusion().expect("plan installed"));
            assert!(!plan.groups().is_empty(), "bias+relu+dropout must fuse");
            let tracer = TraceRecorder::shared();
            fused.set_tracer(Some(Arc::clone(&tracer)));
            let rp = plain.forward(&[(x1, xt.clone())]).unwrap();
            let rf = fused.forward(&[(x2, xt.clone())]).unwrap();
            for i in 0..plain.graph().len() {
                assert_eq!(
                    rp.value(NodeId(i)),
                    rf.value(NodeId(i)),
                    "node {i} diverged (inter_op={inter_op})"
                );
            }
            // Gradients flow through fused groups unchanged.
            let gp = plain.backward(&rp, out1, Tensor::scalar(1.0)).unwrap();
            let gf = fused.backward(&rf, out2, Tensor::scalar(1.0)).unwrap();
            for (id, _) in plain.graph().params() {
                assert_eq!(gp.param_grad(*id), gf.param_grad(*id));
            }
            let spans: Vec<_> = tracer
                .drain()
                .into_iter()
                .filter(|e| e.kind == EventKind::NodeExec && e.name.starts_with("fused:"))
                .collect();
            let fwd = spans.iter().filter(|e| !e.name.ends_with(".grad")).count();
            let bwd = spans.iter().filter(|e| e.name.ends_with(".grad")).count();
            assert_eq!(fwd, plan.groups().len(), "one forward span per group");
            assert_eq!(bwd, plan.groups().len(), "one grad span per group");
        }
        tbd_tensor::par::set_max_threads(0);
    }

    #[test]
    fn untraced_session_records_nothing() {
        let (graph, x, _, _, t, loss) = small_net();
        let mut session = Session::new(graph, 1);
        assert!(session.tracer().is_none());
        let run = session
            .forward(&[(x, Tensor::ones([4, 3])), (t, Tensor::zeros([4]))])
            .unwrap();
        assert!(run.scalar(loss).is_some());
    }

    #[test]
    fn inter_op_parallel_reports_missing_feeds() {
        let (graph, x, _, _, _, _) = small_net();
        let mut session = Session::with_exec(
            graph,
            1,
            ExecConfig { intra_op_threads: 0, inter_op_parallel: true },
        );
        let err = session.forward(&[(x, Tensor::ones([4, 3]))]).unwrap_err();
        assert!(matches!(err, GraphError::MissingFeed { .. }));
    }

    #[test]
    fn dropout_is_identity_in_eval_mode() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [2, 2]);
        let d = g.dropout(x, 0.9).unwrap();
        let graph = g.finish();
        let mut session = Session::new(graph, 3);
        session.training = false;
        let input = Tensor::ones([2, 2]);
        let run = session.forward(&[(x, input.clone())]).unwrap();
        assert_eq!(run.value(d).unwrap(), &input);
    }

    #[test]
    fn global_norm_aggregates_params() {
        let mut g = GraphBuilder::new();
        let w = g.parameter("w", [2], Init::Ones);
        let loss = g.sum_all(w).unwrap();
        let graph = g.finish();
        let mut session = Session::new(graph, 0);
        let run = session.forward(&[]).unwrap();
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        let norm = grads.global_norm(session.graph());
        assert!((norm - 2.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn seed_must_be_computed() {
        let (graph, x, _, _, t, loss) = small_net();
        let mut session = Session::new(graph, 1);
        let run = session
            .forward(&[(x, Tensor::ones([4, 3])), (t, Tensor::zeros([4]))])
            .unwrap();
        // Build a NodeId beyond the graph: ValueNotComputed.
        let bogus = NodeId(loss.index()); // valid; now check a real missing value path:
        let _ = bogus;
        // All nodes are computed in forward, so exercise the error by seeding
        // an empty run.
        let empty = RunState { values: vec![None; session.graph().len()], aux: Vec::new() };
        assert!(matches!(
            session.backward(&empty, loss, Tensor::scalar(1.0)),
            Err(GraphError::ValueNotComputed(_))
        ));
        let _ = run;
    }
}
