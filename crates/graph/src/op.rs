//! Graph operations and their shape inference.

use crate::{GraphError, Result};
use tbd_tensor::ops::{conv2d_output_hw, Conv2dConfig, Pool2dConfig};
use tbd_tensor::Shape;

/// A single dataflow-graph operation.
///
/// The set mirrors what the paper's workloads dispatch: GEMMs (dense,
/// recurrent and attention layers), convolutions, normalisations, poolings,
/// element-wise math, embedding lookups and classification losses. Layer
/// types the paper calls out (LSTM cells, attention) are *compositions* of
/// these primitives, exactly as the frameworks lower them to cuDNN/cuBLAS
/// calls.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// External input fed at run time.
    Input {
        /// Feed name.
        name: String,
    },
    /// Trainable parameter (weights / biases / norm scales).
    Parameter {
        /// Parameter name (unique within a graph).
        name: String,
    },
    /// Dense matrix product `[m,k] · [k,n] → [m,n]`.
    MatMul,
    /// Batched matrix product `[b,m,k] · [b,k,n] → [b,m,n]`.
    BatchMatMul,
    /// Matrix transpose `[m,n] → [n,m]`.
    Transpose,
    /// Batched transpose of the last two axes.
    BatchTranspose,
    /// Broadcasts a `[n]` bias over the rows of `[m,n]`.
    AddBias,
    /// Element-wise sum of two equal-shape tensors.
    Add,
    /// Element-wise difference.
    Sub,
    /// Element-wise product.
    Mul,
    /// Multiplication by a compile-time scalar.
    Scale(f32),
    /// Addition of a compile-time scalar.
    AddScalar(f32),
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// 2-D convolution (inputs: activations, filter).
    Conv2d(Conv2dConfig),
    /// 2-D max pooling.
    MaxPool(Pool2dConfig),
    /// 2-D average pooling.
    AvgPool(Pool2dConfig),
    /// Global average pooling `[n,c,h,w] → [n,c]`.
    GlobalAvgPool,
    /// Nearest-neighbour 2× spatial upsampling (GAN generators).
    Upsample2x,
    /// Batch normalisation (inputs: x, gamma, beta).
    BatchNorm {
        /// Variance floor.
        eps: f32,
    },
    /// Layer normalisation over the last axis (inputs: x, gamma, beta).
    LayerNorm {
        /// Variance floor.
        eps: f32,
    },
    /// Row-wise softmax on `[rows, classes]`.
    Softmax,
    /// Fused softmax-cross-entropy loss (inputs: logits, targets) → scalar.
    CrossEntropy,
    /// Embedding lookup (inputs: table `[v,d]`, ids `[n]`) → `[n,d]`.
    Embedding,
    /// Reinterprets the buffer under a new shape.
    Reshape(Shape),
    /// Concatenation of all inputs along an axis.
    Concat {
        /// Axis along which inputs are joined.
        axis: usize,
    },
    /// Extracts columns `[start, start+len)` of a rank-2 tensor.
    SliceCols {
        /// First column.
        start: usize,
        /// Number of columns.
        len: usize,
    },
    /// Extracts rows `[start, start+len)` of a rank-2 tensor.
    SliceRows {
        /// First row.
        start: usize,
        /// Number of rows.
        len: usize,
    },
    /// Permutes the axes of a rank-3 tensor.
    Permute3([usize; 3]),
    /// Mean of all elements → scalar.
    MeanAll,
    /// Sum of all elements → scalar.
    SumAll,
    /// Inverted dropout (identity in evaluation mode).
    Dropout {
        /// Drop probability.
        p: f32,
    },
}

impl Op {
    /// Short stable mnemonic used in traces and kernel tables.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Input { .. } => "input",
            Op::Parameter { .. } => "param",
            Op::MatMul => "matmul",
            Op::BatchMatMul => "batch_matmul",
            Op::Transpose => "transpose",
            Op::BatchTranspose => "batch_transpose",
            Op::AddBias => "bias",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Scale(_) => "scale",
            Op::AddScalar(_) => "add_scalar",
            Op::Relu => "relu",
            Op::LeakyRelu(_) => "leaky_relu",
            Op::Sigmoid => "sigmoid",
            Op::Tanh => "tanh",
            Op::Conv2d(_) => "conv2d",
            Op::MaxPool(_) => "max_pool",
            Op::AvgPool(_) => "avg_pool",
            Op::GlobalAvgPool => "global_avg_pool",
            Op::Upsample2x => "upsample",
            Op::BatchNorm { .. } => "batch_norm",
            Op::LayerNorm { .. } => "layer_norm",
            Op::Softmax => "softmax",
            Op::CrossEntropy => "cross_entropy",
            Op::Embedding => "embedding",
            Op::Reshape(_) => "reshape",
            Op::Concat { .. } => "concat",
            Op::SliceCols { .. } => "slice",
            Op::SliceRows { .. } => "slice",
            Op::Permute3(_) => "permute",
            Op::MeanAll => "mean",
            Op::SumAll => "sum",
            Op::Dropout { .. } => "dropout",
        }
    }

    /// Number of inputs the op requires, or `None` for variadic ops.
    pub fn arity(&self) -> Option<usize> {
        match self {
            Op::Input { .. } | Op::Parameter { .. } => Some(0),
            Op::Concat { .. } => None,
            Op::MatMul
            | Op::BatchMatMul
            | Op::AddBias
            | Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Conv2d(_)
            | Op::CrossEntropy
            | Op::Embedding => Some(2),
            Op::BatchNorm { .. } | Op::LayerNorm { .. } => Some(3),
            _ => Some(1),
        }
    }

    /// Infers the output shape from the input shapes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Arity`] for a wrong input count and
    /// [`GraphError::Tensor`] when the shapes cannot be combined.
    pub fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        if let Some(arity) = self.arity() {
            if inputs.len() != arity {
                return Err(GraphError::Arity {
                    op: self.mnemonic(),
                    expected: arity,
                    actual: inputs.len(),
                });
            }
        }
        let mismatch = |lhs: &Shape, rhs: &Shape| {
            GraphError::Tensor(tbd_tensor::TensorError::ShapeMismatch {
                op: "infer_shape",
                lhs: lhs.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            })
        };
        let rank_err = |expected: usize, actual: usize| {
            GraphError::Tensor(tbd_tensor::TensorError::RankMismatch {
                op: "infer_shape",
                expected,
                actual,
            })
        };
        match self {
            Op::Input { .. } | Op::Parameter { .. } => unreachable!("leaf shapes are declared"),
            Op::MatMul => {
                let (a, b) = (inputs[0], inputs[1]);
                if a.rank() != 2 || b.rank() != 2 {
                    return Err(rank_err(2, a.rank().max(b.rank())));
                }
                if a.dim(1) != b.dim(0) {
                    return Err(mismatch(a, b));
                }
                Ok(Shape::new(&[a.dim(0), b.dim(1)]))
            }
            Op::BatchMatMul => {
                let (a, b) = (inputs[0], inputs[1]);
                if a.rank() != 3 || b.rank() != 3 {
                    return Err(rank_err(3, a.rank().max(b.rank())));
                }
                if a.dim(0) != b.dim(0) || a.dim(2) != b.dim(1) {
                    return Err(mismatch(a, b));
                }
                Ok(Shape::new(&[a.dim(0), a.dim(1), b.dim(2)]))
            }
            Op::Transpose => {
                let a = inputs[0];
                if a.rank() != 2 {
                    return Err(rank_err(2, a.rank()));
                }
                Ok(Shape::new(&[a.dim(1), a.dim(0)]))
            }
            Op::BatchTranspose => {
                let a = inputs[0];
                if a.rank() != 3 {
                    return Err(rank_err(3, a.rank()));
                }
                Ok(Shape::new(&[a.dim(0), a.dim(2), a.dim(1)]))
            }
            Op::AddBias => {
                let (a, b) = (inputs[0], inputs[1]);
                if a.rank() != 2 {
                    return Err(rank_err(2, a.rank()));
                }
                if b.len() != a.dim(1) {
                    return Err(mismatch(a, b));
                }
                Ok(a.clone())
            }
            Op::Add | Op::Sub | Op::Mul => {
                if inputs[0] != inputs[1] {
                    return Err(mismatch(inputs[0], inputs[1]));
                }
                Ok(inputs[0].clone())
            }
            Op::Scale(_)
            | Op::AddScalar(_)
            | Op::Relu
            | Op::LeakyRelu(_)
            | Op::Sigmoid
            | Op::Tanh
            | Op::Dropout { .. }
            | Op::Softmax => Ok(inputs[0].clone()),
            Op::Conv2d(cfg) => {
                let (x, w) = (inputs[0], inputs[1]);
                if x.rank() != 4 || w.rank() != 4 {
                    return Err(rank_err(4, x.rank().max(w.rank())));
                }
                if x.dim(1) != w.dim(1) {
                    return Err(mismatch(x, w));
                }
                let (oh, ow) = conv2d_output_hw(x.dim(2), x.dim(3), w.dim(2), w.dim(3), *cfg)
                    .ok_or_else(|| {
                        GraphError::Tensor(tbd_tensor::TensorError::InvalidArgument {
                            op: "conv2d",
                            reason: "kernel larger than padded input".to_string(),
                        })
                    })?;
                Ok(Shape::new(&[x.dim(0), w.dim(0), oh, ow]))
            }
            Op::MaxPool(cfg) | Op::AvgPool(cfg) => {
                let x = inputs[0];
                if x.rank() != 4 {
                    return Err(rank_err(4, x.rank()));
                }
                let conv_cfg =
                    Conv2dConfig { stride: cfg.stride, pad_h: cfg.padding, pad_w: cfg.padding };
                let (oh, ow) =
                    conv2d_output_hw(x.dim(2), x.dim(3), cfg.kernel, cfg.kernel, conv_cfg)
                        .ok_or_else(|| {
                            GraphError::Tensor(tbd_tensor::TensorError::InvalidArgument {
                                op: "pool2d",
                                reason: "window larger than padded input".to_string(),
                            })
                        })?;
                Ok(Shape::new(&[x.dim(0), x.dim(1), oh, ow]))
            }
            Op::GlobalAvgPool => {
                let x = inputs[0];
                if x.rank() != 4 {
                    return Err(rank_err(4, x.rank()));
                }
                Ok(Shape::new(&[x.dim(0), x.dim(1)]))
            }
            Op::Upsample2x => {
                let x = inputs[0];
                if x.rank() != 4 {
                    return Err(rank_err(4, x.rank()));
                }
                Ok(Shape::new(&[x.dim(0), x.dim(1), 2 * x.dim(2), 2 * x.dim(3)]))
            }
            Op::BatchNorm { .. } => {
                let x = inputs[0];
                if x.rank() != 4 {
                    return Err(rank_err(4, x.rank()));
                }
                if inputs[1].len() != x.dim(1) || inputs[2].len() != x.dim(1) {
                    return Err(mismatch(x, inputs[1]));
                }
                Ok(x.clone())
            }
            Op::LayerNorm { .. } => {
                let x = inputs[0];
                if x.rank() != 2 {
                    return Err(rank_err(2, x.rank()));
                }
                if inputs[1].len() != x.dim(1) || inputs[2].len() != x.dim(1) {
                    return Err(mismatch(x, inputs[1]));
                }
                Ok(x.clone())
            }
            Op::CrossEntropy => {
                let (logits, targets) = (inputs[0], inputs[1]);
                if logits.rank() != 2 {
                    return Err(rank_err(2, logits.rank()));
                }
                if targets.len() != logits.dim(0) {
                    return Err(mismatch(logits, targets));
                }
                Ok(Shape::scalar())
            }
            Op::Embedding => {
                let (table, ids) = (inputs[0], inputs[1]);
                if table.rank() != 2 {
                    return Err(rank_err(2, table.rank()));
                }
                Ok(Shape::new(&[ids.len(), table.dim(1)]))
            }
            Op::Reshape(target) => {
                if target.len() != inputs[0].len() {
                    return Err(mismatch(inputs[0], target));
                }
                Ok(target.clone())
            }
            Op::Concat { axis } => {
                let first = inputs.first().ok_or(GraphError::Arity {
                    op: "concat",
                    expected: 1,
                    actual: 0,
                })?;
                if *axis >= first.rank() {
                    return Err(rank_err(*axis + 1, first.rank()));
                }
                let mut total = 0;
                for s in inputs {
                    if s.rank() != first.rank() {
                        return Err(rank_err(first.rank(), s.rank()));
                    }
                    for d in 0..s.rank() {
                        if d != *axis && s.dim(d) != first.dim(d) {
                            return Err(mismatch(first, s));
                        }
                    }
                    total += s.dim(*axis);
                }
                let mut dims = first.dims().to_vec();
                dims[*axis] = total;
                Ok(Shape::new(&dims))
            }
            Op::SliceCols { start, len } => {
                let x = inputs[0];
                if x.rank() != 2 {
                    return Err(rank_err(2, x.rank()));
                }
                if start + len > x.dim(1) {
                    return Err(GraphError::Tensor(tbd_tensor::TensorError::IndexOutOfRange {
                        op: "slice_cols",
                        index: start + len,
                        bound: x.dim(1) + 1,
                    }));
                }
                Ok(Shape::new(&[x.dim(0), *len]))
            }
            Op::SliceRows { start, len } => {
                let x = inputs[0];
                if x.rank() != 2 {
                    return Err(rank_err(2, x.rank()));
                }
                if start + len > x.dim(0) {
                    return Err(GraphError::Tensor(tbd_tensor::TensorError::IndexOutOfRange {
                        op: "slice_rows",
                        index: start + len,
                        bound: x.dim(0) + 1,
                    }));
                }
                Ok(Shape::new(&[*len, x.dim(1)]))
            }
            Op::Permute3(perm) => {
                let x = inputs[0];
                if x.rank() != 3 {
                    return Err(rank_err(3, x.rank()));
                }
                let mut seen = [false; 3];
                for &p in perm {
                    if p > 2 || seen[p] {
                        return Err(GraphError::Tensor(
                            tbd_tensor::TensorError::InvalidArgument {
                                op: "permute3",
                                reason: format!("{perm:?} is not a permutation"),
                            },
                        ));
                    }
                    seen[p] = true;
                }
                Ok(Shape::new(&[x.dim(perm[0]), x.dim(perm[1]), x.dim(perm[2])]))
            }
            Op::MeanAll | Op::SumAll => Ok(Shape::scalar()),
        }
    }

    /// Returns `true` when the op's `input_index`-th operand is
    /// differentiable (class ids and embedding ids are not).
    pub fn input_differentiable(&self, input_index: usize) -> bool {
        match self {
            Op::CrossEntropy => input_index == 0,
            Op::Embedding => input_index == 0,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(d: &[usize]) -> Shape {
        Shape::new(d)
    }

    #[test]
    fn matmul_shapes() {
        let out = Op::MatMul.infer_shape(&[&s(&[2, 3]), &s(&[3, 5])]).unwrap();
        assert_eq!(out, s(&[2, 5]));
        assert!(Op::MatMul.infer_shape(&[&s(&[2, 3]), &s(&[4, 5])]).is_err());
        assert!(Op::MatMul.infer_shape(&[&s(&[2, 3])]).is_err());
    }

    #[test]
    fn conv_shapes_match_resnet_stem() {
        // ResNet-50 stem: 7x7/2 pad 3 on 224x224 -> 112x112.
        let cfg = Conv2dConfig::new(2, 3);
        let out = Op::Conv2d(cfg)
            .infer_shape(&[&s(&[32, 3, 224, 224]), &s(&[64, 3, 7, 7])])
            .unwrap();
        assert_eq!(out, s(&[32, 64, 112, 112]));
    }

    #[test]
    fn pooling_and_gap() {
        let cfg = Pool2dConfig::new(3, 2, 1);
        let out = Op::MaxPool(cfg).infer_shape(&[&s(&[1, 64, 112, 112])]).unwrap();
        assert_eq!(out, s(&[1, 64, 56, 56]));
        assert_eq!(Op::GlobalAvgPool.infer_shape(&[&s(&[4, 2048, 7, 7])]).unwrap(), s(&[4, 2048]));
    }

    #[test]
    fn concat_channel_axis() {
        let out = Op::Concat { axis: 1 }
            .infer_shape(&[&s(&[2, 64, 35, 35]), &s(&[2, 32, 35, 35])])
            .unwrap();
        assert_eq!(out, s(&[2, 96, 35, 35]));
        assert!(Op::Concat { axis: 1 }
            .infer_shape(&[&s(&[2, 64, 35, 35]), &s(&[2, 32, 17, 17])])
            .is_err());
    }

    #[test]
    fn losses_are_scalar() {
        assert_eq!(
            Op::CrossEntropy.infer_shape(&[&s(&[8, 10]), &s(&[8])]).unwrap(),
            Shape::scalar()
        );
        assert_eq!(Op::MeanAll.infer_shape(&[&s(&[3, 3])]).unwrap(), Shape::scalar());
    }

    #[test]
    fn non_differentiable_inputs() {
        assert!(Op::CrossEntropy.input_differentiable(0));
        assert!(!Op::CrossEntropy.input_differentiable(1));
        assert!(!Op::Embedding.input_differentiable(1));
        assert!(Op::Add.input_differentiable(1));
    }

    #[test]
    fn slice_and_reshape() {
        assert_eq!(
            Op::SliceCols { start: 2, len: 3 }.infer_shape(&[&s(&[4, 8])]).unwrap(),
            s(&[4, 3])
        );
        assert!(Op::SliceCols { start: 6, len: 3 }.infer_shape(&[&s(&[4, 8])]).is_err());
        assert_eq!(
            Op::Reshape(s(&[2, 6])).infer_shape(&[&s(&[3, 4])]).unwrap(),
            s(&[2, 6])
        );
        assert!(Op::Reshape(s(&[2, 5])).infer_shape(&[&s(&[3, 4])]).is_err());
    }
}
