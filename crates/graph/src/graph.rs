//! Graph construction and topology.

use crate::{GraphError, Op, Result};
use tbd_tensor::ops::{Conv2dConfig, Pool2dConfig};
use tbd_tensor::Shape;

/// Identifier of a node within its [`Graph`].
///
/// Node ids are indices into the graph's node list; because the builder only
/// lets a node consume already-created nodes, ascending id order *is* a
/// topological order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index of the node inside the graph's node list.
    pub fn index(self) -> usize {
        self.0
    }

    /// Creates a raw id from an index.
    ///
    /// Intended for synthetic kernel streams (simulators, tests); an id made
    /// this way is only meaningful against a graph that actually has that
    /// many nodes.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Parameter initialisation scheme, materialised by
/// [`Session::new`](crate::Session::new).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (biases, norm shifts).
    Zeros,
    /// All ones (norm scales).
    Ones,
    /// Constant fill.
    Constant(f32),
    /// Xavier/Glorot uniform.
    Xavier {
        /// Fan-in of the layer.
        fan_in: usize,
        /// Fan-out of the layer.
        fan_out: usize,
    },
    /// He/Kaiming normal (ReLU networks).
    He {
        /// Fan-in of the layer.
        fan_in: usize,
    },
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
}

/// One node of a dataflow graph: an operation, its inputs and its inferred
/// output shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operation this node performs.
    pub op: Op,
    /// Ids of the nodes whose outputs feed this node.
    pub inputs: Vec<NodeId>,
    /// Inferred output shape.
    pub shape: Shape,
}

/// An immutable, shape-inferred dataflow graph in topological order.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    params: Vec<(NodeId, Init)>,
    inputs: Vec<NodeId>,
}

impl Graph {
    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Trainable parameters with their initialisers, in creation order.
    pub fn params(&self) -> &[(NodeId, Init)] {
        &self.params
    }

    /// Input (feed) nodes in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Total trainable parameter count (elements, not bytes).
    pub fn param_count(&self) -> usize {
        self.params.iter().map(|(id, _)| self.nodes[id.0].shape.len()).sum()
    }

    /// Ids of nodes that require gradients: parameters and everything that
    /// (transitively) consumes one through a differentiable edge.
    pub fn requires_grad(&self) -> Vec<bool> {
        let mut needs = vec![false; self.nodes.len()];
        for (id, _) in &self.params {
            needs[id.0] = true;
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if needs[i] {
                continue;
            }
            needs[i] = node
                .inputs
                .iter()
                .enumerate()
                .any(|(k, inp)| node.op.input_differentiable(k) && needs[inp.0]);
        }
        needs
    }
}

/// Incremental builder for [`Graph`].
///
/// Every op method performs shape inference eagerly, so a malformed model
/// fails at construction time with a precise error rather than at run time.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: Graph,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    fn push(&mut self, op: Op, inputs: Vec<NodeId>) -> Result<NodeId> {
        for id in &inputs {
            if id.0 >= self.graph.nodes.len() {
                return Err(GraphError::UnknownNode(id.0));
            }
        }
        let shapes: Vec<&Shape> = inputs.iter().map(|id| &self.graph.nodes[id.0].shape).collect();
        let shape = op.infer_shape(&shapes)?;
        self.graph.nodes.push(Node { op, inputs, shape });
        Ok(NodeId(self.graph.nodes.len() - 1))
    }

    /// Declares an external input with the given feed name and shape.
    pub fn input<S: Into<Shape>>(&mut self, name: &str, shape: S) -> NodeId {
        let shape = shape.into();
        self.graph.nodes.push(Node {
            op: Op::Input { name: name.to_string() },
            inputs: Vec::new(),
            shape,
        });
        let id = NodeId(self.graph.nodes.len() - 1);
        self.graph.inputs.push(id);
        id
    }

    /// Declares a trainable parameter.
    pub fn parameter<S: Into<Shape>>(&mut self, name: &str, shape: S, init: Init) -> NodeId {
        let shape = shape.into();
        self.graph.nodes.push(Node {
            op: Op::Parameter { name: name.to_string() },
            inputs: Vec::new(),
            shape,
        });
        let id = NodeId(self.graph.nodes.len() - 1);
        self.graph.params.push((id, init));
        id
    }

    /// Dense matrix product.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the inner dimensions disagree.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        self.push(Op::MatMul, vec![a, b])
    }

    /// Batched matrix product over rank-3 operands.
    ///
    /// # Errors
    ///
    /// Returns a shape error when batch or inner dimensions disagree.
    pub fn batch_matmul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        self.push(Op::BatchMatMul, vec![a, b])
    }

    /// Matrix transpose.
    ///
    /// # Errors
    ///
    /// Returns a rank error unless the input is rank 2.
    pub fn transpose(&mut self, a: NodeId) -> Result<NodeId> {
        self.push(Op::Transpose, vec![a])
    }

    /// Batched transpose of the last two axes.
    ///
    /// # Errors
    ///
    /// Returns a rank error unless the input is rank 3.
    pub fn batch_transpose(&mut self, a: NodeId) -> Result<NodeId> {
        self.push(Op::BatchTranspose, vec![a])
    }

    /// Adds a bias vector to every row.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the bias width disagrees.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> Result<NodeId> {
        self.push(Op::AddBias, vec![x, bias])
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the operand shapes differ.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        self.push(Op::Add, vec![a, b])
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the operand shapes differ.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        self.push(Op::Sub, vec![a, b])
    }

    /// Element-wise product.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the operand shapes differ.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        self.push(Op::Mul, vec![a, b])
    }

    /// Multiplies by a compile-time scalar.
    ///
    /// # Errors
    ///
    /// Never fails for valid node ids; returns [`GraphError::UnknownNode`]
    /// otherwise.
    pub fn scale(&mut self, a: NodeId, s: f32) -> Result<NodeId> {
        self.push(Op::Scale(s), vec![a])
    }

    /// Adds a compile-time scalar.
    ///
    /// # Errors
    ///
    /// Never fails for valid node ids; returns [`GraphError::UnknownNode`]
    /// otherwise.
    pub fn add_scalar(&mut self, a: NodeId, s: f32) -> Result<NodeId> {
        self.push(Op::AddScalar(s), vec![a])
    }

    /// Rectified linear unit.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for a foreign id.
    pub fn relu(&mut self, a: NodeId) -> Result<NodeId> {
        self.push(Op::Relu, vec![a])
    }

    /// Leaky ReLU.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for a foreign id.
    pub fn leaky_relu(&mut self, a: NodeId, alpha: f32) -> Result<NodeId> {
        self.push(Op::LeakyRelu(alpha), vec![a])
    }

    /// Logistic sigmoid.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for a foreign id.
    pub fn sigmoid(&mut self, a: NodeId) -> Result<NodeId> {
        self.push(Op::Sigmoid, vec![a])
    }

    /// Hyperbolic tangent.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for a foreign id.
    pub fn tanh(&mut self, a: NodeId) -> Result<NodeId> {
        self.push(Op::Tanh, vec![a])
    }

    /// 2-D convolution of `x` with `filter`.
    ///
    /// # Errors
    ///
    /// Returns shape errors for malformed operands.
    pub fn conv2d(&mut self, x: NodeId, filter: NodeId, cfg: Conv2dConfig) -> Result<NodeId> {
        self.push(Op::Conv2d(cfg), vec![x, filter])
    }

    /// 2-D max pooling.
    ///
    /// # Errors
    ///
    /// Returns shape errors for malformed operands.
    pub fn max_pool(&mut self, x: NodeId, cfg: Pool2dConfig) -> Result<NodeId> {
        self.push(Op::MaxPool(cfg), vec![x])
    }

    /// 2-D average pooling.
    ///
    /// # Errors
    ///
    /// Returns shape errors for malformed operands.
    pub fn avg_pool(&mut self, x: NodeId, cfg: Pool2dConfig) -> Result<NodeId> {
        self.push(Op::AvgPool(cfg), vec![x])
    }

    /// Global average pooling.
    ///
    /// # Errors
    ///
    /// Returns a rank error unless the input is rank 4.
    pub fn global_avg_pool(&mut self, x: NodeId) -> Result<NodeId> {
        self.push(Op::GlobalAvgPool, vec![x])
    }

    /// Nearest-neighbour 2× spatial upsampling.
    ///
    /// # Errors
    ///
    /// Returns a rank error unless the input is rank 4.
    pub fn upsample2x(&mut self, x: NodeId) -> Result<NodeId> {
        self.push(Op::Upsample2x, vec![x])
    }

    /// Batch normalisation with scale `gamma` and shift `beta`.
    ///
    /// # Errors
    ///
    /// Returns shape errors for malformed operands.
    pub fn batch_norm(
        &mut self,
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f32,
    ) -> Result<NodeId> {
        self.push(Op::BatchNorm { eps }, vec![x, gamma, beta])
    }

    /// Layer normalisation over the last axis.
    ///
    /// # Errors
    ///
    /// Returns shape errors for malformed operands.
    pub fn layer_norm(
        &mut self,
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f32,
    ) -> Result<NodeId> {
        self.push(Op::LayerNorm { eps }, vec![x, gamma, beta])
    }

    /// Row-wise softmax.
    ///
    /// # Errors
    ///
    /// Returns a rank error unless the input is rank 2.
    pub fn softmax(&mut self, x: NodeId) -> Result<NodeId> {
        self.push(Op::Softmax, vec![x])
    }

    /// Fused softmax-cross-entropy loss against integer targets.
    ///
    /// # Errors
    ///
    /// Returns shape errors for malformed operands.
    pub fn cross_entropy(&mut self, logits: NodeId, targets: NodeId) -> Result<NodeId> {
        self.push(Op::CrossEntropy, vec![logits, targets])
    }

    /// Embedding lookup of `ids` in `table`.
    ///
    /// # Errors
    ///
    /// Returns shape errors for malformed operands.
    pub fn embedding(&mut self, table: NodeId, ids: NodeId) -> Result<NodeId> {
        self.push(Op::Embedding, vec![table, ids])
    }

    /// Reshapes without moving data.
    ///
    /// # Errors
    ///
    /// Returns a shape error when element counts differ.
    pub fn reshape<S: Into<Shape>>(&mut self, x: NodeId, shape: S) -> Result<NodeId> {
        self.push(Op::Reshape(shape.into()), vec![x])
    }

    /// Concatenates `inputs` along `axis`.
    ///
    /// # Errors
    ///
    /// Returns shape errors for malformed operands.
    pub fn concat(&mut self, inputs: &[NodeId], axis: usize) -> Result<NodeId> {
        self.push(Op::Concat { axis }, inputs.to_vec())
    }

    /// Extracts columns `[start, start+len)`.
    ///
    /// # Errors
    ///
    /// Returns shape errors for malformed operands.
    pub fn slice_cols(&mut self, x: NodeId, start: usize, len: usize) -> Result<NodeId> {
        self.push(Op::SliceCols { start, len }, vec![x])
    }

    /// Extracts rows `[start, start+len)`.
    ///
    /// # Errors
    ///
    /// Returns shape errors for malformed operands.
    pub fn slice_rows(&mut self, x: NodeId, start: usize, len: usize) -> Result<NodeId> {
        self.push(Op::SliceRows { start, len }, vec![x])
    }

    /// Permutes the axes of a rank-3 tensor.
    ///
    /// # Errors
    ///
    /// Returns shape errors for malformed operands.
    pub fn permute3(&mut self, x: NodeId, perm: [usize; 3]) -> Result<NodeId> {
        self.push(Op::Permute3(perm), vec![x])
    }

    /// Mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for a foreign id.
    pub fn mean_all(&mut self, x: NodeId) -> Result<NodeId> {
        self.push(Op::MeanAll, vec![x])
    }

    /// Sum of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for a foreign id.
    pub fn sum_all(&mut self, x: NodeId) -> Result<NodeId> {
        self.push(Op::SumAll, vec![x])
    }

    /// Inverted dropout with drop probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for a foreign id.
    pub fn dropout(&mut self, x: NodeId, p: f32) -> Result<NodeId> {
        self.push(Op::Dropout { p }, vec![x])
    }

    /// Shape of an already-created node.
    pub fn shape(&self, id: NodeId) -> &Shape {
        &self.graph.nodes[id.0].shape
    }

    /// Finalises the graph.
    pub fn finish(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_topological_order() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [2, 3]);
        let w = g.parameter("w", [3, 4], Init::Zeros);
        let y = g.matmul(x, w).unwrap();
        let z = g.relu(y).unwrap();
        let graph = g.finish();
        assert_eq!(graph.len(), 4);
        for (i, node) in graph.nodes().iter().enumerate() {
            for input in &node.inputs {
                assert!(input.index() < i, "inputs must precede consumers");
            }
        }
        assert_eq!(graph.node(z).shape.dims(), &[2, 4]);
    }

    #[test]
    fn param_count_sums_elements() {
        let mut g = GraphBuilder::new();
        g.parameter("a", [3, 4], Init::Zeros);
        g.parameter("b", [5], Init::Ones);
        assert_eq!(g.finish().param_count(), 17);
    }

    #[test]
    fn requires_grad_propagates() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [2, 3]);
        let w = g.parameter("w", [3, 4], Init::Zeros);
        let y = g.matmul(x, w).unwrap();
        let t = g.input("t", [2]);
        let loss = g.cross_entropy(y, t).unwrap();
        let graph = g.finish();
        let needs = graph.requires_grad();
        assert!(!needs[x.index()], "plain inputs do not require grad");
        assert!(needs[w.index()]);
        assert!(needs[y.index()]);
        assert!(needs[loss.index()]);
        assert!(!needs[t.index()], "targets are not differentiable");
    }

    #[test]
    fn builder_rejects_shape_errors_eagerly() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [2, 3]);
        let w = g.parameter("w", [5, 4], Init::Zeros);
        assert!(g.matmul(x, w).is_err());
    }

    #[test]
    fn foreign_node_ids_are_rejected() {
        let mut g1 = GraphBuilder::new();
        let _ = g1.input("x", [2, 2]);
        let mut g2 = GraphBuilder::new();
        let bogus = NodeId(17);
        assert_eq!(g2.relu(bogus), Err(GraphError::UnknownNode(17)));
    }

    #[test]
    fn display_of_node_id() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }
}

impl Graph {
    /// Returns a pruned copy keeping only the nodes that `outputs`
    /// (transitively) depend on, with ids remapped; the second return maps
    /// old ids to new ones.
    ///
    /// Model builders often create auxiliary heads (extra losses,
    /// diagnostic outputs) that a given experiment does not use; pruning
    /// removes their cost from lowering and memory accounting.
    pub fn prune(&self, outputs: &[NodeId]) -> (Graph, Vec<Option<NodeId>>) {
        let mut keep = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = outputs.iter().map(|id| id.0).collect();
        while let Some(i) = stack.pop() {
            if keep[i] {
                continue;
            }
            keep[i] = true;
            for input in &self.nodes[i].inputs {
                stack.push(input.0);
            }
        }
        let mut mapping: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut nodes = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            let inputs = node
                .inputs
                .iter()
                .map(|id| mapping[id.0].expect("inputs precede consumers"))
                .collect();
            mapping[i] = Some(NodeId(nodes.len()));
            nodes.push(Node { op: node.op.clone(), inputs, shape: node.shape.clone() });
        }
        let params = self
            .params
            .iter()
            .filter_map(|(id, init)| mapping[id.0].map(|new| (new, *init)))
            .collect();
        let inputs = self.inputs.iter().filter_map(|id| mapping[id.0]).collect();
        (Graph { nodes, params, inputs }, mapping)
    }
}

#[cfg(test)]
mod prune_tests {
    use super::*;

    #[test]
    fn pruning_drops_unused_branches() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [2, 3]);
        let w1 = g.parameter("w1", [3, 4], Init::Zeros);
        let used = g.matmul(x, w1).unwrap();
        let kept = g.relu(used).unwrap();
        // A dead diagnostic branch.
        let w2 = g.parameter("w2", [3, 8], Init::Zeros);
        let dead = g.matmul(x, w2).unwrap();
        let _dead2 = g.tanh(dead).unwrap();
        let graph = g.finish();
        let (pruned, mapping) = graph.prune(&[kept]);
        assert_eq!(pruned.len(), 4, "x, w1, matmul, relu survive");
        assert_eq!(pruned.params().len(), 1);
        assert!(mapping[w2.index()].is_none(), "dead parameter removed");
        let new_kept = mapping[kept.index()].unwrap();
        assert_eq!(pruned.node(new_kept).shape.dims(), &[2, 4]);
        // Pruned graph still executes.
        let mut session = crate::Session::new(pruned, 0);
        let new_x = mapping[x.index()].unwrap();
        let run = session
            .forward(&[(new_x, tbd_tensor::Tensor::ones([2, 3]))])
            .unwrap();
        assert!(run.value(new_kept).is_some());
    }

    #[test]
    fn pruning_to_all_outputs_is_identity_sized() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [2]);
        let y = g.relu(x).unwrap();
        let graph = g.finish();
        let (pruned, _) = graph.prune(&[y]);
        assert_eq!(pruned.len(), graph.len());
    }
}
