//! Forward-pass kernel fusion: the graph-compiler "speed tier".
//!
//! The paper's Eq. 3 / Fig. 5 analysis shows per-kernel launch overhead and
//! memory-bound pointwise kernels dominating training cost on short-kernel
//! workloads. Real compilers (XLA, TensorRT, cuDNN fused epilogues) respond
//! by fusing chains of cheap pointwise operators into the preceding heavy
//! kernel's epilogue. This module reproduces the *scheduling* consequence
//! of that optimisation: a [`FusionPlan`] groups chains of
//! elementwise/activation/normalisation/dropout nodes into single fused
//! kernels, so lowering emits fewer `LoweredKernel`s (fewer launch + sync
//! events in `tbd-gpusim::timeline`) and the executor runs each group as a
//! single scheduling unit (fewer wave barriers in `tbd-graph::exec`).
//!
//! Fusion never changes results: the executor still evaluates every member
//! node with the same kernels in the same order, so fused execution is
//! bitwise identical to unfused execution at f32.
//!
//! # Fusion-rule table
//!
//! A chain `a → b` fuses when **all** of the following hold:
//!
//! 1. both ops belong to a fusable family (table below);
//! 2. `b`'s *primary* input (`inputs[0]`, the data pipeline) is `a`;
//! 3. `a` has exactly one consumer edge (`b` — interior values never leave
//!    the group during the forward pass).
//!
//! | family        | ops                                            |
//! |---------------|------------------------------------------------|
//! | `elementwise` | `bias`, `add`, `sub`, `mul`, `scale`, `add_scalar` |
//! | `activation`  | `relu`, `leaky_relu`, `sigmoid`, `tanh`        |
//! | `norm`        | `batch_norm`, `layer_norm`                     |
//! | `dropout`     | `dropout`                                      |
//! | `contraction` | `matmul`, `batch_matmul`, `conv2d` (*chain head only*) |
//!
//! The `contraction` family is the cuDNN/cuBLAS "fused epilogue" rule: a
//! GEMM or convolution may *start* a group (its pointwise successors run
//! in its epilogue), but can never be fused into another kernel's tail —
//! so rule 1 carries the extra clause that a contraction is only fusable
//! as the first member. This is the rule that collapses the canonical
//! `conv2d → batch_norm → relu` block into one kernel, turning ResNet-like
//! graphs into near-pure chains of fused units (singleton waves need no
//! thread hand-off in the executor, which is where the speed tier's
//! wall-clock win comes from).
//!
//! Side inputs (bias vectors, γ/β parameters) come from outside the group.
//! Fusion is forward-only: backward kernels stay per-node so gradient
//! attribution (`weight_grad_bytes_by_consumer`, `BackwardProfile`) is
//! unchanged — matching the common "epilogue fusion" deployment where the
//! backward pass is left unfused.
//!
//! Fused kernels are named deterministically — `fused:` followed by the
//! member mnemonics joined with `+` (e.g. `fused:batch_norm+relu`) — so
//! golden-trace digests are reproducible across runs and thread counts.

use crate::lower::forward_kernels;
use crate::{Graph, KernelClass, KernelSpec, NodeId, Op};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Fusable operator families, ordered by *class priority*: when a group
/// mixes families, the fused kernel is classified by the strongest member
/// (`Norm > Activation > Dropout > Elementwise`), because the most
/// expensive member dominates the fused kernel's timing profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FusionFamily {
    /// Cheap pointwise arithmetic: `bias`, `add`, `sub`, `mul`, `scale`,
    /// `add_scalar`.
    Elementwise,
    /// Dropout masks (pointwise with an RNG stream).
    Dropout,
    /// Activation functions: `relu`, `leaky_relu`, `sigmoid`, `tanh`.
    Activation,
    /// Normalisation layers: `batch_norm`, `layer_norm`.
    Norm,
    /// Tensor contractions: `matmul`, `batch_matmul`, `conv2d`. Fusable
    /// only as a chain's first member (the fused-epilogue rule).
    Contraction,
}

/// The canonical fusion-rule table: `(mnemonic, family)` for every fusable
/// op. This is the documented contract (DESIGN.md §5g); [`fusion_family`]
/// is its executable form and a test asserts they agree.
pub const FUSION_RULES: &[(&str, FusionFamily)] = &[
    ("bias", FusionFamily::Elementwise),
    ("add", FusionFamily::Elementwise),
    ("sub", FusionFamily::Elementwise),
    ("mul", FusionFamily::Elementwise),
    ("scale", FusionFamily::Elementwise),
    ("add_scalar", FusionFamily::Elementwise),
    ("relu", FusionFamily::Activation),
    ("leaky_relu", FusionFamily::Activation),
    ("sigmoid", FusionFamily::Activation),
    ("tanh", FusionFamily::Activation),
    ("batch_norm", FusionFamily::Norm),
    ("layer_norm", FusionFamily::Norm),
    ("dropout", FusionFamily::Dropout),
    ("matmul", FusionFamily::Contraction),
    ("batch_matmul", FusionFamily::Contraction),
    ("conv2d", FusionFamily::Contraction),
];

/// The fusion family of an op, or `None` when the op is not fusable.
pub fn fusion_family(op: &Op) -> Option<FusionFamily> {
    match op {
        Op::AddBias | Op::Add | Op::Sub | Op::Mul | Op::Scale(_) | Op::AddScalar(_) => {
            Some(FusionFamily::Elementwise)
        }
        Op::Relu | Op::LeakyRelu(_) | Op::Sigmoid | Op::Tanh => Some(FusionFamily::Activation),
        Op::BatchNorm { .. } | Op::LayerNorm { .. } => Some(FusionFamily::Norm),
        Op::Dropout { .. } => Some(FusionFamily::Dropout),
        Op::MatMul | Op::BatchMatMul | Op::Conv2d(_) => Some(FusionFamily::Contraction),
        _ => None,
    }
}

/// Interns a kernel or event name so it can be handed out as
/// `&'static str` (e.g. `KernelSpec::origin`, hot-path trace-event
/// labels). Names are deterministic functions of bounded inputs — member
/// mnemonics, kernel origins and classes — so the pool stays tiny and
/// leaking is safe.
pub fn intern_name(name: String) -> &'static str {
    static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut pool = POOL.lock().expect("fusion name pool");
    if let Some(&existing) = pool.get(name.as_str()) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    pool.insert(leaked);
    leaked
}

/// One fused chain: at least two nodes in ascending (= dataflow) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionGroup {
    nodes: Vec<NodeId>,
    name: &'static str,
}

impl FusionGroup {
    /// Member nodes in ascending id order — which, because every member
    /// consumes its predecessor, is also the evaluation order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Deterministic fused-kernel name, e.g. `fused:bias+relu`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// First member: the node whose primary input feeds the group.
    pub fn root(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last member: the node whose output leaves the group. The executor
    /// anchors the group here — every external input of every member has a
    /// smaller node id, so by the anchor's position in topological order
    /// all of them are available.
    pub fn anchor(&self) -> NodeId {
        *self.nodes.last().expect("groups have >= 2 members")
    }

    /// Number of member nodes (always >= 2).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Never true — kept for clippy's `len_without_is_empty` lint.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// The fusion decisions for one graph: a partition of fusable chains into
/// [`FusionGroup`]s. Analysis is a pure function of graph topology, so the
/// plan (and everything derived from it: kernel names, wave schedules,
/// trace digests) is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FusionPlan {
    /// `group_of[i]` is the group index of node `i`, if fused.
    group_of: Vec<Option<usize>>,
    groups: Vec<FusionGroup>,
}

impl FusionPlan {
    /// Builds the fusion plan for `graph` by greedily extending maximal
    /// chains under the rule table (see module docs).
    pub fn analyze(graph: &Graph) -> FusionPlan {
        let n = graph.len();
        let mut consumer_edges = vec![0usize; n];
        let mut sole_consumer = vec![usize::MAX; n];
        for (j, node) in graph.nodes().iter().enumerate() {
            for input in &node.inputs {
                consumer_edges[input.index()] += 1;
                sole_consumer[input.index()] = j;
            }
        }
        let mut group_of: Vec<Option<usize>> = vec![None; n];
        let mut groups = Vec::new();
        for i in 0..n {
            if group_of[i].is_some() || fusion_family(&graph.node(NodeId(i)).op).is_none() {
                continue;
            }
            let mut chain = vec![i];
            let mut cur = i;
            loop {
                if consumer_edges[cur] != 1 {
                    break;
                }
                let next = sole_consumer[cur];
                let next_node = graph.node(NodeId(next));
                // A contraction can only *head* a chain (fused-epilogue
                // rule), so it never joins as a later member.
                if !matches!(
                    fusion_family(&next_node.op),
                    Some(family) if family != FusionFamily::Contraction
                ) || next_node.inputs.first() != Some(&NodeId(cur))
                {
                    break;
                }
                chain.push(next);
                cur = next;
            }
            if chain.len() < 2 {
                continue;
            }
            let name = intern_name(format!(
                "fused:{}",
                chain
                    .iter()
                    .map(|&k| graph.node(NodeId(k)).op.mnemonic())
                    .collect::<Vec<_>>()
                    .join("+")
            ));
            let index = groups.len();
            for &k in &chain {
                group_of[k] = Some(index);
            }
            groups.push(FusionGroup { nodes: chain.into_iter().map(NodeId::from_index).collect(), name });
        }
        FusionPlan { group_of, groups }
    }

    /// All fusion groups, in ascending root order.
    pub fn groups(&self) -> &[FusionGroup] {
        &self.groups
    }

    /// Index of the group containing `id`, if any.
    pub fn group_of(&self, id: NodeId) -> Option<usize> {
        self.group_of.get(id.index()).copied().flatten()
    }

    /// The group anchored at `id` (i.e. `id` is the group's last member).
    pub fn anchored_at(&self, id: NodeId) -> Option<&FusionGroup> {
        self.group_of(id).map(|g| &self.groups[g]).filter(|g| g.anchor() == id)
    }

    /// `true` when `id` is a group member that is *not* the anchor — such
    /// nodes are skipped by schedulers and evaluated inline at the anchor.
    pub fn is_interior(&self, id: NodeId) -> bool {
        self.group_of(id)
            .is_some_and(|g| self.groups[g].anchor() != id)
    }

    /// Number of kernel launches eliminated: `sum(len - 1)` over groups.
    pub fn launches_eliminated(&self) -> usize {
        self.groups.iter().map(|g| g.len() - 1).sum()
    }
}

/// Synthesises the cost descriptor of a fused group:
///
/// * `flops` — sum over member forward kernels (the arithmetic still runs);
/// * `bytes` — external input bytes plus the final output bytes only: the
///   interior values stay in registers/shared memory, which is exactly the
///   traffic fusion eliminates;
/// * `workspace` — max over members (the fused kernel reuses one scratch);
/// * `class` — the strongest member family's forward class
///   (`Contraction > Norm > Activation > Dropout > Elementwise`);
/// * `origin` — the deterministic fused name.
pub fn fused_spec(graph: &Graph, group: &FusionGroup) -> KernelSpec {
    let members: BTreeSet<usize> = group.nodes().iter().map(|id| id.index()).collect();
    let mut flops = 0.0;
    let mut workspace = 0u64;
    let mut best = FusionFamily::Elementwise;
    let mut class = KernelClass::Elementwise;
    let mut externals: BTreeSet<usize> = BTreeSet::new();
    for &id in group.nodes() {
        for kernel in forward_kernels(graph, id) {
            flops += kernel.flops;
            workspace = workspace.max(kernel.workspace_bytes);
        }
        let node = graph.node(id);
        let family = fusion_family(&node.op).expect("group members are fusable");
        if family > best || (id == group.root() && family == best) {
            best = family;
            class = match (&node.op, family) {
                (Op::Conv2d(_), _) => KernelClass::ConvForward,
                (Op::MatMul, _) => KernelClass::Gemm,
                (Op::BatchMatMul, _) => KernelClass::BatchedGemm,
                (Op::BatchNorm { .. }, _) => KernelClass::BatchNormForward,
                (Op::LayerNorm { .. }, _) => KernelClass::LayerNormForward,
                (_, FusionFamily::Activation) => KernelClass::ActivationForward,
                (_, FusionFamily::Dropout) => KernelClass::Dropout,
                (_, _) => KernelClass::Elementwise,
            };
        }
        for input in &node.inputs {
            if !members.contains(&input.index()) {
                externals.insert(input.index());
            }
        }
    }
    let bytes = externals
        .iter()
        .map(|&e| graph.node(NodeId(e)).shape.byte_len() as f64)
        .sum::<f64>()
        + graph.node(group.anchor()).shape.byte_len() as f64;
    KernelSpec::new(class, flops, bytes, group.name()).with_workspace(workspace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Init};
    use tbd_tensor::ops::Conv2dConfig;

    /// conv → batch_norm → relu → (branch): the canonical CNN block.
    fn conv_bn_relu() -> Graph {
        let mut g = GraphBuilder::new();
        let x = g.input("x", [2, 3, 8, 8]);
        let w = g.parameter("w", [4, 3, 3, 3], Init::He { fan_in: 27 });
        let c = g.conv2d(x, w, Conv2dConfig::new(1, 1)).unwrap();
        let gamma = g.parameter("g", [4], Init::Ones);
        let beta = g.parameter("b", [4], Init::Zeros);
        let bn = g.batch_norm(c, gamma, beta, 1e-5).unwrap();
        let r = g.relu(bn).unwrap();
        let _ = g.sum_all(r).unwrap();
        g.finish()
    }

    #[test]
    fn fuses_conv_bn_relu_chain_with_deterministic_name() {
        let graph = conv_bn_relu();
        let plan = FusionPlan::analyze(&graph);
        assert_eq!(plan.groups().len(), 1);
        let group = &plan.groups()[0];
        assert_eq!(group.len(), 3);
        assert_eq!(group.name(), "fused:conv2d+batch_norm+relu");
        assert_eq!(plan.launches_eliminated(), 2);
        // The conv heads the group (fused-epilogue rule), γ/β are side
        // inputs, and the anchor is the relu.
        assert!(matches!(graph.node(group.root()).op, Op::Conv2d(_)));
        assert!(matches!(graph.node(group.anchor()).op, Op::Relu));
        assert!(plan.is_interior(group.root()));
        assert!(!plan.is_interior(group.anchor()));
        assert!(plan.anchored_at(group.anchor()).is_some());
        assert!(plan.anchored_at(group.root()).is_none());
    }

    #[test]
    fn contractions_head_chains_but_never_join_them() {
        // relu → matmul: the matmul must NOT be absorbed into the relu's
        // chain; it heads its own group with the following bias+tanh.
        let mut g = GraphBuilder::new();
        let x = g.input("x", [4, 8]);
        let r = g.relu(x).unwrap();
        let w = g.parameter("w", [8, 6], Init::Xavier { fan_in: 8, fan_out: 6 });
        let m = g.matmul(r, w).unwrap();
        let b = g.parameter("b", [6], Init::Zeros);
        let biased = g.add_bias(m, b).unwrap();
        let t = g.tanh(biased).unwrap();
        let _ = g.sum_all(t).unwrap();
        let graph = g.finish();
        let plan = FusionPlan::analyze(&graph);
        let names: Vec<&str> = plan.groups().iter().map(|g| g.name()).collect();
        assert_eq!(names, vec!["fused:matmul+bias+tanh"], "{names:?}");
        assert!(matches!(graph.node(plan.groups()[0].root()).op, Op::MatMul));
    }

    #[test]
    fn multi_consumer_interior_blocks_fusion() {
        // relu output consumed twice: the chain must stop at the relu.
        let mut g = GraphBuilder::new();
        let x = g.input("x", [4, 4]);
        let s = g.scale(x, 2.0).unwrap();
        let r = g.relu(s).unwrap();
        let a = g.add_scalar(r, 1.0).unwrap();
        let b = g.scale(r, 0.5).unwrap();
        let s2 = g.add(a, b).unwrap();
        let _ = g.sum_all(s2).unwrap();
        let graph = g.finish();
        let plan = FusionPlan::analyze(&graph);
        // scale+relu fuse; r's two consumers stop extension; a and b each
        // have one consumer (s2) but s2's primary input is a, so only a+add
        // can chain... b is not s2's inputs[0]? a is. a -> s2 fuses.
        for group in plan.groups() {
            for window in group.nodes().windows(2) {
                let next = graph.node(window[1]);
                assert_eq!(next.inputs[0], window[0], "chains follow primary inputs");
            }
        }
        let fused: Vec<&str> = plan.groups().iter().map(|g| g.name()).collect();
        assert!(fused.contains(&"fused:scale+relu"), "{fused:?}");
    }

    #[test]
    fn fused_spec_sums_flops_and_drops_interior_traffic() {
        let graph = conv_bn_relu();
        let plan = FusionPlan::analyze(&graph);
        let group = &plan.groups()[0];
        let spec = fused_spec(&graph, group);
        let member_specs: Vec<KernelSpec> = group
            .nodes()
            .iter()
            .flat_map(|&id| forward_kernels(&graph, id))
            .collect();
        let flops: f64 = member_specs.iter().map(|s| s.flops).sum();
        assert_eq!(spec.flops, flops);
        let unfused_bytes: f64 = member_specs.iter().map(|s| s.bytes).sum();
        assert!(spec.bytes < unfused_bytes, "{} vs {}", spec.bytes, unfused_bytes);
        assert_eq!(spec.class, KernelClass::ConvForward, "contraction outranks norm");
        assert_eq!(spec.origin, "fused:conv2d+batch_norm+relu");
    }

    #[test]
    fn rule_table_matches_executable_rules() {
        use std::collections::BTreeMap;
        let samples: Vec<Op> = vec![
            Op::AddBias,
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Scale(2.0),
            Op::AddScalar(1.0),
            Op::Relu,
            Op::LeakyRelu(0.1),
            Op::Sigmoid,
            Op::Tanh,
            Op::BatchNorm { eps: 1e-5 },
            Op::LayerNorm { eps: 1e-5 },
            Op::Dropout { p: 0.5 },
            Op::MatMul,
            Op::Softmax,
            Op::Reshape(tbd_tensor::Shape::new(&[1])),
        ];
        let table: BTreeMap<&str, FusionFamily> = FUSION_RULES.iter().copied().collect();
        for op in &samples {
            assert_eq!(
                fusion_family(op),
                table.get(op.mnemonic()).copied(),
                "rule table and fusion_family disagree on {}",
                op.mnemonic()
            );
        }
        assert_eq!(table.len(), FUSION_RULES.len(), "no duplicate mnemonics");
    }

    #[test]
    fn interned_names_are_pointer_stable() {
        let a = intern_name("fused:test+name".to_string());
        let b = intern_name("fused:test+name".to_string());
        assert!(std::ptr::eq(a, b));
    }
}
