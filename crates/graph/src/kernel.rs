//! Kernel descriptors — the interface between graphs and the GPU simulator.
//!
//! Every graph node lowers (see [`crate::lower`]) to one or more
//! [`KernelSpec`]s carrying the exact FLOP count and memory traffic of the
//! corresponding GPU kernel launch. The device model in `tbd-gpusim` turns
//! these into durations and utilisation figures via a roofline model.

/// Broad family of a GPU kernel; determines its achievable efficiency on the
/// device model (GEMMs run near peak FLOPs; normalisations and element-wise
/// kernels are memory-bandwidth bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Dense GEMM (cuBLAS `sgemm`, magma).
    Gemm,
    /// Strided-batched GEMM (attention heads).
    BatchedGemm,
    /// Convolution forward via implicit GEMM (cuDNN).
    ConvForward,
    /// Convolution backward w.r.t. data.
    ConvBackwardData,
    /// Convolution backward w.r.t. filter.
    ConvBackwardFilter,
    /// Batch-norm forward training kernel (`bn_fw_tr_1C11`).
    BatchNormForward,
    /// Batch-norm backward kernel (`bn_bw_1C11`).
    BatchNormBackward,
    /// Layer-norm forward.
    LayerNormForward,
    /// Layer-norm backward.
    LayerNormBackward,
    /// Pointwise activation forward (`activation_fw_4d`).
    ActivationForward,
    /// Pointwise activation backward (`activation_bw_4d`).
    ActivationBackward,
    /// Generic element-wise kernel (Eigen / mxnet_generic).
    Elementwise,
    /// Pooling forward.
    PoolForward,
    /// Pooling backward.
    PoolBackward,
    /// Softmax forward.
    SoftmaxForward,
    /// Softmax backward.
    SoftmaxBackward,
    /// Embedding gather.
    EmbeddingForward,
    /// Embedding scatter-add.
    EmbeddingBackward,
    /// Reductions (sums, means, losses).
    Reduction,
    /// Pure data movement (transpose, concat, slice).
    DataMovement,
    /// Dropout mask generation + apply.
    Dropout,
    /// Optimizer weight update (SGD/Adam axpy-style).
    OptimizerUpdate,
    /// Host-to-device input copy.
    MemcpyH2D,
    /// All-reduce / parameter-server gradient exchange.
    Communication,
}

impl KernelClass {
    /// `true` for classes whose arithmetic intensity keeps them compute
    /// bound on every GPU the paper evaluates.
    pub fn is_compute_bound(self) -> bool {
        matches!(
            self,
            KernelClass::Gemm
                | KernelClass::BatchedGemm
                | KernelClass::ConvForward
                | KernelClass::ConvBackwardData
                | KernelClass::ConvBackwardFilter
        )
    }
}

/// Training phase a kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Forward pass.
    Forward,
    /// Backward pass (gradients).
    Backward,
    /// Weight update.
    Update,
}

impl Phase {
    /// Static label used in trace-event args (`fw`/`bw`/`upd`); identical
    /// to the `Display` text but allocation-free.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Forward => "fw",
            Phase::Backward => "bw",
            Phase::Update => "upd",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Cost descriptor of a single GPU kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Kernel family (drives achievable efficiency).
    pub class: KernelClass,
    /// Single-precision floating-point operations executed.
    pub flops: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
    /// Scratch workspace the kernel needs (bytes); convolution algorithms
    /// trade workspace for speed (paper Observation 12).
    pub workspace_bytes: u64,
    /// Short label of the graph node that produced the kernel.
    pub origin: &'static str,
}

impl KernelSpec {
    /// Creates a spec with no workspace requirement.
    pub fn new(class: KernelClass, flops: f64, bytes: f64, origin: &'static str) -> Self {
        KernelSpec { class, flops, bytes, workspace_bytes: 0, origin }
    }

    /// Sets the workspace requirement (builder style).
    pub fn with_workspace(mut self, bytes: u64) -> Self {
        self.workspace_bytes = bytes;
        self
    }

    /// Arithmetic intensity in FLOPs per byte; `0` for pure data movement.
    pub fn intensity(&self) -> f64 {
        if self.bytes <= 0.0 {
            0.0
        } else {
            self.flops / self.bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_is_compute_bound() {
        assert!(KernelClass::Gemm.is_compute_bound());
        assert!(KernelClass::ConvBackwardFilter.is_compute_bound());
        assert!(!KernelClass::BatchNormForward.is_compute_bound());
        assert!(!KernelClass::Elementwise.is_compute_bound());
    }

    #[test]
    fn intensity_is_flops_per_byte() {
        let k = KernelSpec::new(KernelClass::Gemm, 100.0, 25.0, "matmul");
        assert_eq!(k.intensity(), 4.0);
        let dm = KernelSpec::new(KernelClass::DataMovement, 0.0, 0.0, "concat");
        assert_eq!(dm.intensity(), 0.0);
    }

    #[test]
    fn workspace_builder() {
        let k = KernelSpec::new(KernelClass::ConvForward, 1.0, 1.0, "conv").with_workspace(4096);
        assert_eq!(k.workspace_bytes, 4096);
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::Forward.to_string(), "fw");
        assert_eq!(Phase::Backward.to_string(), "bw");
        assert_eq!(Phase::Update.to_string(), "upd");
    }
}
