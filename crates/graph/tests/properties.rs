//! Property-based tests over graph construction, autodiff and lowering.

use proptest::prelude::*;
use tbd_graph::lower::{lower_training_iteration, memory_footprint};
use tbd_graph::{GraphBuilder, Init, KernelClass, Phase, Session};
use tbd_tensor::Tensor;

/// Builds a random MLP: `depth` dense+activation layers over `width`-wide
/// hidden states, ending in a cross-entropy loss.
fn random_mlp(
    depth: usize,
    width: usize,
    acts: &[u8],
) -> (tbd_graph::Graph, tbd_graph::NodeId, tbd_graph::NodeId, tbd_graph::NodeId, Vec<tbd_graph::NodeId>) {
    let batch = 3;
    let mut g = GraphBuilder::new();
    let x = g.input("x", [batch, width]);
    let mut h = x;
    let mut params = Vec::new();
    for layer in 0..depth {
        let w = g.parameter(
            &format!("w{layer}"),
            [width, width],
            Init::Xavier { fan_in: width, fan_out: width },
        );
        let b = g.parameter(&format!("b{layer}"), [width], Init::Zeros);
        params.push(w);
        params.push(b);
        h = g.matmul(h, w).unwrap();
        h = g.add_bias(h, b).unwrap();
        h = match acts.get(layer).copied().unwrap_or(0) % 3 {
            0 => g.relu(h).unwrap(),
            1 => g.tanh(h).unwrap(),
            _ => g.sigmoid(h).unwrap(),
        };
    }
    let t = g.input("t", [batch]);
    let loss = g.cross_entropy(h, t).unwrap();
    (g.finish(), x, t, loss, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Autodiff gradients of random MLPs match finite differences.
    ///
    /// Activations are restricted to the smooth ones (tanh/sigmoid):
    /// central differences across a ReLU kink measure the wrong one-sided
    /// slope whenever a pre-activation sits within ±ε of zero, which is a
    /// property of finite differencing, not of the autodiff under test
    /// (ReLU gradients are covered by the exact kernel-level tests).
    #[test]
    fn random_mlp_gradients_match_finite_differences(
        depth in 1usize..4,
        width in 2usize..5,
        acts in prop::collection::vec(1u8..3, 4),
        seed in 0u64..1000,
    ) {
        let (graph, x, t, loss, params) = random_mlp(depth, width, &acts);
        let mut session = Session::new(graph, seed);
        let xt = Tensor::from_fn([3, width], |i| ((i * 7 + 3) % 11) as f32 * 0.1 - 0.5);
        let tt = Tensor::from_fn([3], |i| (i % width) as f32);
        let run = session.forward(&[(x, xt.clone()), (t, tt.clone())]).unwrap();
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        // Check a few coordinates of the first weight matrix.
        let w0 = params[0];
        let analytic = grads.param_grad(w0).unwrap().clone();
        let eps = 1e-2f32;
        let orig = session.param(w0).unwrap().clone();
        for i in (0..orig.len()).step_by(orig.len().max(1) / 3 + 1) {
            let mut up = orig.clone();
            up.data_mut()[i] += eps;
            *session.param_mut(w0).unwrap() = up;
            let lp = session.forward(&[(x, xt.clone()), (t, tt.clone())]).unwrap().scalar(loss).unwrap();
            let mut dn = orig.clone();
            dn.data_mut()[i] -= eps;
            *session.param_mut(w0).unwrap() = dn;
            let lm = session.forward(&[(x, xt.clone()), (t, tt.clone())]).unwrap().scalar(loss).unwrap();
            *session.param_mut(w0).unwrap() = orig.clone();
            let fd = (lp - lm) / (2.0 * eps);
            prop_assert!(
                (fd - analytic.data()[i]).abs() < 2e-2,
                "coord {i}: fd {fd} vs analytic {}", analytic.data()[i]
            );
        }
    }

    /// Lowering invariants: every kernel has non-negative cost, forward
    /// kernels precede backward kernels, and the footprint is consistent.
    #[test]
    fn lowering_invariants(depth in 1usize..5, width in 2usize..8, acts in prop::collection::vec(0u8..3, 5)) {
        let (graph, _, _, _, _) = random_mlp(depth, width, &acts);
        let stream = lower_training_iteration(&graph);
        prop_assert!(!stream.is_empty());
        let mut seen_backward = false;
        for k in &stream {
            prop_assert!(k.spec.flops >= 0.0 && k.spec.bytes >= 0.0);
            match k.phase {
                Phase::Forward => prop_assert!(!seen_backward, "forward after backward"),
                Phase::Backward => seen_backward = true,
                Phase::Update => {}
            }
        }
        // Every dense layer contributes 1 forward GEMM and ≥1 backward GEMM.
        let fwd_gemm = stream
            .iter()
            .filter(|k| k.phase == Phase::Forward && k.spec.class == KernelClass::Gemm)
            .count();
        prop_assert_eq!(fwd_gemm, depth);
        let fp = memory_footprint(&graph);
        prop_assert_eq!(fp.weights, fp.weight_grads);
        prop_assert!(fp.feature_maps > 0);
        prop_assert!(fp.total() >= fp.weights + fp.feature_maps);
    }

    /// Session forward is deterministic for a fixed seed and feeds
    /// (dropout-free graphs).
    #[test]
    fn forward_is_deterministic(width in 2usize..6, seed in 0u64..50) {
        let (graph, x, t, loss, _) = random_mlp(2, width, &[0, 1]);
        let graph2 = graph.clone();
        let mut s1 = Session::new(graph, seed);
        let mut s2 = Session::new(graph2, seed);
        let xt = Tensor::from_fn([3, width], |i| (i as f32 * 0.31).sin());
        let tt = Tensor::zeros([3]);
        let l1 = s1.forward(&[(x, xt.clone()), (t, tt.clone())]).unwrap().scalar(loss).unwrap();
        let l2 = s2.forward(&[(x, xt), (t, tt)]).unwrap().scalar(loss).unwrap();
        prop_assert_eq!(l1, l2);
    }

    /// Snapshot round-trips restore exact behaviour.
    #[test]
    fn snapshot_round_trip(width in 2usize..6, seed_a in 0u64..50, seed_b in 50u64..100) {
        let (graph, x, t, loss, _) = random_mlp(2, width, &[2, 0]);
        let graph2 = graph.clone();
        let mut donor = Session::new(graph, seed_a);
        let mut receiver = Session::new(graph2, seed_b);
        receiver.load_snapshot(&donor.snapshot());
        let xt = Tensor::from_fn([3, width], |i| (i as f32 * 0.17).cos());
        let tt = Tensor::zeros([3]);
        let la = donor.forward(&[(x, xt.clone()), (t, tt.clone())]).unwrap().scalar(loss).unwrap();
        let lb = receiver.forward(&[(x, xt), (t, tt)]).unwrap().scalar(loss).unwrap();
        prop_assert_eq!(la, lb);
    }
}
