//! Feature-map memory optimization — the paper's closing recommendation
//! ("memory footprint reduction optimizations with the focus on feature
//! maps", §6) made executable.
//!
//! Observation 11 shows feature maps consume 62–90 % of the training
//! footprint and gate the maximum mini-batch. Two published remedies are
//! modelled here on top of the same device and framework profiles used for
//! the paper's own experiments:
//!
//! * [`Strategy::Offload`] — vDNN (Rhu et al. 2016, the paper's ref. 83):
//!   stream stashed activations to host memory over PCIe during the forward
//!   pass and prefetch them back for the backward pass. Memory shrinks by
//!   the offloaded fraction; the PCIe traffic must hide under GPU compute
//!   or it extends the iteration.
//! * [`Strategy::Checkpoint`] — sublinear gradient checkpointing (Chen et
//!   al. 2016): keep only `k` evenly spaced activation checkpoints and
//!   recompute each segment's activations during the backward pass. Memory
//!   becomes `k` checkpoints plus one live segment; compute pays roughly an
//!   extra forward pass.

//! # Examples
//!
//! ```
//! use tbd_memopt::{max_feasible_batch, Strategy};
//! use tbd_frameworks::Framework;
//! use tbd_gpusim::GpuSpec;
//! use tbd_models::ModelKind;
//!
//! let gpu = GpuSpec::quadro_p4000();
//! let candidates = [16, 32, 64];
//! let base = max_feasible_batch(
//!     ModelKind::ResNet50, Framework::mxnet(), &gpu, Strategy::Baseline, &candidates,
//! );
//! let offload = max_feasible_batch(
//!     ModelKind::ResNet50, Framework::mxnet(), &gpu,
//!     Strategy::Offload { fraction: 0.6 }, &candidates,
//! );
//! assert!(offload > base, "offloading unlocks larger mini-batches");
//! ```

use tbd_frameworks::{Framework, WorkloadHints};
use tbd_gpusim::{
    simulate_iteration, CpuSpec, DeviceMemory, GpuSpec, MemoryCategory, OutOfMemory,
};
use tbd_graph::lower::memory_footprint;
use tbd_models::{BuiltModel, ModelKind};

/// A feature-map memory-reduction strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// No optimization (the paper's measured baseline).
    Baseline,
    /// vDNN-style offload of a fraction of the stashed feature maps to host
    /// memory over PCIe.
    Offload {
        /// Fraction of feature-map bytes moved to the host (0–1).
        fraction: f64,
    },
    /// Gradient checkpointing with `segments` evenly spaced checkpoints.
    Checkpoint {
        /// Number of segments (≥ 2); √(layers) is the classic choice.
        segments: usize,
    },
    /// Stores stashed activations in half precision (the
    /// precision-reduction direction of the paper's related work, §5).
    /// Halves the feature-map footprint; on the paper's Pascal-era GPUs
    /// FP16 arithmetic ran at FP32 rate, so the only time cost is the
    /// cast traffic.
    HalfPrecisionActivations,
}

/// Result of profiling a workload under a memory-reduction strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizedProfile {
    /// Feature-map bytes resident on the device after optimization.
    pub feature_map_bytes: u64,
    /// Total device footprint.
    pub total_bytes: u64,
    /// Wall time of one training iteration.
    pub iteration_s: f64,
    /// Training throughput in samples per second.
    pub throughput: f64,
    /// Extra time this strategy exposed on the critical path (PCIe traffic
    /// that did not hide, or recomputation), in seconds.
    pub overhead_s: f64,
}

/// Profiles one training iteration of `model` under `strategy`.
///
/// Memory planning mirrors [`Framework::profile_with_hints`]; the strategy
/// then shrinks the feature-map category and charges its time cost.
///
/// # Errors
///
/// Returns [`OutOfMemory`] when the optimized footprint still exceeds the
/// device.
pub fn profile_with_strategy(
    framework: Framework,
    model: &BuiltModel,
    gpu: &GpuSpec,
    hints: WorkloadHints,
    strategy: Strategy,
) -> Result<OptimizedProfile, OutOfMemory> {
    let cpu = CpuSpec::xeon_e5_2680();
    let fp = memory_footprint(&model.graph);
    let full_fm =
        (fp.feature_maps as f64 * framework.allocator_slack() * hints.memory_padding) as u64;

    // Baseline iteration timing (compute side is unchanged by Offload; the
    // strategy only adds exposed time).
    let input_bytes: u64 = model
        .inputs
        .values()
        .map(|&id| model.graph.node(id).shape.byte_len() as u64)
        .sum();
    let mut params = framework.execution_params(input_bytes);
    params.compute_speedup *= hints.compute_derate;
    params.input_pipeline_s += hints.serial_input_s;
    if let Some(overlap) = hints.overlap_override {
        params.pipeline_overlap = overlap;
    }
    let kernels = framework.plan(model);
    let base = simulate_iteration(&kernels, gpu, &cpu, &params);

    let (resident_fm, overhead_s) = match strategy {
        Strategy::Baseline => (full_fm, 0.0),
        Strategy::Offload { fraction } => {
            let fraction = fraction.clamp(0.0, 1.0);
            // Offloading activations also lets the planner reuse their
            // gradient-map mirrors, so capacity shrinks by the fraction of
            // the whole feature-map category...
            let resident = (full_fm as f64 * (1.0 - fraction)) as u64;
            // ...but only the raw activations actually cross PCIe (out
            // during forward + back during backward); gradient maps are
            // produced and consumed on-device.
            let moved = fp.activations as f64
                * framework.allocator_slack()
                * hints.memory_padding
                * fraction;
            let transfer_s = 2.0 * moved / gpu.bus.bandwidth_bytes;
            // PCIe DMA overlaps with compute; only the excess over the
            // hideable window extends the iteration (vDNN's "performance
            // loss grows once transfers outpace compute").
            let hideable = base.gpu_busy_s * 0.85;
            (resident, (transfer_s - hideable).max(0.0))
        }
        Strategy::HalfPrecisionActivations => {
            let resident = full_fm / 2;
            // Cast kernels touch every activation once on store and once on
            // load; they are bandwidth-bound and overlap poorly.
            let cast_bytes = 2.0 * fp.activations as f64;
            let cast_s = cast_bytes / (gpu.memory_bw_bytes() * 0.8);
            (resident, cast_s)
        }
        Strategy::Checkpoint { segments } => {
            let k = segments.max(2) as f64;
            // k checkpoints plus one live segment of activations.
            let layers_equiv = 64.0f64; // deep-network regime; segments ≪ layers
            let resident_frac = (k / layers_equiv + 1.0 / k).min(1.0);
            let resident = (full_fm as f64 * resident_frac) as u64;
            // Recomputation ≈ one extra forward pass of (1 − 1/k) of the
            // network; forward is ~1/3 of a training iteration's compute.
            let recompute = base.gpu_busy_s * (1.0 / 3.0) * (1.0 - 1.0 / k);
            (resident, recompute)
        }
    };

    let mut mem = DeviceMemory::new(gpu.memory_bytes);
    mem.alloc(MemoryCategory::Weights, fp.weights)?;
    mem.alloc(MemoryCategory::WeightGrads, fp.weight_grads)?;
    mem.alloc(MemoryCategory::FeatureMaps, resident_fm)?;
    mem.alloc(MemoryCategory::Dynamic, framework.dynamic_bytes(fp.weights))?;
    let ws = (fp.workspace_total as f64 * framework.workspace_appetite()) as u64;
    let ws = ws.min((mem.available() as f64 * 0.8) as u64).max(fp.workspace);
    mem.alloc(MemoryCategory::Workspace, ws)?;

    let iteration_s = base.wall_time_s + overhead_s;
    Ok(OptimizedProfile {
        feature_map_bytes: resident_fm,
        total_bytes: mem.used(),
        iteration_s,
        throughput: model.batch as f64 / iteration_s,
        overhead_s,
    })
}

/// Largest batch in `candidates` that fits the device under `strategy`
/// (`None` when even the smallest OOMs).
pub fn max_feasible_batch(
    kind: ModelKind,
    framework: Framework,
    gpu: &GpuSpec,
    strategy: Strategy,
    candidates: &[usize],
) -> Option<usize> {
    let mut best = None;
    for &batch in candidates {
        let model = kind.build_full(batch).ok()?;
        let hints = framework.hints(kind, batch);
        if profile_with_strategy(framework, &model, gpu, hints, strategy).is_ok() {
            best = Some(batch);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_models::resnet::ResNetConfig;

    fn setup(batch: usize) -> (Framework, BuiltModel, GpuSpec, WorkloadHints) {
        let fw = Framework::mxnet();
        let model = ResNetConfig::resnet50().build(batch).unwrap();
        let hints = fw.hints(ModelKind::ResNet50, batch);
        (fw, model, GpuSpec::quadro_p4000(), hints)
    }

    #[test]
    fn baseline_matches_framework_profile_memory() {
        let (fw, model, gpu, hints) = setup(16);
        let opt = profile_with_strategy(fw, &model, &gpu, hints, Strategy::Baseline).unwrap();
        let reference = fw.profile_with_hints(&model, &gpu, hints).unwrap();
        let rel = (opt.total_bytes as f64 - reference.memory.total() as f64).abs()
            / reference.memory.total() as f64;
        assert!(rel < 0.02, "baseline footprint {} vs {}", opt.total_bytes, reference.memory.total());
        assert_eq!(opt.overhead_s, 0.0);
    }

    #[test]
    fn offload_shrinks_memory_and_mostly_hides_traffic() {
        let (fw, model, gpu, hints) = setup(32);
        let base = profile_with_strategy(fw, &model, &gpu, hints, Strategy::Baseline).unwrap();
        let off =
            profile_with_strategy(fw, &model, &gpu, hints, Strategy::Offload { fraction: 0.6 })
                .unwrap();
        assert!(off.feature_map_bytes < base.feature_map_bytes / 2);
        // ResNet-50 at batch 32 computes long enough to hide the PCIe
        // traffic (vDNN's result for conv-heavy networks).
        assert!(off.overhead_s < 0.02 * base.iteration_s, "exposed {}", off.overhead_s);
    }

    #[test]
    fn checkpointing_trades_memory_for_recompute() {
        let (fw, model, gpu, hints) = setup(32);
        let base = profile_with_strategy(fw, &model, &gpu, hints, Strategy::Baseline).unwrap();
        let ck =
            profile_with_strategy(fw, &model, &gpu, hints, Strategy::Checkpoint { segments: 8 })
                .unwrap();
        assert!(ck.feature_map_bytes < base.feature_map_bytes / 3);
        assert!(ck.overhead_s > 0.0);
        assert!(ck.throughput < base.throughput);
        assert!(ck.throughput > base.throughput * 0.6, "recompute cost is bounded");
    }

    #[test]
    fn offload_unlocks_larger_batches() {
        // The paper's ResNet-50 tops out at 32 on the 8 GB card; offloading
        // 60 % of the feature maps must unlock 64 and beyond.
        let gpu = GpuSpec::quadro_p4000();
        let candidates = [16, 32, 64, 128];
        let base = max_feasible_batch(
            ModelKind::ResNet50,
            Framework::mxnet(),
            &gpu,
            Strategy::Baseline,
            &candidates,
        )
        .unwrap();
        let off = max_feasible_batch(
            ModelKind::ResNet50,
            Framework::mxnet(),
            &gpu,
            Strategy::Offload { fraction: 0.6 },
            &candidates,
        )
        .unwrap();
        assert_eq!(base, 32);
        assert!(off >= 64, "offload unlocked batch {off}");
    }

    #[test]
    fn half_precision_halves_feature_maps_cheaply() {
        let (fw, model, gpu, hints) = setup(32);
        let base = profile_with_strategy(fw, &model, &gpu, hints, Strategy::Baseline).unwrap();
        let half =
            profile_with_strategy(fw, &model, &gpu, hints, Strategy::HalfPrecisionActivations)
                .unwrap();
        assert!(half.feature_map_bytes <= base.feature_map_bytes / 2 + 1);
        // Cast traffic costs a few percent, far less than checkpointing.
        assert!(half.throughput > base.throughput * 0.85);
        let ck =
            profile_with_strategy(fw, &model, &gpu, hints, Strategy::Checkpoint { segments: 8 })
                .unwrap();
        assert!(half.throughput > ck.throughput);
    }

    #[test]
    fn full_offload_fraction_is_clamped() {
        let (fw, model, gpu, hints) = setup(8);
        let off =
            profile_with_strategy(fw, &model, &gpu, hints, Strategy::Offload { fraction: 2.0 })
                .unwrap();
        assert_eq!(off.feature_map_bytes, 0);
    }
}
