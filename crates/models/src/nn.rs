//! Reusable layer compositions on top of the graph builder.
//!
//! These mirror the layer vocabulary of the paper's workloads: dense
//! layers, conv+BN+ReLU stacks, residual bottlenecks, LSTM/GRU/RNN cells
//! (fused-gate formulation, lowered to two GEMMs plus element-wise kernels
//! per time step — exactly the kernel stream whose inefficiency the paper
//! analyses), Luong attention and Transformer blocks.

use tbd_graph::{GraphBuilder, Init, NodeId, Result};
use tbd_tensor::ops::{Conv2dConfig, Pool2dConfig};

/// A [`GraphBuilder`] wrapper that adds hierarchical parameter naming.
#[derive(Debug, Default)]
pub struct NetBuilder {
    /// The underlying graph builder (accessible for raw ops).
    pub g: GraphBuilder,
    scope: Vec<String>,
    counter: usize,
}

impl NetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NetBuilder::default()
    }

    /// Enters a naming scope for the duration of `f` (e.g. `"enc"`,
    /// `"block3"`).
    pub fn scoped<T>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> T) -> T {
        self.scope.push(name.to_string());
        let out = f(self);
        self.scope.pop();
        out
    }

    /// Produces a unique, scope-qualified parameter name.
    pub fn fresh(&mut self, name: &str) -> String {
        self.counter += 1;
        let mut full = self.scope.join("/");
        if !full.is_empty() {
            full.push('/');
        }
        full.push_str(name);
        full.push_str(&format!("_{}", self.counter));
        full
    }

    /// Fully-connected layer `y = x·W + b` with Xavier initialisation.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying ops.
    pub fn dense(&mut self, x: NodeId, in_dim: usize, out_dim: usize) -> Result<NodeId> {
        let wname = self.fresh("w");
        let w = self.g.parameter(
            &wname,
            [in_dim, out_dim],
            Init::Xavier { fan_in: in_dim, fan_out: out_dim },
        );
        let bname = self.fresh("b");
        let b = self.g.parameter(&bname, [out_dim], Init::Zeros);
        let h = self.g.matmul(x, w)?;
        self.g.add_bias(h, b)
    }

    /// Convolution without bias (bias is folded into the following batch
    /// norm, as all the paper's CNNs do).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying ops.
    pub fn conv(
        &mut self,
        x: NodeId,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<NodeId> {
        self.conv_rect(x, in_c, out_c, (kernel, kernel), stride, padding)
    }

    /// Convolution with a rectangular kernel (Inception's 1×7 / 7×1
    /// factorisations). `padding` applies symmetrically; rectangular kernels
    /// get the padding they need to preserve spatial size when
    /// `padding == usize::MAX` is *not* used — callers pass explicit padding.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying ops.
    pub fn conv_rect(
        &mut self,
        x: NodeId,
        in_c: usize,
        out_c: usize,
        kernel: (usize, usize),
        stride: usize,
        padding: usize,
    ) -> Result<NodeId> {
        let fan_in = in_c * kernel.0 * kernel.1;
        let name = self.fresh("conv");
        let w = self.g.parameter(
            &name,
            [out_c, in_c, kernel.0, kernel.1],
            Init::He { fan_in },
        );
        self.g.conv2d(x, w, Conv2dConfig::new(stride, padding))
    }

    /// Batch normalisation with learnable scale and shift.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying ops.
    pub fn batch_norm(&mut self, x: NodeId, channels: usize) -> Result<NodeId> {
        let gname = self.fresh("bn_gamma");
        let gamma = self.g.parameter(&gname, [channels], Init::Ones);
        let bname = self.fresh("bn_beta");
        let beta = self.g.parameter(&bname, [channels], Init::Zeros);
        self.g.batch_norm(x, gamma, beta, 1e-5)
    }

    /// The CNN workhorse: convolution → batch norm → ReLU.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying ops.
    pub fn conv_bn_relu(
        &mut self,
        x: NodeId,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<NodeId> {
        let c = self.conv(x, in_c, out_c, kernel, stride, padding)?;
        let b = self.batch_norm(c, out_c)?;
        self.g.relu(b)
    }

    /// Rectangular-kernel conv+BN+ReLU with asymmetric padding
    /// `(pad_h, pad_w)` — Inception's 1×7/7×1 factorisations.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying ops.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_rect_bn_relu(
        &mut self,
        x: NodeId,
        in_c: usize,
        out_c: usize,
        kernel: (usize, usize),
        stride: usize,
        pads: (usize, usize),
    ) -> Result<NodeId> {
        let fan_in = in_c * kernel.0 * kernel.1;
        let name = self.fresh("conv");
        let w = self.g.parameter(
            &name,
            [out_c, in_c, kernel.0, kernel.1],
            Init::He { fan_in },
        );
        let c = self.g.conv2d(x, w, Conv2dConfig::with_pads(stride, pads.0, pads.1))?;
        let b = self.batch_norm(c, out_c)?;
        self.g.relu(b)
    }

    /// Layer normalisation with learnable scale and shift.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying ops.
    pub fn layer_norm(&mut self, x: NodeId, features: usize) -> Result<NodeId> {
        let gname = self.fresh("ln_gamma");
        let gamma = self.g.parameter(&gname, [features], Init::Ones);
        let bname = self.fresh("ln_beta");
        let beta = self.g.parameter(&bname, [features], Init::Zeros);
        self.g.layer_norm(x, gamma, beta, 1e-5)
    }

    /// Max pooling with a square window.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying ops.
    pub fn max_pool(&mut self, x: NodeId, kernel: usize, stride: usize, padding: usize) -> Result<NodeId> {
        self.g.max_pool(x, Pool2dConfig::new(kernel, stride, padding))
    }

    /// Average pooling with a square window.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying ops.
    pub fn avg_pool(&mut self, x: NodeId, kernel: usize, stride: usize, padding: usize) -> Result<NodeId> {
        self.g.avg_pool(x, Pool2dConfig::new(kernel, stride, padding))
    }
}

/// Parameters of one fused-gate LSTM layer.
#[derive(Debug, Clone, Copy)]
pub struct LstmParams {
    /// Input projection `[in, 4·hidden]`.
    pub wx: NodeId,
    /// Recurrent projection `[hidden, 4·hidden]`.
    pub wh: NodeId,
    /// Gate bias `[4·hidden]`.
    pub b: NodeId,
    /// Hidden width.
    pub hidden: usize,
}

/// Creates the parameters of an LSTM layer.
pub fn lstm_params(nb: &mut NetBuilder, input: usize, hidden: usize) -> LstmParams {
    let wx_name = nb.fresh("lstm_wx");
    let wx = nb.g.parameter(
        &wx_name,
        [input, 4 * hidden],
        Init::Xavier { fan_in: input, fan_out: 4 * hidden },
    );
    let wh_name = nb.fresh("lstm_wh");
    let wh = nb.g.parameter(
        &wh_name,
        [hidden, 4 * hidden],
        Init::Xavier { fan_in: hidden, fan_out: 4 * hidden },
    );
    let b_name = nb.fresh("lstm_b");
    let b = nb.g.parameter(&b_name, [4 * hidden], Init::Zeros);
    LstmParams { wx, wh, b, hidden }
}

/// One LSTM time step. Returns `(h, c)`.
///
/// Lowered to exactly the kernel stream real frameworks emit per step: two
/// GEMMs for the fused gates, then a chain of small element-wise kernels —
/// the structure behind the paper's Observation 5.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn lstm_step(
    nb: &mut NetBuilder,
    p: &LstmParams,
    x: NodeId,
    h_prev: NodeId,
    c_prev: NodeId,
) -> Result<(NodeId, NodeId)> {
    let gx = nb.g.matmul(x, p.wx)?;
    let gh = nb.g.matmul(h_prev, p.wh)?;
    let gates = nb.g.add(gx, gh)?;
    let gates = nb.g.add_bias(gates, p.b)?;
    let h = p.hidden;
    let i = nb.g.slice_cols(gates, 0, h)?;
    let f = nb.g.slice_cols(gates, h, h)?;
    let o = nb.g.slice_cols(gates, 2 * h, h)?;
    let gcell = nb.g.slice_cols(gates, 3 * h, h)?;
    let i = nb.g.sigmoid(i)?;
    let f = nb.g.sigmoid(f)?;
    let o = nb.g.sigmoid(o)?;
    let gcell = nb.g.tanh(gcell)?;
    let fc = nb.g.mul(f, c_prev)?;
    let ig = nb.g.mul(i, gcell)?;
    let c = nb.g.add(fc, ig)?;
    let ct = nb.g.tanh(c)?;
    let h_out = nb.g.mul(o, ct)?;
    Ok((h_out, c))
}

/// Parameters of one vanilla (tanh) RNN layer, as in Deep Speech 2's
/// default MXNet configuration.
#[derive(Debug, Clone, Copy)]
pub struct RnnParams {
    /// Input projection `[in, hidden]`.
    pub wx: NodeId,
    /// Recurrent projection `[hidden, hidden]`.
    pub wh: NodeId,
    /// Bias `[hidden]`.
    pub b: NodeId,
}

/// Creates the parameters of a vanilla RNN layer.
pub fn rnn_params(nb: &mut NetBuilder, input: usize, hidden: usize) -> RnnParams {
    let wx_name = nb.fresh("rnn_wx");
    let wx = nb.g.parameter(
        &wx_name,
        [input, hidden],
        Init::Xavier { fan_in: input, fan_out: hidden },
    );
    let wh_name = nb.fresh("rnn_wh");
    let wh = nb.g.parameter(
        &wh_name,
        [hidden, hidden],
        Init::Xavier { fan_in: hidden, fan_out: hidden },
    );
    let b_name = nb.fresh("rnn_b");
    let b = nb.g.parameter(&b_name, [hidden], Init::Zeros);
    RnnParams { wx, wh, b }
}

/// One vanilla RNN time step: `h = tanh(x·Wx + h_prev·Wh + b)`.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn rnn_step(nb: &mut NetBuilder, p: &RnnParams, x: NodeId, h_prev: NodeId) -> Result<NodeId> {
    let gx = nb.g.matmul(x, p.wx)?;
    let gh = nb.g.matmul(h_prev, p.wh)?;
    let s = nb.g.add(gx, gh)?;
    let s = nb.g.add_bias(s, p.b)?;
    nb.g.tanh(s)
}

/// Luong-style dot-product attention.
///
/// `query` is `[batch, hidden]`; `keys` is `[batch, steps, hidden]`
/// (also used as values). Returns the context vector `[batch, hidden]`.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn dot_attention(
    nb: &mut NetBuilder,
    query: NodeId,
    keys: NodeId,
    batch: usize,
    steps: usize,
    hidden: usize,
) -> Result<NodeId> {
    let q3 = nb.g.reshape(query, [batch, 1, hidden])?;
    let kt = nb.g.batch_transpose(keys)?; // [batch, hidden, steps]
    let scores = nb.g.batch_matmul(q3, kt)?; // [batch, 1, steps]
    let scores2 = nb.g.reshape(scores, [batch, steps])?;
    let scaled = nb.g.scale(scores2, 1.0 / (hidden as f32).sqrt())?;
    let attn = nb.g.softmax(scaled)?;
    let attn3 = nb.g.reshape(attn, [batch, 1, steps])?;
    let ctx = nb.g.batch_matmul(attn3, keys)?; // [batch, 1, hidden]
    nb.g.reshape(ctx, [batch, hidden])
}

/// Multi-head self/cross attention over `[batch·steps, d_model]` rows in
/// `(batch, step)` order. `kv` may equal `q_input` (self-attention) or come
/// from the encoder (cross-attention).
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
#[allow(clippy::too_many_arguments)]
pub fn multi_head_attention(
    nb: &mut NetBuilder,
    q_input: NodeId,
    kv_input: NodeId,
    batch: usize,
    q_steps: usize,
    kv_steps: usize,
    d_model: usize,
    heads: usize,
) -> Result<NodeId> {
    assert_eq!(d_model % heads, 0, "d_model must divide evenly into heads");
    let dh = d_model / heads;
    let q = nb.dense(q_input, d_model, d_model)?;
    let k = nb.dense(kv_input, d_model, d_model)?;
    let v = nb.dense(kv_input, d_model, d_model)?;
    let mut head_outputs = Vec::with_capacity(heads);
    for h in 0..heads {
        let qh = nb.g.slice_cols(q, h * dh, dh)?;
        let kh = nb.g.slice_cols(k, h * dh, dh)?;
        let vh = nb.g.slice_cols(v, h * dh, dh)?;
        let qh = nb.g.reshape(qh, [batch, q_steps, dh])?;
        let kh = nb.g.reshape(kh, [batch, kv_steps, dh])?;
        let vh = nb.g.reshape(vh, [batch, kv_steps, dh])?;
        let kt = nb.g.batch_transpose(kh)?;
        let scores = nb.g.batch_matmul(qh, kt)?; // [batch, q_steps, kv_steps]
        let scores2 = nb.g.reshape(scores, [batch * q_steps, kv_steps])?;
        let scaled = nb.g.scale(scores2, 1.0 / (dh as f32).sqrt())?;
        let attn = nb.g.softmax(scaled)?;
        let attn3 = nb.g.reshape(attn, [batch, q_steps, kv_steps])?;
        let ctx = nb.g.batch_matmul(attn3, vh)?; // [batch, q_steps, dh]
        let ctx2 = nb.g.reshape(ctx, [batch * q_steps, dh])?;
        head_outputs.push(ctx2);
    }
    let merged = nb.g.concat(&head_outputs, 1)?;
    nb.dense(merged, d_model, d_model)
}

/// One Transformer sub-block: multi-head attention (or cross-attention) +
/// residual + layer norm, then a position-wise feed-forward + residual +
/// layer norm.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
#[allow(clippy::too_many_arguments)]
pub fn transformer_block(
    nb: &mut NetBuilder,
    x: NodeId,
    cross_kv: Option<(NodeId, usize)>,
    batch: usize,
    steps: usize,
    d_model: usize,
    heads: usize,
    d_ff: usize,
) -> Result<NodeId> {
    // Self-attention sub-layer.
    let sa = multi_head_attention(nb, x, x, batch, steps, steps, d_model, heads)?;
    let x = nb.g.add(x, sa)?;
    let mut x = nb.layer_norm(x, d_model)?;
    // Optional encoder-decoder cross-attention sub-layer.
    if let Some((kv, kv_steps)) = cross_kv {
        let ca = multi_head_attention(nb, x, kv, batch, steps, kv_steps, d_model, heads)?;
        let summed = nb.g.add(x, ca)?;
        x = nb.layer_norm(summed, d_model)?;
    }
    // Position-wise feed-forward sub-layer.
    let ff1 = nb.dense(x, d_model, d_ff)?;
    let ff1 = nb.g.relu(ff1)?;
    let ff2 = nb.dense(ff1, d_ff, d_model)?;
    let x = nb.g.add(x, ff2)?;
    nb.layer_norm(x, d_model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::Session;
    use tbd_tensor::Tensor;

    #[test]
    fn fresh_names_are_unique_and_scoped() {
        let mut nb = NetBuilder::new();
        let a = nb.fresh("w");
        let b = nb.scoped("enc", |nb| nb.fresh("w"));
        let c = nb.fresh("w");
        assert_ne!(a, c);
        assert!(b.starts_with("enc/w"));
    }

    #[test]
    fn dense_layer_shapes() {
        let mut nb = NetBuilder::new();
        let x = nb.g.input("x", [3, 4]);
        let y = nb.dense(x, 4, 7).unwrap();
        assert_eq!(nb.g.shape(y).dims(), &[3, 7]);
    }

    #[test]
    fn conv_bn_relu_halves_spatial_with_stride_2() {
        let mut nb = NetBuilder::new();
        let x = nb.g.input("x", [2, 3, 8, 8]);
        let y = nb.conv_bn_relu(x, 3, 16, 3, 2, 1).unwrap();
        assert_eq!(nb.g.shape(y).dims(), &[2, 16, 4, 4]);
    }

    #[test]
    fn lstm_step_preserves_shapes_and_trains() {
        let mut nb = NetBuilder::new();
        let x = nb.g.input("x", [2, 3]);
        let h0 = nb.g.input("h0", [2, 4]);
        let c0 = nb.g.input("c0", [2, 4]);
        let p = lstm_params(&mut nb, 3, 4);
        let (h, c) = lstm_step(&mut nb, &p, x, h0, c0).unwrap();
        assert_eq!(nb.g.shape(h).dims(), &[2, 4]);
        assert_eq!(nb.g.shape(c).dims(), &[2, 4]);
        let loss = nb.g.sum_all(h).unwrap();
        let graph = nb.g.finish();
        let mut session = Session::new(graph, 5);
        let run = session
            .forward(&[
                (x, Tensor::ones([2, 3])),
                (h0, Tensor::zeros([2, 4])),
                (c0, Tensor::zeros([2, 4])),
            ])
            .unwrap();
        // Zero initial state: h = sigmoid(o)·tanh(sigmoid(i)·tanh(g)) is bounded.
        let hv = run.value(h).unwrap();
        assert!(hv.data().iter().all(|v| v.abs() < 1.0));
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        assert!(grads.param_grad(p.wx).unwrap().all_finite());
        assert!(grads.param_grad(p.wh).unwrap().l2_norm() >= 0.0);
    }

    #[test]
    fn attention_is_convex_combination() {
        // With uniform keys the context must equal the key vector.
        let mut nb = NetBuilder::new();
        let q = nb.g.input("q", [2, 4]);
        let k = nb.g.input("k", [2, 3, 4]);
        let ctx = dot_attention(&mut nb, q, k, 2, 3, 4).unwrap();
        let graph = nb.g.finish();
        let mut session = Session::new(graph, 0);
        let run = session
            .forward(&[(q, Tensor::ones([2, 4])), (k, Tensor::full([2, 3, 4], 0.5))])
            .unwrap();
        let c = run.value(ctx).unwrap();
        assert!(c.data().iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn transformer_block_keeps_token_shape() {
        let mut nb = NetBuilder::new();
        let x = nb.g.input("x", [2 * 3, 8]);
        let y = transformer_block(&mut nb, x, None, 2, 3, 8, 2, 16).unwrap();
        assert_eq!(nb.g.shape(y).dims(), &[6, 8]);
        // Cross-attention variant.
        let mut nb2 = NetBuilder::new();
        let x2 = nb2.g.input("x", [2 * 3, 8]);
        let enc = nb2.g.input("enc", [2 * 5, 8]);
        let y2 = transformer_block(&mut nb2, x2, Some((enc, 5)), 2, 3, 8, 2, 16).unwrap();
        assert_eq!(nb2.g.shape(y2).dims(), &[6, 8]);
    }

    #[test]
    fn rnn_step_is_bounded_by_tanh() {
        let mut nb = NetBuilder::new();
        let x = nb.g.input("x", [2, 3]);
        let h0 = nb.g.input("h0", [2, 5]);
        let p = rnn_params(&mut nb, 3, 5);
        let h = rnn_step(&mut nb, &p, x, h0).unwrap();
        let graph = nb.g.finish();
        let mut session = Session::new(graph, 9);
        let run = session
            .forward(&[(x, Tensor::full([2, 3], 10.0)), (h0, Tensor::zeros([2, 5]))])
            .unwrap();
        assert!(run.value(h).unwrap().data().iter().all(|v| v.abs() <= 1.0));
    }
}

/// Parameters of one GRU layer (Deep Speech 2's alternative recurrent
/// unit, §3.1.4 of the paper).
#[derive(Debug, Clone, Copy)]
pub struct GruParams {
    /// Input projection for the reset/update gates `[in, 2·hidden]`.
    pub wx_gates: NodeId,
    /// Recurrent projection for the reset/update gates `[hidden, 2·hidden]`.
    pub wh_gates: NodeId,
    /// Gate bias `[2·hidden]`.
    pub b_gates: NodeId,
    /// Input projection for the candidate `[in, hidden]`.
    pub wx_cand: NodeId,
    /// Recurrent projection for the candidate `[hidden, hidden]`.
    pub wh_cand: NodeId,
    /// Candidate bias `[hidden]`.
    pub b_cand: NodeId,
    /// Hidden width.
    pub hidden: usize,
}

/// Creates the parameters of a GRU layer.
pub fn gru_params(nb: &mut NetBuilder, input: usize, hidden: usize) -> GruParams {
    let n1 = nb.fresh("gru_wx_gates");
    let wx_gates = nb.g.parameter(
        &n1,
        [input, 2 * hidden],
        Init::Xavier { fan_in: input, fan_out: 2 * hidden },
    );
    let n2 = nb.fresh("gru_wh_gates");
    let wh_gates = nb.g.parameter(
        &n2,
        [hidden, 2 * hidden],
        Init::Xavier { fan_in: hidden, fan_out: 2 * hidden },
    );
    let n3 = nb.fresh("gru_b_gates");
    let b_gates = nb.g.parameter(&n3, [2 * hidden], Init::Zeros);
    let n4 = nb.fresh("gru_wx_cand");
    let wx_cand = nb.g.parameter(
        &n4,
        [input, hidden],
        Init::Xavier { fan_in: input, fan_out: hidden },
    );
    let n5 = nb.fresh("gru_wh_cand");
    let wh_cand = nb.g.parameter(
        &n5,
        [hidden, hidden],
        Init::Xavier { fan_in: hidden, fan_out: hidden },
    );
    let n6 = nb.fresh("gru_b_cand");
    let b_cand = nb.g.parameter(&n6, [hidden], Init::Zeros);
    GruParams { wx_gates, wh_gates, b_gates, wx_cand, wh_cand, b_cand, hidden }
}

/// One GRU time step:
/// `r,z = σ(x·Wx + h·Wh + b)`, `h̃ = tanh(x·Wxc + (r⊙h)·Whc + bc)`,
/// `h' = z⊙h + (1−z)⊙h̃`.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn gru_step(nb: &mut NetBuilder, p: &GruParams, x: NodeId, h_prev: NodeId) -> Result<NodeId> {
    let h = p.hidden;
    let gx = nb.g.matmul(x, p.wx_gates)?;
    let gh = nb.g.matmul(h_prev, p.wh_gates)?;
    let gates = nb.g.add(gx, gh)?;
    let gates = nb.g.add_bias(gates, p.b_gates)?;
    let gates = nb.g.sigmoid(gates)?;
    let r = nb.g.slice_cols(gates, 0, h)?;
    let z = nb.g.slice_cols(gates, h, h)?;
    let rh = nb.g.mul(r, h_prev)?;
    let cx = nb.g.matmul(x, p.wx_cand)?;
    let ch = nb.g.matmul(rh, p.wh_cand)?;
    let cand = nb.g.add(cx, ch)?;
    let cand = nb.g.add_bias(cand, p.b_cand)?;
    let cand = nb.g.tanh(cand)?;
    // h' = z⊙h_prev + (1−z)⊙cand  ==  cand + z⊙(h_prev − cand)
    let diff = nb.g.sub(h_prev, cand)?;
    let gated = nb.g.mul(z, diff)?;
    nb.g.add(cand, gated)
}

#[cfg(test)]
mod gru_tests {
    use super::*;
    use tbd_graph::Session;
    use tbd_tensor::Tensor;

    #[test]
    fn gru_step_shapes_and_bounds() {
        let mut nb = NetBuilder::new();
        let x = nb.g.input("x", [3, 4]);
        let h0 = nb.g.input("h0", [3, 5]);
        let p = gru_params(&mut nb, 4, 5);
        let h1 = gru_step(&mut nb, &p, x, h0).unwrap();
        assert_eq!(nb.g.shape(h1).dims(), &[3, 5]);
        let graph = nb.g.finish();
        let mut session = Session::new(graph, 13);
        let run = session
            .forward(&[(x, Tensor::full([3, 4], 3.0)), (h0, Tensor::zeros([3, 5]))])
            .unwrap();
        // With zero state, h' = (1−z)·tanh(cand) is bounded by 1.
        assert!(run.value(h1).unwrap().data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn gru_interpolates_between_state_and_candidate() {
        // An identical x with saturated update gate keeps the old state.
        let mut nb = NetBuilder::new();
        let x = nb.g.input("x", [1, 2]);
        let h0 = nb.g.input("h0", [1, 3]);
        let p = gru_params(&mut nb, 2, 3);
        let h1 = gru_step(&mut nb, &p, x, h0).unwrap();
        let graph = nb.g.finish();
        let mut session = Session::new(graph, 2);
        // Force the gate bias very positive: z ≈ 1 ⇒ h' ≈ h_prev.
        let gate_bias = p.b_gates;
        *session.param_mut(gate_bias).unwrap() = Tensor::full([6], 25.0);
        let run = session
            .forward(&[(x, Tensor::zeros([1, 2])), (h0, Tensor::full([1, 3], 0.7))])
            .unwrap();
        for &v in run.value(h1).unwrap().data() {
            assert!((v - 0.7).abs() < 1e-3, "h' {v} should track h_prev");
        }
    }

    #[test]
    fn gru_gradients_flow_to_all_parameters() {
        let mut nb = NetBuilder::new();
        let x = nb.g.input("x", [2, 3]);
        let h0 = nb.g.input("h0", [2, 4]);
        let p = gru_params(&mut nb, 3, 4);
        let h1 = gru_step(&mut nb, &p, x, h0).unwrap();
        let loss = nb.g.sum_all(h1).unwrap();
        let graph = nb.g.finish();
        let mut session = Session::new(graph, 7);
        let run = session
            .forward(&[
                (x, Tensor::from_fn([2, 3], |i| (i as f32 - 3.0) * 0.3)),
                (h0, Tensor::from_fn([2, 4], |i| (i as f32 - 4.0) * 0.1)),
            ])
            .unwrap();
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        for id in [p.wx_gates, p.wh_gates, p.b_gates, p.wx_cand, p.wh_cand, p.b_cand] {
            let g = grads.param_grad(id).expect("gradient exists");
            assert!(g.all_finite());
            assert!(g.l2_norm() > 0.0, "gradient must be nonzero");
        }
    }
}
