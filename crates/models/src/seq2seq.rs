//! LSTM sequence-to-sequence translation with Luong attention — the
//! paper's "Seq2Seq" workload, covering both the TensorFlow NMT and the
//! MXNet Sockeye implementations (which differ only in framework profile,
//! not network).
//!
//! Layout convention: token streams are fed in `(time, batch)` order so a
//! time step is a contiguous row block extractable with `slice_rows`. The
//! graph unrolls the recurrence explicitly — per time step two gate GEMMs
//! plus a chain of element-wise kernels, the structure behind the paper's
//! Observations 5 and 7.

use crate::nn::{dot_attention, lstm_params, lstm_step, NetBuilder};
use crate::BuiltModel;
use std::collections::BTreeMap;
use tbd_graph::{Init, NodeId, Result};

/// Encoder output: per-timestep top-layer hiddens plus each layer's final
/// `(h, c)` pair, consumed by the attention and decoder initial state.
type EncoderOut = (Vec<NodeId>, Vec<(NodeId, NodeId)>);

/// Configuration of the Seq2Seq translator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seq2SeqConfig {
    /// Vocabulary size (17 188 for IWSLT15, Table 3).
    pub vocab: usize,
    /// Embedding width.
    pub embed: usize,
    /// LSTM hidden width.
    pub hidden: usize,
    /// Encoder LSTM layers.
    pub enc_layers: usize,
    /// Decoder LSTM layers.
    pub dec_layers: usize,
    /// Unrolled sequence length (IWSLT sentences run 20–30 tokens).
    pub steps: usize,
}

impl Seq2SeqConfig {
    /// Paper-scale configuration: IWSLT15 vocabulary, 512-wide LSTMs,
    /// 5 recurrent layers in total (Table 2).
    pub fn full() -> Self {
        Seq2SeqConfig { vocab: 17_188, embed: 512, hidden: 512, enc_layers: 2, dec_layers: 3, steps: 25 }
    }

    /// Miniature for functional tests.
    pub fn tiny() -> Self {
        Seq2SeqConfig { vocab: 12, embed: 8, hidden: 8, enc_layers: 1, dec_layers: 1, steps: 4 }
    }

    /// Total recurrent layers (the paper's Table 2 quotes 5).
    pub fn layers(&self) -> usize {
        self.enc_layers + self.dec_layers
    }

    /// Builds the training graph for `batch` sentence pairs.
    ///
    /// Feeds: `src` and `tgt_in` hold token ids in `(time, batch)` order
    /// (`[steps·batch]`), `tgt_out` holds the shifted target ids.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build(&self, batch: usize) -> Result<BuiltModel> {
        let (cfg, b, t, h) = (self, batch, self.steps, self.hidden);
        let mut nb = NetBuilder::new();
        let src = nb.g.input("src", [t * b]);
        let tgt_in = nb.g.input("tgt_in", [t * b]);
        let tgt_out = nb.g.input("tgt_out", [t * b]);

        let embed_name = nb.fresh("embed");
        let embedding = nb.g.parameter(
            &embed_name,
            [cfg.vocab, cfg.embed],
            Init::Uniform { lo: -0.08, hi: 0.08 },
        );

        // ---- Encoder ----
        let src_emb = nb.g.embedding(embedding, src)?; // [t*b, embed]
        let (enc_tops, enc_final) = nb.scoped("enc", |nb| -> Result<EncoderOut> {
            let mut layer_inputs: Vec<NodeId> = (0..t)
                .map(|step| nb.g.slice_rows(src_emb, step * b, b))
                .collect::<Result<_>>()?;
            let mut in_dim = cfg.embed;
            let mut finals = Vec::with_capacity(cfg.enc_layers);
            for layer in 0..cfg.enc_layers {
                let p = nb.scoped(&format!("l{layer}"), |nb| lstm_params(nb, in_dim, h));
                let mut hprev = nb.g.input(&format!("enc_h0_{layer}"), [b, h]);
                let mut cprev = nb.g.input(&format!("enc_c0_{layer}"), [b, h]);
                let mut outputs = Vec::with_capacity(t);
                for x in &layer_inputs {
                    let (hn, cn) = lstm_step(nb, &p, *x, hprev, cprev)?;
                    hprev = hn;
                    cprev = cn;
                    outputs.push(hn);
                }
                finals.push((hprev, cprev));
                layer_inputs = outputs;
                in_dim = h;
            }
            Ok((layer_inputs, finals))
        })?;

        // Encoder memory for attention: [t*b, h] → [b, t, h].
        let stacked = nb.g.concat(&enc_tops, 0)?;
        let mem = nb.g.reshape(stacked, [t, b, h])?;
        let mem = nb.g.permute3(mem, [1, 0, 2])?;

        // ---- Decoder with Luong attention ----
        let tgt_emb = nb.g.embedding(embedding, tgt_in)?;
        let dec_tops = nb.scoped("dec", |nb| -> Result<Vec<NodeId>> {
            let mut layer_inputs: Vec<NodeId> = (0..t)
                .map(|step| nb.g.slice_rows(tgt_emb, step * b, b))
                .collect::<Result<_>>()?;
            let mut in_dim = cfg.embed;
            for layer in 0..cfg.dec_layers {
                let p = nb.scoped(&format!("l{layer}"), |nb| lstm_params(nb, in_dim, h));
                // The decoder starts from the encoder's final state (layers
                // beyond the encoder depth start from fresh feeds).
                let (mut hprev, mut cprev) = match enc_final.get(layer) {
                    Some(&(hf, cf)) => (hf, cf),
                    None => (
                        nb.g.input(&format!("dec_h0_{layer}"), [b, h]),
                        nb.g.input(&format!("dec_c0_{layer}"), [b, h]),
                    ),
                };
                let mut outputs = Vec::with_capacity(t);
                for x in &layer_inputs {
                    let (hn, cn) = lstm_step(nb, &p, *x, hprev, cprev)?;
                    hprev = hn;
                    cprev = cn;
                    outputs.push(hn);
                }
                layer_inputs = outputs;
                in_dim = h;
            }
            // Attend on the top layer only (Luong).
            let mut attended = Vec::with_capacity(t);
            for hdec in layer_inputs {
                let ctx = dot_attention(nb, hdec, mem, b, t, h)?;
                let cat = nb.g.concat(&[hdec, ctx], 1)?;
                let comb = nb.dense(cat, 2 * h, h)?;
                attended.push(nb.g.tanh(comb)?);
            }
            Ok(attended)
        })?;

        // Vocabulary projection over all steps at once (one large GEMM, as
        // the frameworks batch it).
        let dec_stack = nb.g.concat(&dec_tops, 0)?; // [t*b, h]
        let logits = nb.scoped("proj", |nb| nb.dense(dec_stack, h, cfg.vocab))?;
        let loss = nb.g.cross_entropy(logits, tgt_out)?;

        let mut inputs = BTreeMap::new();
        inputs.insert("src".to_string(), src);
        inputs.insert("tgt_in".to_string(), tgt_in);
        inputs.insert("tgt_out".to_string(), tgt_out);
        let graph = nb.g.finish();
        // Register the recurrent initial states so trainers can zero-feed
        // them.
        for &id in graph.inputs() {
            if let tbd_graph::Op::Input { name } = &graph.node(id).op {
                inputs.entry(name.clone()).or_insert(id);
            }
        }
        let mut outputs = BTreeMap::new();
        outputs.insert("logits".to_string(), logits);
        outputs.insert("loss".to_string(), loss);
        Ok(BuiltModel { graph, batch, inputs, outputs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::Session;
    use tbd_tensor::Tensor;

    fn zero_state_feeds(model: &BuiltModel, b: usize, h: usize) -> Vec<(NodeId, Tensor)> {
        model
            .inputs
            .iter()
            .filter(|(name, _)| name.contains("_h0_") || name.contains("_c0_"))
            .map(|(_, &id)| (id, Tensor::zeros([b, h])))
            .collect()
    }

    #[test]
    fn full_config_matches_table2() {
        let cfg = Seq2SeqConfig::full();
        assert_eq!(cfg.layers(), 5);
        assert_eq!(cfg.vocab, 17_188);
    }

    #[test]
    fn tiny_seq2seq_trains_one_step() {
        let cfg = Seq2SeqConfig::tiny();
        let b = 2;
        let model = cfg.build(b).unwrap();
        let n = cfg.steps * b;
        let ids = |offset: usize| {
            Tensor::from_fn([n], move |i| ((i + offset) % cfg.vocab) as f32)
        };
        let mut feeds = vec![
            (model.input("src").unwrap(), ids(0)),
            (model.input("tgt_in").unwrap(), ids(1)),
            (model.input("tgt_out").unwrap(), ids(2)),
        ];
        feeds.extend(zero_state_feeds(&model, b, cfg.hidden));
        let loss = model.loss();
        let mut session = Session::new(model.graph, 21);
        let run = session.forward(&feeds).unwrap();
        let l = run.scalar(loss).unwrap();
        assert!(l.is_finite() && l > 0.0);
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        assert!(grads.global_norm(session.graph()) > 0.0);
    }

    #[test]
    fn full_graph_has_per_timestep_structure() {
        // The full model must unroll into thousands of nodes — the many
        // small kernels the paper blames for poor RNN utilisation.
        let model = Seq2SeqConfig::full().build(4).unwrap();
        assert!(model.graph.len() > 2000, "got {} nodes", model.graph.len());
        // Embedding + LSTM weights dominate: ≈ 2 × 17188 × 512 embedding
        // alone (shared) plus 5 layers of 4·512·(512+512).
        assert!(model.graph.param_count() > 20_000_000);
    }
}
