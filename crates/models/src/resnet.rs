//! ResNet image classifiers (He et al. 2016), the paper's primary image
//! classification workload (ResNet-50) and the Faster R-CNN convolution
//! stack (ResNet-101).

use crate::nn::NetBuilder;
use crate::BuiltModel;
use std::collections::BTreeMap;
use tbd_graph::{NodeId, Result};

/// Configuration of a bottleneck ResNet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Input image side (images are square `[3, image, image]`).
    pub image: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Bottleneck blocks per stage (`[3, 4, 6, 3]` for ResNet-50).
    pub stage_blocks: Vec<usize>,
    /// Base bottleneck width (64 for the paper-scale networks).
    pub base_width: usize,
    /// Stem channels (64 for the paper-scale networks).
    pub stem: usize,
}

impl ResNetConfig {
    /// Paper-scale ResNet-50 (ImageNet, 224×224, 1000 classes, ≈25.6 M
    /// parameters).
    pub fn resnet50() -> Self {
        ResNetConfig { image: 224, classes: 1000, stage_blocks: vec![3, 4, 6, 3], base_width: 64, stem: 64 }
    }

    /// Paper-scale ResNet-101 (used as the Faster R-CNN convolution stack).
    pub fn resnet101() -> Self {
        ResNetConfig { image: 224, classes: 1000, stage_blocks: vec![3, 4, 23, 3], base_width: 64, stem: 64 }
    }

    /// Miniature for functional tests: 16×16 inputs, two stages, 8 classes.
    pub fn tiny() -> Self {
        ResNetConfig { image: 16, classes: 8, stage_blocks: vec![1, 1], base_width: 4, stem: 8 }
    }

    /// Number of weighted layers (convolutions + the final FC), the figure
    /// the paper's Table 2 quotes as "50".
    pub fn weighted_layers(&self) -> usize {
        // Stem conv + 3 convs per block + 1 FC.
        1 + 3 * self.stage_blocks.iter().sum::<usize>() + 1
    }

    /// Builds the classifier graph for a mini-batch of `batch` images.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build(&self, batch: usize) -> Result<BuiltModel> {
        let mut nb = NetBuilder::new();
        let images = nb.g.input("images", [batch, 3, self.image, self.image]);
        let labels = nb.g.input("labels", [batch]);
        let (features, channels) = backbone(&mut nb, images, self, self.stage_blocks.len())?;
        let pooled = nb.g.global_avg_pool(features)?;
        let logits = nb.scoped("fc", |nb| nb.dense(pooled, channels, self.classes))?;
        let loss = nb.g.cross_entropy(logits, labels)?;
        let graph = nb.g.finish();
        let mut inputs = BTreeMap::new();
        inputs.insert("images".to_string(), images);
        inputs.insert("labels".to_string(), labels);
        let mut outputs = BTreeMap::new();
        outputs.insert("logits".to_string(), logits);
        outputs.insert("loss".to_string(), loss);
        Ok(BuiltModel { graph, batch, inputs, outputs })
    }
}

/// Builds the convolutional trunk (stem + the first `stages` stages) on an
/// existing builder and returns `(features, channels)`.
///
/// Shared between the classifiers and the Faster R-CNN region networks.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn backbone(
    nb: &mut NetBuilder,
    images: NodeId,
    cfg: &ResNetConfig,
    stages: usize,
) -> Result<(NodeId, usize)> {
    let mut x = nb.scoped("stem", |nb| {
        let c = nb.conv_bn_relu(images, 3, cfg.stem, 7, 2, 3)?;
        nb.max_pool(c, 3, 2, 1)
    })?;
    let mut in_c = cfg.stem;
    for (stage, &blocks) in cfg.stage_blocks.iter().take(stages).enumerate() {
        let width = cfg.base_width << stage;
        let out_c = width * 4;
        let stride = if stage == 0 { 1 } else { 2 };
        for block in 0..blocks {
            let label = format!("stage{stage}_block{block}");
            x = nb.scoped(&label, |nb| {
                bottleneck(nb, x, in_c, width, out_c, if block == 0 { stride } else { 1 })
            })?;
            in_c = out_c;
        }
    }
    Ok((x, in_c))
}

/// One bottleneck residual block: 1×1 reduce → 3×3 → 1×1 expand, with a
/// projection shortcut when the shape changes.
fn bottleneck(
    nb: &mut NetBuilder,
    x: NodeId,
    in_c: usize,
    width: usize,
    out_c: usize,
    stride: usize,
) -> Result<NodeId> {
    let a = nb.conv_bn_relu(x, in_c, width, 1, 1, 0)?;
    let b = nb.conv_bn_relu(a, width, width, 3, stride, 1)?;
    let c = nb.conv(b, width, out_c, 1, 1, 0)?;
    let c = nb.batch_norm(c, out_c)?;
    let shortcut = if in_c != out_c || stride != 1 {
        let s = nb.conv(x, in_c, out_c, 1, stride, 0)?;
        nb.batch_norm(s, out_c)?
    } else {
        x
    };
    let sum = nb.g.add(c, shortcut)?;
    nb.g.relu(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::Session;
    use tbd_tensor::Tensor;

    #[test]
    fn resnet50_has_50_weighted_layers() {
        assert_eq!(ResNetConfig::resnet50().weighted_layers(), 50);
        assert_eq!(ResNetConfig::resnet101().weighted_layers(), 101);
    }

    #[test]
    fn resnet50_parameter_count_matches_reference() {
        let model = ResNetConfig::resnet50().build(1).unwrap();
        let params = model.graph.param_count();
        // Torch reference: 25,557,032 parameters.
        assert!(
            (25_000_000..26_000_000).contains(&params),
            "ResNet-50 has {params} parameters"
        );
    }

    #[test]
    fn resnet50_output_shapes() {
        let model = ResNetConfig::resnet50().build(2).unwrap();
        let logits = model.output("logits").unwrap();
        assert_eq!(model.graph.node(logits).shape.dims(), &[2, 1000]);
        assert_eq!(model.graph.node(model.loss()).shape.rank(), 0);
    }

    #[test]
    fn tiny_resnet_trains_one_step() {
        let model = ResNetConfig::tiny().build(2).unwrap();
        let images = model.input("images").unwrap();
        let labels = model.input("labels").unwrap();
        let loss = model.loss();
        let mut session = Session::new(model.graph, 11);
        let run = session
            .forward(&[
                (images, Tensor::from_fn([2, 3, 16, 16], |i| ((i % 37) as f32 - 18.0) * 0.05)),
                (labels, Tensor::from_slice(&[1.0, 3.0])),
            ])
            .unwrap();
        let l = run.scalar(loss).unwrap();
        assert!(l.is_finite() && l > 0.0);
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        assert!(grads.global_norm(session.graph()) > 0.0);
    }

    #[test]
    fn resnet101_is_deeper_than_resnet50() {
        let r50 = ResNetConfig::resnet50().build(1).unwrap();
        let r101 = ResNetConfig::resnet101().build(1).unwrap();
        assert!(r101.graph.param_count() > r50.graph.param_count());
        assert!(r101.graph.len() > r50.graph.len());
    }
}
