//! Faster R-CNN (Ren et al. 2015), the paper's object-detection workload on
//! Pascal VOC 2007, with a ResNet-101 convolution stack shared between the
//! Region Proposal Network and the detection head (paper Table 2,
//! footnote a). Training processes one image per iteration, exactly as the
//! paper reports ("the number of images processed per iteration is fixed to
//! be just one").
//!
//! Substitution note (`DESIGN.md`): ROI pooling is a data-dependent gather
//! that a static dataflow graph cannot wire, so the detection head consumes
//! a `rois` feed of `[proposals, C, 7, 7]` pooled features (produced by the
//! data generator) and the smooth-L1 box losses are replaced by MSE. The
//! kernel stream — big backbone convolutions, RPN heads, per-proposal
//! conv5 + FC heads — matches the original.

use crate::nn::NetBuilder;
use crate::resnet::{backbone, ResNetConfig};
use crate::BuiltModel;
use std::collections::BTreeMap;
use tbd_graph::{NodeId, Result};

/// Configuration of the Faster R-CNN detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FasterRcnnConfig {
    /// Backbone configuration (ResNet-101 at paper scale).
    pub backbone: ResNetConfig,
    /// Backbone stages feeding the RPN (3 ⇒ stride 16, 1024 channels).
    pub shared_stages: usize,
    /// Input image height (VOC images rescaled to ~600 shorter side).
    pub image_h: usize,
    /// Input image width.
    pub image_w: usize,
    /// Anchors per feature-map cell.
    pub anchors: usize,
    /// Proposals sampled for the detection head per iteration.
    pub proposals: usize,
    /// Object classes including background (21 for VOC).
    pub classes: usize,
}

impl FasterRcnnConfig {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        FasterRcnnConfig {
            backbone: ResNetConfig::resnet101(),
            shared_stages: 3,
            image_h: 600,
            image_w: 800,
            anchors: 9,
            proposals: 128,
            classes: 21,
        }
    }

    /// Miniature for functional tests.
    pub fn tiny() -> Self {
        FasterRcnnConfig {
            backbone: ResNetConfig::tiny(),
            shared_stages: 2,
            image_h: 32,
            image_w: 32,
            anchors: 3,
            proposals: 4,
            classes: 4,
        }
    }

    /// Builds the single-image training graph.
    ///
    /// Feeds: `image` `[1, 3, h, w]`, `rpn_labels` (one objectness id per
    /// anchor), `rpn_box_targets`, `rois` (pooled proposal features),
    /// `roi_labels`, `roi_box_targets`.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build(&self) -> Result<BuiltModel> {
        let mut nb = NetBuilder::new();
        // The paper resizes VOC images; the backbone expects square
        // configs, so we pass the true rectangle straight through convs.
        let image = nb.g.input("image", [1, 3, self.image_h, self.image_w]);

        // Shared convolution stack (ResNet-101 conv1–conv4).
        let mut bb_cfg = self.backbone.clone();
        bb_cfg.image = self.image_h; // backbone() only reads channel config
        let (features, feat_c) =
            nb.scoped("backbone", |nb| backbone(nb, image, &bb_cfg, self.shared_stages))?;
        let fdims = nb.g.shape(features).dims().to_vec();
        let (fh, fw) = (fdims[2], fdims[3]);
        let cells = fh * fw;

        // ---- Region Proposal Network ----
        let (rpn_cls_loss, rpn_box_loss, rpn_labels, rpn_box_targets) =
            nb.scoped("rpn", |nb| -> Result<(NodeId, NodeId, NodeId, NodeId)> {
                let mid = nb.conv_bn_relu(features, feat_c, 512, 3, 1, 1)?;
                // Objectness: 2 logits per anchor per cell.
                let cls = nb.conv(mid, 512, 2 * self.anchors, 1, 1, 0)?;
                let cls3 = nb.g.reshape(cls, [self.anchors, 2, cells])?;
                let cls3 = nb.g.permute3(cls3, [0, 2, 1])?; // [anchors, cells, 2]
                let cls_rows = nb.g.reshape(cls3, [self.anchors * cells, 2])?;
                let rpn_labels = nb.g.input("rpn_labels", [self.anchors * cells]);
                let cls_loss = nb.g.cross_entropy(cls_rows, rpn_labels)?;
                // Box regression: 4 deltas per anchor per cell (MSE).
                let boxes = nb.conv(mid, 512, 4 * self.anchors, 1, 1, 0)?;
                let box_rows = nb.g.reshape(boxes, [self.anchors * cells, 4])?;
                let rpn_box_targets = nb.g.input("rpn_box_targets", [self.anchors * cells, 4]);
                let diff = nb.g.sub(box_rows, rpn_box_targets)?;
                let sq = nb.g.mul(diff, diff)?;
                let box_loss = nb.g.mean_all(sq)?;
                Ok((cls_loss, box_loss, rpn_labels, rpn_box_targets))
            })?;

        // ---- Detection head over pooled proposals ----
        let rois = nb.g.input("rois", [self.proposals, feat_c, 7, 7]);
        let (roi_cls_loss, roi_box_loss, roi_labels, roi_box_targets, cls_logits) = nb.scoped(
            "head",
            |nb| -> Result<(NodeId, NodeId, NodeId, NodeId, NodeId)> {
                // conv5-style residual processing of each proposal.
                let width = self.backbone.base_width << (self.shared_stages.saturating_sub(1));
                let a = nb.conv_bn_relu(rois, feat_c, width, 1, 1, 0)?;
                let b = nb.conv_bn_relu(a, width, width, 3, 1, 1)?;
                let c = nb.conv_bn_relu(b, width, feat_c * 2, 1, 1, 0)?;
                let pooled = nb.g.global_avg_pool(c)?;
                let cls_logits = nb.dense(pooled, feat_c * 2, self.classes)?;
                let roi_labels = nb.g.input("roi_labels", [self.proposals]);
                let cls_loss = nb.g.cross_entropy(cls_logits, roi_labels)?;
                let box_pred = nb.dense(pooled, feat_c * 2, 4 * self.classes)?;
                let roi_box_targets = nb.g.input("roi_box_targets", [self.proposals, 4 * self.classes]);
                let diff = nb.g.sub(box_pred, roi_box_targets)?;
                let sq = nb.g.mul(diff, diff)?;
                let box_loss = nb.g.mean_all(sq)?;
                Ok((cls_loss, box_loss, roi_labels, roi_box_targets, cls_logits))
            },
        )?;

        let rpn_total = nb.g.add(rpn_cls_loss, rpn_box_loss)?;
        let roi_total = nb.g.add(roi_cls_loss, roi_box_loss)?;
        let loss = nb.g.add(rpn_total, roi_total)?;

        let graph = nb.g.finish();
        let mut inputs = BTreeMap::new();
        inputs.insert("image".to_string(), image);
        inputs.insert("rpn_labels".to_string(), rpn_labels);
        inputs.insert("rpn_box_targets".to_string(), rpn_box_targets);
        inputs.insert("rois".to_string(), rois);
        inputs.insert("roi_labels".to_string(), roi_labels);
        inputs.insert("roi_box_targets".to_string(), roi_box_targets);
        let mut outputs = BTreeMap::new();
        outputs.insert("rpn_cls_loss".to_string(), rpn_cls_loss);
        outputs.insert("roi_cls_loss".to_string(), roi_cls_loss);
        outputs.insert("cls_logits".to_string(), cls_logits);
        outputs.insert("loss".to_string(), loss);
        Ok(BuiltModel { graph, batch: 1, inputs, outputs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::Session;
    use tbd_tensor::Tensor;

    #[test]
    fn full_model_shares_resnet101_stack() {
        let model = FasterRcnnConfig::full().build().unwrap();
        // conv1–conv4 of ResNet-101 alone: > 25 M params.
        assert!(model.graph.param_count() > 20_000_000);
        assert_eq!(model.batch, 1);
    }

    #[test]
    fn tiny_faster_rcnn_trains_one_step() {
        let cfg = FasterRcnnConfig::tiny();
        let model = cfg.build().unwrap();
        // Derive feature-map geometry from the declared input shapes.
        let rpn_labels = model.input("rpn_labels").unwrap();
        let n_anchors = model.graph.node(rpn_labels).shape.len();
        let rois = model.input("rois").unwrap();
        let rois_shape = model.graph.node(rois).shape.dims().to_vec();
        let loss = model.loss();
        let feeds = vec![
            (
                model.input("image").unwrap(),
                Tensor::from_fn([1, 3, 32, 32], |i| ((i % 19) as f32 - 9.0) * 0.05),
            ),
            (model.input("rpn_labels").unwrap(), Tensor::from_fn([n_anchors], |i| (i % 2) as f32)),
            (
                model.input("rpn_box_targets").unwrap(),
                Tensor::zeros([n_anchors, 4]),
            ),
            (model.input("rois").unwrap(), Tensor::from_fn(rois_shape.clone(), |i| ((i % 9) as f32) * 0.1)),
            (
                model.input("roi_labels").unwrap(),
                Tensor::from_fn([cfg.proposals], |i| (i % cfg.classes) as f32),
            ),
            (
                model.input("roi_box_targets").unwrap(),
                Tensor::zeros([cfg.proposals, 4 * cfg.classes]),
            ),
        ];
        let mut session = Session::new(model.graph, 4);
        let run = session.forward(&feeds).unwrap();
        assert!(run.scalar(loss).unwrap().is_finite());
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        assert!(grads.global_norm(session.graph()) > 0.0);
    }

    #[test]
    fn losses_compose_all_four_terms() {
        let model = FasterRcnnConfig::tiny().build().unwrap();
        assert!(model.output("rpn_cls_loss").is_some());
        assert!(model.output("roi_cls_loss").is_some());
        assert!(model.output("loss").is_some());
    }
}
