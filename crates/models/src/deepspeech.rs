//! Deep Speech 2 (Amodei et al. 2016), the paper's speech-recognition
//! workload, in the default MXNet configuration the paper uses: two
//! convolutional layers over the spectrogram followed by five bidirectional
//! vanilla-RNN layers (not LSTM) and a per-frame character classifier.
//!
//! Substitution note (see `DESIGN.md`): the CTC loss is replaced by a
//! per-frame cross-entropy against aligned labels. CTC's forward-backward
//! recursion is a small CPU-side dynamic program in real frameworks; the
//! GPU-side cost structure (conv front-end, per-timestep recurrent GEMMs,
//! vocabulary projection) is preserved exactly.

use crate::nn::{gru_params, gru_step, rnn_params, rnn_step, NetBuilder};
use crate::BuiltModel;
use std::collections::BTreeMap;
use tbd_graph::{NodeId, Result};
use tbd_tensor::ops::Conv2dConfig;

/// Recurrent cell type (the paper notes Deep Speech 2 ships with "regular
/// recurrent layers or GRUs").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecurrentCell {
    /// Vanilla tanh RNN (the MXNet default the paper measures).
    Vanilla,
    /// Gated recurrent unit.
    Gru,
}

/// Configuration of the Deep Speech 2 recogniser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeepSpeechConfig {
    /// Input spectrogram frames (10 ms hop; 1600 ≈ 16 s of audio).
    pub frames: usize,
    /// Spectrogram frequency bins (161 for LibriSpeech).
    pub freq_bins: usize,
    /// Convolution channels.
    pub conv_channels: usize,
    /// Recurrent hidden width (1760 in the MXNet default).
    pub hidden: usize,
    /// Bidirectional recurrent layers (5 in the paper's configuration).
    pub rnn_layers: usize,
    /// Output alphabet (26 letters + space + apostrophe + blank).
    pub alphabet: usize,
    /// Recurrent cell type.
    pub cell: RecurrentCell,
}

impl DeepSpeechConfig {
    /// Paper-scale configuration (MXNet default on LibriSpeech-100h).
    pub fn full() -> Self {
        DeepSpeechConfig {
            frames: 1600,
            freq_bins: 161,
            conv_channels: 32,
            hidden: 1760,
            rnn_layers: 5,
            alphabet: 29,
            cell: RecurrentCell::Vanilla,
        }
    }

    /// Paper-scale configuration with GRU cells (the DS2 paper's stronger
    /// variant; §3.1.4).
    pub fn full_gru() -> Self {
        DeepSpeechConfig { cell: RecurrentCell::Gru, ..DeepSpeechConfig::full() }
    }

    /// Miniature for functional tests.
    pub fn tiny() -> Self {
        DeepSpeechConfig {
            frames: 16,
            freq_bins: 9,
            conv_channels: 2,
            hidden: 6,
            rnn_layers: 2,
            alphabet: 5,
            cell: RecurrentCell::Vanilla,
        }
    }

    /// Recurrent frames after the two stride-2 convolutions.
    pub fn rnn_frames(&self) -> usize {
        self.frames / 4
    }

    /// Audio seconds represented by one sample (10 ms per frame), used for
    /// the paper's duration-based throughput metric (§3.4.3).
    pub fn audio_seconds_per_sample(&self) -> f64 {
        self.frames as f64 * 0.010
    }

    /// Builds the training graph for `batch` utterances.
    ///
    /// Feeds: `audio` is `[batch, 1, frames, freq_bins]`, `labels` holds one
    /// aligned character id per recurrent frame in `(time, batch)` order.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build(&self, batch: usize) -> Result<BuiltModel> {
        let b = batch;
        let mut nb = NetBuilder::new();
        let audio = nb.g.input("audio", [b, 1, self.frames, self.freq_bins]);

        // Convolution front-end: two stride-2 layers in time and frequency.
        let (conv_out, t_rnn, f_out) = nb.scoped("conv", |nb| -> Result<(NodeId, usize, usize)> {
            let c1_name = nb.fresh("conv1");
            let w1 = nb.g.parameter(
                &c1_name,
                [self.conv_channels, 1, 11, 5],
                tbd_graph::Init::He { fan_in: 55 },
            );
            let c1 = nb.g.conv2d(audio, w1, Conv2dConfig::with_pads(2, 5, 2))?;
            let c1 = nb.batch_norm(c1, self.conv_channels)?;
            let c1 = nb.g.relu(c1)?;
            let c2_name = nb.fresh("conv2");
            let w2 = nb.g.parameter(
                &c2_name,
                [self.conv_channels, self.conv_channels, 11, 5],
                tbd_graph::Init::He { fan_in: self.conv_channels * 55 },
            );
            let c2 = nb.g.conv2d(c1, w2, Conv2dConfig::with_pads(2, 5, 2))?;
            let c2 = nb.batch_norm(c2, self.conv_channels)?;
            let c2 = nb.g.relu(c2)?;
            let shape = nb.g.shape(c2).dims().to_vec();
            Ok((c2, shape[2], shape[3]))
        })?;
        let labels = nb.g.input("labels", [t_rnn * b]);

        // Rearrange [b, c, t, f] so each time step is a contiguous row
        // block: → [t, b·c·f] rows in (time, batch) order.
        let feat = self.conv_channels * f_out;
        let r3 = nb.g.reshape(conv_out, [b * self.conv_channels, t_rnn, f_out])?;
        let tm = nb.g.permute3(r3, [1, 0, 2])?; // [t, b·c, f]
        let rows = nb.g.reshape(tm, [t_rnn, b * feat])?;
        let mut step_inputs: Vec<NodeId> = (0..t_rnn)
            .map(|t| -> Result<NodeId> {
                let r = nb.g.slice_rows(rows, t, 1)?;
                nb.g.reshape(r, [b, feat])
            })
            .collect::<Result<_>>()?;

        // Five bidirectional vanilla-RNN layers; directions are summed, as
        // in Deep Speech 2.
        let mut in_dim = feat;
        for layer in 0..self.rnn_layers {
            let cell = self.cell;
            step_inputs = nb.scoped(&format!("rnn{layer}"), |nb| -> Result<Vec<NodeId>> {
                enum CellParams {
                    Vanilla(crate::nn::RnnParams),
                    Gru(crate::nn::GruParams),
                }
                let make = |nb: &mut NetBuilder| match cell {
                    RecurrentCell::Vanilla => CellParams::Vanilla(rnn_params(nb, in_dim, self.hidden)),
                    RecurrentCell::Gru => CellParams::Gru(gru_params(nb, in_dim, self.hidden)),
                };
                let step = |nb: &mut NetBuilder, p: &CellParams, x: NodeId, h: NodeId| match p {
                    CellParams::Vanilla(p) => rnn_step(nb, p, x, h),
                    CellParams::Gru(p) => gru_step(nb, p, x, h),
                };
                let fwd = make(nb);
                let bwd = make(nb);
                let mut h = nb.g.input(&format!("h0_fwd_{layer}"), [b, self.hidden]);
                let mut fwd_out = Vec::with_capacity(t_rnn);
                for x in &step_inputs.clone() {
                    h = step(nb, &fwd, *x, h)?;
                    fwd_out.push(h);
                }
                let mut h = nb.g.input(&format!("h0_bwd_{layer}"), [b, self.hidden]);
                let mut bwd_out = vec![None; t_rnn];
                for (t, x) in step_inputs.iter().enumerate().rev() {
                    h = step(nb, &bwd, *x, h)?;
                    bwd_out[t] = Some(h);
                }
                step_inputs
                    .iter()
                    .enumerate()
                    .map(|(t, _)| nb.g.add(fwd_out[t], bwd_out[t].expect("filled")))
                    .collect()
            })?;
            in_dim = self.hidden;
        }

        // Character classifier over all frames at once.
        let stacked = nb.g.concat(&step_inputs, 0)?; // [t·b, hidden]
        let logits = nb.scoped("char", |nb| nb.dense(stacked, self.hidden, self.alphabet))?;
        let loss = nb.g.cross_entropy(logits, labels)?;

        let graph = nb.g.finish();
        let mut inputs = BTreeMap::new();
        inputs.insert("audio".to_string(), audio);
        inputs.insert("labels".to_string(), labels);
        for &id in graph.inputs() {
            if let tbd_graph::Op::Input { name } = &graph.node(id).op {
                inputs.entry(name.clone()).or_insert(id);
            }
        }
        let mut outputs = BTreeMap::new();
        outputs.insert("logits".to_string(), logits);
        outputs.insert("loss".to_string(), loss);
        Ok(BuiltModel { graph, batch, inputs, outputs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::Session;
    use tbd_tensor::Tensor;

    #[test]
    fn full_config_matches_paper() {
        let cfg = DeepSpeechConfig::full();
        assert_eq!(cfg.rnn_layers, 5);
        assert_eq!(cfg.rnn_frames(), 400);
        assert!((cfg.audio_seconds_per_sample() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_deepspeech_trains_one_step() {
        let cfg = DeepSpeechConfig::tiny();
        let b = 2;
        let model = cfg.build(b).unwrap();
        let t = cfg.rnn_frames();
        let mut feeds = vec![
            (
                model.input("audio").unwrap(),
                Tensor::from_fn([b, 1, cfg.frames, cfg.freq_bins], |i| ((i % 17) as f32 - 8.0) * 0.1),
            ),
            (
                model.input("labels").unwrap(),
                Tensor::from_fn([t * b], |i| (i % cfg.alphabet) as f32),
            ),
        ];
        for (name, &id) in &model.inputs {
            if name.starts_with("h0_") {
                feeds.push((id, Tensor::zeros([b, cfg.hidden])));
            }
        }
        let loss = model.loss();
        let mut session = Session::new(model.graph, 17);
        let run = session.forward(&feeds).unwrap();
        assert!(run.scalar(loss).unwrap().is_finite());
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        assert!(grads.global_norm(session.graph()) > 0.0);
    }

    #[test]
    fn gru_variant_builds_and_has_more_params() {
        let base = DeepSpeechConfig::tiny();
        let gru = DeepSpeechConfig { cell: RecurrentCell::Gru, ..base };
        let m_rnn = base.build(1).unwrap();
        let m_gru = gru.build(1).unwrap();
        // A GRU has 3× the recurrent weights of a vanilla cell.
        assert!(m_gru.graph.param_count() > m_rnn.graph.param_count());
        assert!(m_gru.graph.len() > m_rnn.graph.len(), "more kernels per step");
    }

    #[test]
    fn tiny_gru_deepspeech_trains() {
        let cfg = DeepSpeechConfig { cell: RecurrentCell::Gru, ..DeepSpeechConfig::tiny() };
        let b = 1;
        let model = cfg.build(b).unwrap();
        let t = cfg.rnn_frames();
        let mut feeds = vec![
            (
                model.input("audio").unwrap(),
                tbd_tensor::Tensor::from_fn([b, 1, cfg.frames, cfg.freq_bins], |i| {
                    ((i % 13) as f32 - 6.0) * 0.1
                }),
            ),
            (
                model.input("labels").unwrap(),
                tbd_tensor::Tensor::from_fn([t * b], |i| (i % cfg.alphabet) as f32),
            ),
        ];
        for (name, &id) in &model.inputs {
            if name.starts_with("h0_") {
                feeds.push((id, tbd_tensor::Tensor::zeros([b, cfg.hidden])));
            }
        }
        let loss = model.loss();
        let mut session = tbd_graph::Session::new(model.graph, 19);
        let run = session.forward(&feeds).unwrap();
        assert!(run.scalar(loss).unwrap().is_finite());
        let grads = session.backward(&run, loss, tbd_tensor::Tensor::scalar(1.0)).unwrap();
        assert!(grads.global_norm(session.graph()) > 0.0);
    }

    #[test]
    fn bidirectional_layers_double_the_rnn_params() {
        let cfg = DeepSpeechConfig::tiny();
        let model = cfg.build(1).unwrap();
        let rnn_weights = model
            .graph
            .params()
            .iter()
            .filter(|(id, _)| {
                matches!(&model.graph.node(*(id)).op,
                    tbd_graph::Op::Parameter { name } if name.contains("rnn_w"))
            })
            .count();
        // Per layer: fwd + bwd, each with wx and wh.
        assert_eq!(rnn_weights, cfg.rnn_layers * 2 * 2);
    }
}
