//! The eight TBD benchmark models as dataflow graphs.
//!
//! Each module builds one workload from the paper's Table 2 in two
//! configurations:
//!
//! * `full()` — the paper-scale network (ImageNet-sized images, IWSLT-sized
//!   vocabularies). These graphs are *costed* by the GPU simulator, never
//!   executed on the CPU.
//! * `tiny()` — a functionally identical miniature used by tests and
//!   examples to train for real and verify that losses decrease and
//!   gradients are correct.
//!
//! | Application domain | Model | Module |
//! |---|---|---|
//! | Image classification | ResNet-50 | [`resnet`] |
//! | Image classification | Inception-v3 | [`inception`] |
//! | Machine translation | Seq2Seq (NMT / Sockeye) | [`seq2seq`] |
//! | Machine translation | Transformer | [`transformer`] |
//! | Object detection | Faster R-CNN | [`faster_rcnn`] |
//! | Speech recognition | Deep Speech 2 | [`deepspeech`] |
//! | Adversarial learning | WGAN | [`wgan`] |
//! | Deep reinforcement learning | A3C | [`a3c`] |
//!
//! [`yolo`] implements YOLO9000/YOLOv2 — the model the paper names as its
//! planned next addition (§3.1.2) — as an extension outside the Table-2
//! registry.

pub mod a3c;
pub mod deepspeech;
pub mod faster_rcnn;
pub mod inception;
pub mod nn;
pub mod resnet;
pub mod seq2seq;
pub mod transformer;
pub mod wgan;
pub mod yolo;

use std::collections::BTreeMap;
use tbd_graph::{Graph, NodeId};

/// A constructed model: graph plus the named handles a trainer or profiler
/// needs.
#[derive(Debug)]
pub struct BuiltModel {
    /// The dataflow graph (forward computation and loss).
    pub graph: Graph,
    /// Mini-batch size the graph was built for (samples; tokens for the
    /// Transformer; one for Faster R-CNN).
    pub batch: usize,
    /// Named input feeds.
    pub inputs: BTreeMap<String, NodeId>,
    /// Named outputs; always contains `"loss"`.
    pub outputs: BTreeMap<String, NodeId>,
}

impl BuiltModel {
    /// The scalar training-loss node.
    ///
    /// # Panics
    ///
    /// Panics if the builder failed to register a `"loss"` output (a bug).
    pub fn loss(&self) -> NodeId {
        *self.outputs.get("loss").expect("every model registers a loss")
    }

    /// Looks up an input feed by name.
    pub fn input(&self, name: &str) -> Option<NodeId> {
        self.inputs.get(name).copied()
    }

    /// Looks up a named output.
    pub fn output(&self, name: &str) -> Option<NodeId> {
        self.outputs.get(name).copied()
    }
}

/// Which of the paper's workloads a descriptor refers to (Table 2 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelKind {
    /// ResNet-50 image classifier.
    ResNet50,
    /// Inception-v3 image classifier.
    InceptionV3,
    /// LSTM sequence-to-sequence translator (NMT / Sockeye).
    Seq2Seq,
    /// Attention-based translator.
    Transformer,
    /// Faster R-CNN object detector.
    FasterRcnn,
    /// Deep Speech 2 speech recogniser.
    DeepSpeech2,
    /// WGAN adversarial generator.
    Wgan,
    /// A3C reinforcement-learning agent.
    A3c,
}

impl ModelKind {
    /// All eight workloads in Table 2 order.
    pub const ALL: [ModelKind; 8] = [
        ModelKind::ResNet50,
        ModelKind::InceptionV3,
        ModelKind::Seq2Seq,
        ModelKind::Transformer,
        ModelKind::FasterRcnn,
        ModelKind::DeepSpeech2,
        ModelKind::Wgan,
        ModelKind::A3c,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::ResNet50 => "ResNet-50",
            ModelKind::InceptionV3 => "Inception-v3",
            ModelKind::Seq2Seq => "Seq2Seq",
            ModelKind::Transformer => "Transformer",
            ModelKind::FasterRcnn => "Faster R-CNN",
            ModelKind::DeepSpeech2 => "Deep Speech 2",
            ModelKind::Wgan => "WGAN",
            ModelKind::A3c => "A3C",
        }
    }

    /// Application domain (Table 2 column 1).
    pub fn application(self) -> &'static str {
        match self {
            ModelKind::ResNet50 | ModelKind::InceptionV3 => "Image classification",
            ModelKind::Seq2Seq | ModelKind::Transformer => "Machine translation",
            ModelKind::FasterRcnn => "Object detection",
            ModelKind::DeepSpeech2 => "Speech recognition",
            ModelKind::Wgan => "Adversarial learning",
            ModelKind::A3c => "Deep reinforcement learning",
        }
    }

    /// Dominant layer type (Table 2 column 4).
    pub fn dominant_layer(self) -> &'static str {
        match self {
            ModelKind::ResNet50 | ModelKind::InceptionV3 | ModelKind::FasterRcnn => "CONV",
            ModelKind::Seq2Seq => "LSTM",
            ModelKind::Transformer => "Attention",
            ModelKind::DeepSpeech2 => "RNN",
            ModelKind::Wgan => "CONV",
            ModelKind::A3c => "CONV",
        }
    }

    /// Dataset used in the paper (Table 2 column 6).
    pub fn dataset(self) -> &'static str {
        match self {
            ModelKind::ResNet50 | ModelKind::InceptionV3 => "ImageNet1K",
            ModelKind::Seq2Seq | ModelKind::Transformer => "IWSLT15",
            ModelKind::FasterRcnn => "Pascal VOC 2007",
            ModelKind::DeepSpeech2 => "LibriSpeech",
            ModelKind::Wgan => "Downsampled ImageNet",
            ModelKind::A3c => "Atari 2600",
        }
    }

    /// Builds the paper-scale graph for the given mini-batch.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors (which indicate a bug in the
    /// model definition rather than a user error).
    pub fn build_full(self, batch: usize) -> tbd_graph::Result<BuiltModel> {
        match self {
            ModelKind::ResNet50 => resnet::ResNetConfig::resnet50().build(batch),
            ModelKind::InceptionV3 => inception::InceptionConfig::full().build(batch),
            ModelKind::Seq2Seq => seq2seq::Seq2SeqConfig::full().build(batch),
            ModelKind::Transformer => transformer::TransformerConfig::full().build_tokens(batch),
            ModelKind::FasterRcnn => faster_rcnn::FasterRcnnConfig::full().build(),
            ModelKind::DeepSpeech2 => deepspeech::DeepSpeechConfig::full().build(batch),
            ModelKind::Wgan => wgan::WganConfig::full().build(batch),
            ModelKind::A3c => a3c::A3cConfig::full().build(batch),
        }
    }
}

/// Trainable-parameter counts grouped by top-level name scope — the
/// layer-wise view of where a model's weights live (cross-checks the
/// paper's Table 2 layer structure).
pub fn param_count_by_scope(graph: &Graph) -> std::collections::BTreeMap<String, usize> {
    let mut by_scope = std::collections::BTreeMap::new();
    for (id, _) in graph.params() {
        if let tbd_graph::Op::Parameter { name } = &graph.node(*id).op {
            let scope = name.split('/').next().unwrap_or("").to_string();
            *by_scope.entry(scope).or_insert(0) += graph.node(*id).shape.len();
        }
    }
    by_scope
}

#[cfg(test)]
mod scope_tests {
    use super::*;

    #[test]
    fn resnet_weights_concentrate_in_late_stages() {
        let model = resnet::ResNetConfig::resnet50().build(1).unwrap();
        let by_scope = param_count_by_scope(&model.graph);
        let stage3: usize = by_scope
            .iter()
            .filter(|(k, _)| k.starts_with("stage3"))
            .map(|(_, v)| v)
            .sum();
        let stage0: usize = by_scope
            .iter()
            .filter(|(k, _)| k.starts_with("stage0"))
            .map(|(_, v)| v)
            .sum();
        assert!(stage3 > 5 * stage0, "late stages dominate: {stage3} vs {stage0}");
        let total: usize = by_scope.values().sum();
        assert_eq!(total, model.graph.param_count());
    }

    #[test]
    fn wgan_scopes_split_generator_and_critic() {
        let model = wgan::WganConfig::full().build(1).unwrap();
        let by_scope = param_count_by_scope(&model.graph);
        assert!(by_scope.contains_key("gen"));
        assert!(by_scope.contains_key("critic"));
    }
}
