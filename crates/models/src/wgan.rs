//! WGAN with a residual generator/critic pair (Gulrajani et al. 2017), the
//! paper's adversarial-learning workload on 64×64 Downsampled ImageNet.
//!
//! Both networks are "small CNNs containing 4 residual blocks" (paper
//! Table 2 footnote). The graph contains the generator, the critic applied
//! to real images and the critic applied to generated images, so one
//! lowered iteration costs the full adversarial update. Parameters are
//! scoped `gen/…` and `critic/…` so trainers can update them alternately;
//! Lipschitz control uses WGAN weight clipping (see `DESIGN.md` for the
//! gradient-penalty substitution note).

use crate::nn::NetBuilder;
use crate::BuiltModel;
use std::collections::BTreeMap;
use tbd_graph::{NodeId, Result};

/// Configuration of the WGAN pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WganConfig {
    /// Output image side (64 at paper scale; must be `4 · 2^blocks / …`).
    pub image: usize,
    /// Latent noise width.
    pub latent: usize,
    /// Base channel width (64 at paper scale).
    pub dim: usize,
    /// Residual blocks in each network (4 at paper scale).
    pub blocks: usize,
}

impl WganConfig {
    /// Paper-scale configuration (64×64, 4 residual blocks per network).
    pub fn full() -> Self {
        WganConfig { image: 64, latent: 128, dim: 64, blocks: 4 }
    }

    /// Miniature for functional tests (16×16, 2 blocks).
    pub fn tiny() -> Self {
        WganConfig { image: 16, latent: 8, dim: 4, blocks: 2 }
    }

    /// Builds the adversarial pair for `batch` images.
    ///
    /// Feeds: `noise` `[batch, latent]`, `real` `[batch, 3, image, image]`.
    /// Outputs: `fake` (generated images), `critic_real`/`critic_fake`
    /// (scalar means), `d_loss` (critic objective), `g_loss` (generator
    /// objective) and `loss` (alias of `d_loss` for profiling).
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build(&self, batch: usize) -> Result<BuiltModel> {
        let base = self.image >> self.blocks; // generator starting grid
        assert!(base >= 2, "image {} too small for {} blocks", self.image, self.blocks);
        let top_c = self.dim << (self.blocks - 1).min(3);
        let mut nb = NetBuilder::new();
        let noise = nb.g.input("noise", [batch, self.latent]);
        let real = nb.g.input("real", [batch, 3, self.image, self.image]);

        // ---- Generator ----
        let fake = nb.scoped("gen", |nb| -> Result<NodeId> {
            let seed = nb.dense(noise, self.latent, top_c * base * base)?;
            let mut x = nb.g.reshape(seed, [batch, top_c, base, base])?;
            let mut c = top_c;
            for i in 0..self.blocks {
                let out_c = (c / 2).max(self.dim);
                x = nb.scoped(&format!("up{i}"), |nb| up_block(nb, x, c, out_c))?;
                c = out_c;
            }
            let x = nb.batch_norm(x, c)?;
            let x = nb.g.relu(x)?;
            let x = nb.conv(x, c, 3, 3, 1, 1)?;
            nb.g.tanh(x)
        })?;

        // ---- Critic (applied twice with shared parameters is not
        // expressible in a pure dataflow graph without weight sharing, so
        // the critic helper takes the parameter set it should reuse) ----
        let critic = nb.scoped("critic", |nb| CriticParams::create(nb, self))?;
        let score_real = critic.apply(&mut nb, real, batch, self)?;
        let score_fake = critic.apply(&mut nb, fake, batch, self)?;

        let mean_real = nb.g.mean_all(score_real)?;
        let mean_fake = nb.g.mean_all(score_fake)?;
        // Critic maximises E[D(real)] − E[D(fake)] ⇒ minimises the negation.
        let d_loss = nb.g.sub(mean_fake, mean_real)?;
        // Generator minimises −E[D(fake)].
        let g_loss = nb.g.scale(mean_fake, -1.0)?;

        let graph = nb.g.finish();
        let mut inputs = BTreeMap::new();
        inputs.insert("noise".to_string(), noise);
        inputs.insert("real".to_string(), real);
        let mut outputs = BTreeMap::new();
        outputs.insert("fake".to_string(), fake);
        outputs.insert("critic_real".to_string(), mean_real);
        outputs.insert("critic_fake".to_string(), mean_fake);
        outputs.insert("d_loss".to_string(), d_loss);
        outputs.insert("g_loss".to_string(), g_loss);
        outputs.insert("loss".to_string(), d_loss);
        Ok(BuiltModel { graph, batch, inputs, outputs })
    }
}

/// Generator residual up-block: BN → ReLU → upsample → conv, twice, with an
/// upsampled 1×1 shortcut.
fn up_block(nb: &mut NetBuilder, x: NodeId, in_c: usize, out_c: usize) -> Result<NodeId> {
    let a = nb.batch_norm(x, in_c)?;
    let a = nb.g.relu(a)?;
    let a = nb.g.upsample2x(a)?;
    let a = nb.conv(a, in_c, out_c, 3, 1, 1)?;
    let a = nb.batch_norm(a, out_c)?;
    let a = nb.g.relu(a)?;
    let a = nb.conv(a, out_c, out_c, 3, 1, 1)?;
    let s = nb.g.upsample2x(x)?;
    let s = nb.conv(s, in_c, out_c, 1, 1, 0)?;
    nb.g.add(a, s)
}

/// The critic's parameters, created once and applied to both real and fake
/// images (weight sharing).
#[derive(Debug)]
struct CriticParams {
    stem: NodeId,
    blocks: Vec<[NodeId; 3]>, // conv1, conv2, shortcut
    head_w: NodeId,
    head_b: NodeId,
}

impl CriticParams {
    fn create(nb: &mut NetBuilder, cfg: &WganConfig) -> Result<CriticParams> {
        let stem_name = nb.fresh("stem");
        let stem = nb.g.parameter(
            &stem_name,
            [cfg.dim, 3, 3, 3],
            tbd_graph::Init::He { fan_in: 27 },
        );
        let mut blocks = Vec::with_capacity(cfg.blocks);
        let mut c = cfg.dim;
        for i in 0..cfg.blocks {
            let out_c = (c * 2).min(cfg.dim * 8);
            let n1 = nb.fresh(&format!("b{i}_conv1"));
            let conv1 = nb.g.parameter(
                &n1,
                [out_c, c, 3, 3],
                tbd_graph::Init::He { fan_in: c * 9 },
            );
            let n2 = nb.fresh(&format!("b{i}_conv2"));
            let conv2 = nb.g.parameter(
                &n2,
                [out_c, out_c, 3, 3],
                tbd_graph::Init::He { fan_in: out_c * 9 },
            );
            let n3 = nb.fresh(&format!("b{i}_short"));
            let short = nb.g.parameter(
                &n3,
                [out_c, c, 1, 1],
                tbd_graph::Init::He { fan_in: c },
            );
            blocks.push([conv1, conv2, short]);
            c = out_c;
        }
        let hw_name = nb.fresh("head_w");
        let head_w = nb.g.parameter(
            &hw_name,
            [c, 1],
            tbd_graph::Init::Xavier { fan_in: c, fan_out: 1 },
        );
        let hb_name = nb.fresh("head_b");
        let head_b = nb.g.parameter(&hb_name, [1], tbd_graph::Init::Zeros);
        Ok(CriticParams { stem, blocks, head_w, head_b })
    }

    fn apply(&self, nb: &mut NetBuilder, images: NodeId, batch: usize, cfg: &WganConfig) -> Result<NodeId> {
        use tbd_tensor::ops::Conv2dConfig;
        let mut x = nb.g.conv2d(images, self.stem, Conv2dConfig::new(1, 1))?;
        x = nb.g.leaky_relu(x, 0.2)?;
        for convs in &self.blocks {
            let a = nb.g.conv2d(x, convs[0], Conv2dConfig::new(1, 1))?;
            let a = nb.g.leaky_relu(a, 0.2)?;
            let a = nb.g.conv2d(a, convs[1], Conv2dConfig::new(1, 1))?;
            let a = nb.g.leaky_relu(a, 0.2)?;
            let a = nb.avg_pool(a, 2, 2, 0)?;
            let s = nb.g.conv2d(x, convs[2], Conv2dConfig::new(1, 0))?;
            let s = nb.avg_pool(s, 2, 2, 0)?;
            x = nb.g.add(a, s)?;
        }
        let pooled = nb.g.global_avg_pool(x)?;
        let score = nb.g.matmul(pooled, self.head_w)?;
        let _ = batch;
        let _ = cfg;
        nb.g.add_bias(score, self.head_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::{Op, Session};
    use tbd_tensor::Tensor;

    #[test]
    fn full_wgan_has_4_plus_4_blocks() {
        let model = WganConfig::full().build(2).unwrap();
        let fake = model.output("fake").unwrap();
        assert_eq!(model.graph.node(fake).shape.dims(), &[2, 3, 64, 64]);
        // Generator and critic parameters are disjoint, scoped sets.
        let gen = scoped_params(&model, "gen/");
        let critic = scoped_params(&model, "critic/");
        assert!(gen > 10 && critic > 10);
    }

    fn scoped_params(model: &BuiltModel, prefix: &str) -> usize {
        model
            .graph
            .params()
            .iter()
            .filter(|(id, _)| {
                matches!(&model.graph.node(*(id)).op, Op::Parameter { name } if name.starts_with(prefix))
            })
            .count()
    }

    #[test]
    fn critic_shares_weights_between_real_and_fake() {
        // Applying the critic twice must not duplicate parameters.
        let m1 = WganConfig::tiny().build(1).unwrap();
        let critic_params = scoped_params(&m1, "critic/");
        // stem + 2 blocks × 3 convs + head (w, b) = 1 + 6 + 2.
        assert_eq!(critic_params, 9);
    }

    #[test]
    fn tiny_wgan_runs_and_backprops_both_losses() {
        let cfg = WganConfig::tiny();
        let model = cfg.build(2).unwrap();
        let noise = model.input("noise").unwrap();
        let real = model.input("real").unwrap();
        let d_loss = model.output("d_loss").unwrap();
        let g_loss = model.output("g_loss").unwrap();
        let mut session = Session::new(model.graph, 8);
        let run = session
            .forward(&[
                (noise, Tensor::from_fn([2, 8], |i| ((i % 7) as f32 - 3.0) * 0.2)),
                (real, Tensor::from_fn([2, 3, 16, 16], |i| ((i % 11) as f32 - 5.0) * 0.1)),
            ])
            .unwrap();
        assert!(run.scalar(d_loss).unwrap().is_finite());
        let dg = session.backward(&run, d_loss, Tensor::scalar(1.0)).unwrap();
        let gg = session.backward(&run, g_loss, Tensor::scalar(1.0)).unwrap();
        assert!(dg.global_norm(session.graph()) > 0.0);
        assert!(gg.global_norm(session.graph()) > 0.0);
    }
}
