//! A3C (Mnih et al. 2016), the paper's deep-reinforcement-learning
//! workload on Atari 2600 frames.
//!
//! The network is the classic 4-layer Atari architecture: two convolutions
//! over a stack of four 84×84 frames, a 256-wide dense layer, and separate
//! policy/value heads. The graph's loss combines the policy cross-entropy
//! (whose gradient the trainer re-weights by the advantage — see
//! `tbd-train::a3c`) with the value-function regression.

use crate::nn::NetBuilder;
use crate::BuiltModel;
use std::collections::BTreeMap;
use tbd_graph::Result;

/// Configuration of the A3C agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct A3cConfig {
    /// Square frame side (84 for Atari).
    pub frame: usize,
    /// Stacked frames per observation (4 for Atari).
    pub stack: usize,
    /// Number of discrete actions (6 for Pong).
    pub actions: usize,
}

impl A3cConfig {
    /// Paper-scale configuration (Atari Pong).
    pub fn full() -> Self {
        A3cConfig { frame: 84, stack: 4, actions: 6 }
    }

    /// The A3C network is already small; the tiny configuration only trims
    /// the action set.
    pub fn tiny() -> Self {
        A3cConfig { frame: 84, stack: 4, actions: 3 }
    }

    /// Builds the actor-critic graph for `batch` observations.
    ///
    /// Feeds: `frames` `[batch, stack, frame, frame]`, `actions` `[batch]`
    /// (taken actions) and `returns` `[batch, 1]` (bootstrapped returns).
    /// Outputs: `policy_logits`, `policy`, `value`, `policy_loss`,
    /// `value_loss` and the combined `loss`.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build(&self, batch: usize) -> Result<BuiltModel> {
        let mut nb = NetBuilder::new();
        let frames = nb.g.input("frames", [batch, self.stack, self.frame, self.frame]);
        let actions = nb.g.input("actions", [batch]);
        let returns = nb.g.input("returns", [batch, 1]);

        // Mnih et al. (2016) feature trunk: 16×8×8/4 then 32×4×4/2.
        let c1 = nb.conv(frames, self.stack, 16, 8, 4, 0)?;
        let c1 = nb.g.relu(c1)?;
        let c2 = nb.conv(c1, 16, 32, 4, 2, 0)?;
        let c2 = nb.g.relu(c2)?;
        let dims = nb.g.shape(c2).dims().to_vec();
        let flat_dim = dims[1] * dims[2] * dims[3];
        let flat = nb.g.reshape(c2, [batch, flat_dim])?;
        let hidden = nb.dense(flat, flat_dim, 256)?;
        let hidden = nb.g.relu(hidden)?;

        let policy_logits = nb.scoped("policy", |nb| nb.dense(hidden, 256, self.actions))?;
        let policy = nb.g.softmax(policy_logits)?;
        let value = nb.scoped("value", |nb| nb.dense(hidden, 256, 1))?;

        // Policy loss: cross-entropy to the taken action (the trainer
        // re-weights its gradient seed by the advantage).
        let policy_loss = nb.g.cross_entropy(policy_logits, actions)?;
        // Value loss: ½·MSE(value, returns).
        let diff = nb.g.sub(value, returns)?;
        let sq = nb.g.mul(diff, diff)?;
        let mse = nb.g.mean_all(sq)?;
        let value_loss = nb.g.scale(mse, 0.5)?;
        let loss = nb.g.add(policy_loss, value_loss)?;

        let graph = nb.g.finish();
        let mut inputs = BTreeMap::new();
        inputs.insert("frames".to_string(), frames);
        inputs.insert("actions".to_string(), actions);
        inputs.insert("returns".to_string(), returns);
        let mut outputs = BTreeMap::new();
        outputs.insert("policy_logits".to_string(), policy_logits);
        outputs.insert("policy".to_string(), policy);
        outputs.insert("value".to_string(), value);
        outputs.insert("policy_loss".to_string(), policy_loss);
        outputs.insert("value_loss".to_string(), value_loss);
        outputs.insert("loss".to_string(), loss);
        Ok(BuiltModel { graph, batch, inputs, outputs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::Session;
    use tbd_tensor::Tensor;

    #[test]
    fn network_has_four_weighted_layers() {
        let model = A3cConfig::full().build(1).unwrap();
        // conv1, conv2, shared dense, policy head, value head: the paper's
        // Table 2 counts 4 layers along the policy path.
        let convs = model
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, tbd_graph::Op::Conv2d(_)))
            .count();
        assert_eq!(convs, 2);
        let policy = model.output("policy").unwrap();
        assert_eq!(model.graph.node(policy).shape.dims(), &[1, 6]);
    }

    #[test]
    fn a3c_trains_one_step() {
        let cfg = A3cConfig::tiny();
        let model = cfg.build(4).unwrap();
        let loss = model.loss();
        let frames = model.input("frames").unwrap();
        let actions = model.input("actions").unwrap();
        let returns = model.input("returns").unwrap();
        let mut session = Session::new(model.graph, 2);
        let run = session
            .forward(&[
                (frames, Tensor::from_fn([4, 4, 84, 84], |i| ((i % 13) as f32) / 13.0)),
                (actions, Tensor::from_slice(&[0.0, 1.0, 2.0, 1.0])),
                (returns, Tensor::from_vec(vec![0.5, -0.5, 1.0, 0.0], [4, 1]).unwrap()),
            ])
            .unwrap();
        assert!(run.scalar(loss).unwrap().is_finite());
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        assert!(grads.global_norm(session.graph()) > 0.0);
    }

    #[test]
    fn policy_is_a_distribution() {
        let cfg = A3cConfig::tiny();
        let model = cfg.build(2).unwrap();
        let policy = model.output("policy").unwrap();
        let frames = model.input("frames").unwrap();
        let actions = model.input("actions").unwrap();
        let returns = model.input("returns").unwrap();
        let mut session = Session::new(model.graph, 6);
        let run = session
            .forward(&[
                (frames, Tensor::from_fn([2, 4, 84, 84], |i| ((i % 7) as f32) / 7.0)),
                (actions, Tensor::from_slice(&[0.0, 1.0])),
                (returns, Tensor::zeros([2, 1])),
            ])
            .unwrap();
        let p = run.value(policy).unwrap();
        for row in 0..2 {
            let s: f32 = p.data()[row * 3..(row + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
