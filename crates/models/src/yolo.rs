//! YOLO9000/YOLOv2 (Redmon & Farhadi 2016) — the model the paper names as
//! its next addition to the suite (§3.1.2: "In the future, we plan to add
//! YOLO9000 … it can perform inference faster than Faster R-CNN").
//!
//! Implemented here as that planned extension: the Darknet-19 convolution
//! stack and the single-shot detection head predicting
//! `anchors × (5 + classes)` values per 13×13 grid cell. The multi-part
//! YOLO loss is modelled as objectness cross-entropy plus box/class MSE
//! against dense targets (the same substitution style as Faster R-CNN —
//! see `DESIGN.md`).

use crate::nn::NetBuilder;
use crate::BuiltModel;
use std::collections::BTreeMap;
use tbd_graph::{NodeId, Result};

/// Configuration of the YOLOv2 detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YoloConfig {
    /// Input image side (416 at paper scale; must be divisible by 32).
    pub image: usize,
    /// Anchor boxes per grid cell (5 for YOLOv2).
    pub anchors: usize,
    /// Object classes (20 for VOC).
    pub classes: usize,
    /// Channel divisor for miniature configurations.
    pub ch_div: usize,
}

impl YoloConfig {
    /// Paper-scale YOLOv2 on VOC (416×416, 5 anchors, 20 classes).
    pub fn full() -> Self {
        YoloConfig { image: 416, anchors: 5, classes: 20, ch_div: 1 }
    }

    /// Miniature for functional tests.
    pub fn tiny() -> Self {
        YoloConfig { image: 64, anchors: 2, classes: 3, ch_div: 16 }
    }

    fn c(&self, n: usize) -> usize {
        (n / self.ch_div).max(2)
    }

    /// Output grid side (input / 32).
    pub fn grid(&self) -> usize {
        self.image / 32
    }

    /// Builds the single-shot detection graph for `batch` images.
    ///
    /// Feeds: `images` `[b, 3, s, s]`, `obj_labels` (one objectness id per
    /// anchor×cell, `[b·anchors·grid²]`) and `box_targets`
    /// (`[b·anchors·grid², 4 + classes]` regression targets).
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build(&self, batch: usize) -> Result<BuiltModel> {
        let d = |n: usize| self.c(n);
        let g = self.grid();
        let cells = batch * self.anchors * g * g;
        let mut nb = NetBuilder::new();
        let images = nb.g.input("images", [batch, 3, self.image, self.image]);
        let obj_labels = nb.g.input("obj_labels", [cells]);
        let box_targets = nb.g.input("box_targets", [cells, 4 + self.classes]);

        // Darknet-19: conv/pool pyramid to stride 32.
        let x = nb.scoped("darknet", |nb| -> Result<NodeId> {
            let x = nb.conv_bn_relu(images, 3, d(32), 3, 1, 1)?;
            let x = nb.max_pool(x, 2, 2, 0)?;
            let x = nb.conv_bn_relu(x, d(32), d(64), 3, 1, 1)?;
            let x = nb.max_pool(x, 2, 2, 0)?;
            // 128-block: 3×3, 1×1 bottleneck, 3×3.
            let x = nb.conv_bn_relu(x, d(64), d(128), 3, 1, 1)?;
            let x = nb.conv_bn_relu(x, d(128), d(64), 1, 1, 0)?;
            let x = nb.conv_bn_relu(x, d(64), d(128), 3, 1, 1)?;
            let x = nb.max_pool(x, 2, 2, 0)?;
            // 256-block.
            let x = nb.conv_bn_relu(x, d(128), d(256), 3, 1, 1)?;
            let x = nb.conv_bn_relu(x, d(256), d(128), 1, 1, 0)?;
            let x = nb.conv_bn_relu(x, d(128), d(256), 3, 1, 1)?;
            let x = nb.max_pool(x, 2, 2, 0)?;
            // 512-block (5 convs).
            let x = nb.conv_bn_relu(x, d(256), d(512), 3, 1, 1)?;
            let x = nb.conv_bn_relu(x, d(512), d(256), 1, 1, 0)?;
            let x = nb.conv_bn_relu(x, d(256), d(512), 3, 1, 1)?;
            let x = nb.conv_bn_relu(x, d(512), d(256), 1, 1, 0)?;
            let x = nb.conv_bn_relu(x, d(256), d(512), 3, 1, 1)?;
            let x = nb.max_pool(x, 2, 2, 0)?;
            // 1024-block (5 convs).
            let x = nb.conv_bn_relu(x, d(512), d(1024), 3, 1, 1)?;
            let x = nb.conv_bn_relu(x, d(1024), d(512), 1, 1, 0)?;
            let x = nb.conv_bn_relu(x, d(512), d(1024), 3, 1, 1)?;
            let x = nb.conv_bn_relu(x, d(1024), d(512), 1, 1, 0)?;
            nb.conv_bn_relu(x, d(512), d(1024), 3, 1, 1)
        })?;

        // Detection head: two 3×3 convs then the 1×1 predictor.
        let per_anchor = 5 + self.classes; // tx, ty, tw, th, objectness, classes
        let (obj_rows, box_rows) = nb.scoped("head", |nb| -> Result<(NodeId, NodeId)> {
            let h = nb.conv_bn_relu(x, d(1024), d(1024), 3, 1, 1)?;
            let h = nb.conv_bn_relu(h, d(1024), d(1024), 3, 1, 1)?;
            let pred = nb.conv(h, d(1024), self.anchors * per_anchor, 1, 1, 0)?;
            // [b, a·p, g, g] → rows of per-anchor predictions.
            let r3 = nb.g.reshape(pred, [batch * self.anchors, per_anchor, g * g])?;
            let r3 = nb.g.permute3(r3, [0, 2, 1])?; // [b·a, g², p]
            let rows = nb.g.reshape(r3, [cells, per_anchor])?;
            // Objectness uses two pseudo-logits (score, −score) so the
            // fused CE loss applies; boxes+classes regress with MSE.
            let score = nb.g.slice_cols(rows, 4, 1)?;
            let neg = nb.g.scale(score, -1.0)?;
            let obj_rows = nb.g.concat(&[neg, score], 1)?;
            let boxes = nb.g.slice_cols(rows, 0, 4)?;
            let class_scores = nb.g.slice_cols(rows, 5, self.classes)?;
            let box_rows = nb.g.concat(&[boxes, class_scores], 1)?;
            Ok((obj_rows, box_rows))
        })?;

        let obj_loss = nb.g.cross_entropy(obj_rows, obj_labels)?;
        let diff = nb.g.sub(box_rows, box_targets)?;
        let sq = nb.g.mul(diff, diff)?;
        let box_loss = nb.g.mean_all(sq)?;
        let box_loss = nb.g.scale(box_loss, 5.0)?; // YOLO's λ_coord weighting
        let loss = nb.g.add(obj_loss, box_loss)?;

        let graph = nb.g.finish();
        let mut inputs = BTreeMap::new();
        inputs.insert("images".to_string(), images);
        inputs.insert("obj_labels".to_string(), obj_labels);
        inputs.insert("box_targets".to_string(), box_targets);
        let mut outputs = BTreeMap::new();
        outputs.insert("obj_loss".to_string(), obj_loss);
        outputs.insert("box_loss".to_string(), box_loss);
        outputs.insert("loss".to_string(), loss);
        Ok(BuiltModel { graph, batch, inputs, outputs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::Session;
    use tbd_tensor::Tensor;

    #[test]
    fn full_yolo_has_darknet19_structure() {
        let model = YoloConfig::full().build(1).unwrap();
        let convs = model
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, tbd_graph::Op::Conv2d(_)))
            .count();
        // Darknet-19's 18 feature convs (its 19th is the classification
        // head YOLO replaces) plus the 3-conv detection head.
        assert_eq!(convs, 18 + 3);
        // Darknet-19 ≈ 20 M parameters plus head.
        let params = model.graph.param_count();
        assert!((15_000_000..60_000_000).contains(&params), "{params}");
        assert_eq!(YoloConfig::full().grid(), 13);
    }

    #[test]
    fn tiny_yolo_trains_one_step() {
        let cfg = YoloConfig::tiny();
        let b = 1;
        let model = cfg.build(b).unwrap();
        let cells = b * cfg.anchors * cfg.grid() * cfg.grid();
        let loss = model.loss();
        let feeds = vec![
            (
                model.input("images").unwrap(),
                Tensor::from_fn([b, 3, 64, 64], |i| ((i % 23) as f32 - 11.0) * 0.05),
            ),
            (
                model.input("obj_labels").unwrap(),
                Tensor::from_fn([cells], |i| (i % 2) as f32),
            ),
            (
                model.input("box_targets").unwrap(),
                Tensor::zeros([cells, 4 + cfg.classes]),
            ),
        ];
        let mut session = Session::new(model.graph, 23);
        let run = session.forward(&feeds).unwrap();
        assert!(run.scalar(loss).unwrap().is_finite());
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        assert!(grads.global_norm(session.graph()) > 0.0);
    }

    #[test]
    fn single_shot_is_cheaper_per_image_than_two_stage() {
        // YOLO's motivation in the paper: faster than Faster R-CNN. Verify
        // the kernel stream carries fewer FLOPs per image.
        use tbd_graph::lower::lower_training_iteration;
        let yolo = YoloConfig::full().build(1).unwrap();
        let rcnn = crate::faster_rcnn::FasterRcnnConfig::full().build().unwrap();
        let flops = |m: &BuiltModel| -> f64 {
            lower_training_iteration(&m.graph).iter().map(|k| k.spec.flops).sum()
        };
        assert!(flops(&yolo) < flops(&rcnn), "YOLO must be cheaper per image");
    }
}
