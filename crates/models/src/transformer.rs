//! Transformer (Vaswani et al. 2017), the paper's attention-based
//! translation workload. 6 encoder + 6 decoder blocks (12 layers, Table 2),
//! d_model 512, 8 heads, feed-forward 2048, trained on IWSLT15 with the
//! mini-batch measured in **tokens** (the paper sweeps 64…4096 in Fig. 4d).
//!
//! Layout convention: token rows are in `(batch, time)` order so a sentence
//! is a contiguous block reshapeable to `[batch, steps, d_model]`.

use crate::nn::{transformer_block, NetBuilder};
use crate::BuiltModel;
use std::collections::BTreeMap;
use tbd_graph::{Init, Result};

/// Configuration of the Transformer translator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Encoder blocks.
    pub enc_blocks: usize,
    /// Decoder blocks.
    pub dec_blocks: usize,
    /// Sentence length in tokens.
    pub steps: usize,
}

impl TransformerConfig {
    /// Paper-scale base Transformer.
    pub fn full() -> Self {
        TransformerConfig {
            vocab: 17_188,
            d_model: 512,
            heads: 8,
            d_ff: 2048,
            enc_blocks: 6,
            dec_blocks: 6,
            steps: 25,
        }
    }

    /// Miniature for functional tests.
    pub fn tiny() -> Self {
        TransformerConfig { vocab: 11, d_model: 16, heads: 2, d_ff: 32, enc_blocks: 1, dec_blocks: 1, steps: 6 }
    }

    /// Total blocks (the paper's Table 2 quotes 12 layers).
    pub fn blocks(&self) -> usize {
        self.enc_blocks + self.dec_blocks
    }

    /// Builds the graph for a token-denominated mini-batch: `tokens` is
    /// rounded down to a whole number of `steps`-long sentences (≥ 1).
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build_tokens(&self, tokens: usize) -> Result<BuiltModel> {
        let sentences = (tokens / self.steps).max(1);
        self.build(sentences)
    }

    /// Builds the graph for `batch` sentence pairs.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build(&self, batch: usize) -> Result<BuiltModel> {
        let (b, t, d) = (batch, self.steps, self.d_model);
        let rows = b * t;
        let mut nb = NetBuilder::new();
        let src = nb.g.input("src", [rows]);
        let tgt_in = nb.g.input("tgt_in", [rows]);
        let tgt_out = nb.g.input("tgt_out", [rows]);

        let embed_name = nb.fresh("embed");
        let embedding =
            nb.g.parameter(&embed_name, [self.vocab, d], Init::Uniform { lo: -0.05, hi: 0.05 });
        let pos_name = nb.fresh("pos");
        // Learned positional embedding broadcast over the batch via an
        // explicit [rows, d] parameter at tiny scale would waste memory at
        // full scale, so positions are a [t·?]-independent [rows, d] add
        // using a [t, d] table tiled through reshape is not expressible;
        // we use a full [rows, d] learned positional table, matching the
        // memory behaviour of the broadcasted original.
        let pos = nb.g.parameter(&pos_name, [rows, d], Init::Uniform { lo: -0.05, hi: 0.05 });

        // ---- Encoder ----
        let src_emb = nb.g.embedding(embedding, src)?;
        let src_emb = nb.g.add(src_emb, pos)?;
        let mut enc = src_emb;
        for i in 0..self.enc_blocks {
            enc = nb.scoped(&format!("enc{i}"), |nb| {
                transformer_block(nb, enc, None, b, t, d, self.heads, self.d_ff)
            })?;
        }

        // ---- Decoder ----
        let tgt_emb = nb.g.embedding(embedding, tgt_in)?;
        let tgt_emb = nb.g.add(tgt_emb, pos)?;
        let mut dec = tgt_emb;
        for i in 0..self.dec_blocks {
            dec = nb.scoped(&format!("dec{i}"), |nb| {
                transformer_block(nb, dec, Some((enc, t)), b, t, d, self.heads, self.d_ff)
            })?;
        }

        let logits = nb.scoped("proj", |nb| nb.dense(dec, d, self.vocab))?;
        let loss = nb.g.cross_entropy(logits, tgt_out)?;

        let graph = nb.g.finish();
        let mut inputs = BTreeMap::new();
        inputs.insert("src".to_string(), src);
        inputs.insert("tgt_in".to_string(), tgt_in);
        inputs.insert("tgt_out".to_string(), tgt_out);
        let mut outputs = BTreeMap::new();
        outputs.insert("logits".to_string(), logits);
        outputs.insert("loss".to_string(), loss);
        Ok(BuiltModel { graph, batch: b * t, inputs, outputs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::Session;
    use tbd_tensor::Tensor;

    #[test]
    fn full_config_matches_table2() {
        let cfg = TransformerConfig::full();
        assert_eq!(cfg.blocks(), 12);
        assert_eq!(cfg.heads, 8);
    }

    #[test]
    fn token_batches_round_to_sentences() {
        let cfg = TransformerConfig::full();
        let m = cfg.build_tokens(1024).unwrap();
        assert_eq!(m.batch, (1024 / 25) * 25);
        // Even tiny token budgets build at least one sentence.
        let m = cfg.build_tokens(8).unwrap();
        assert_eq!(m.batch, 25);
    }

    #[test]
    fn tiny_transformer_trains_one_step() {
        let cfg = TransformerConfig::tiny();
        let model = cfg.build(2).unwrap();
        let rows = 2 * cfg.steps;
        let ids = |off: usize| Tensor::from_fn([rows], move |i| ((i + off) % cfg.vocab) as f32);
        let loss = model.loss();
        let src = model.input("src").unwrap();
        let tgt_in = model.input("tgt_in").unwrap();
        let tgt_out = model.input("tgt_out").unwrap();
        let mut session = Session::new(model.graph, 33);
        let run = session
            .forward(&[(src, ids(0)), (tgt_in, ids(3)), (tgt_out, ids(4))])
            .unwrap();
        let l = run.scalar(loss).unwrap();
        assert!(l.is_finite() && l > 0.0);
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        assert!(grads.global_norm(session.graph()) > 0.0);
    }

    #[test]
    fn full_transformer_is_attention_heavy() {
        let model = TransformerConfig::full().build(8).unwrap();
        // 12 blocks × 8 heads × 2 batched matmuls each, plus cross-attention.
        let bmm = model
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, tbd_graph::Op::BatchMatMul))
            .count();
        assert!(bmm >= 12 * 8 * 2, "got {bmm} batched matmuls");
        // Base transformer: ≈ 44 M with a 17 k vocab + positional table.
        assert!(model.graph.param_count() > 35_000_000);
    }
}
