//! Inception-v3 (Szegedy et al. 2016), the paper's second image
//! classification workload.
//!
//! The full configuration follows the published architecture: stem,
//! 3× Inception-A (35×35), grid reduction, 4× Inception-B with factorised
//! 7×1/1×7 convolutions (17×17), grid reduction, 2× Inception-C (8×8),
//! global average pooling and a 1000-way classifier — ≈23.8 M parameters
//! and 42 weighted layers along the deepest path (paper Table 2).

use crate::nn::NetBuilder;
use crate::BuiltModel;
use std::collections::BTreeMap;
use tbd_graph::{NodeId, Result};

/// Configuration of the Inception-v3 classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InceptionConfig {
    /// Input image side (299 at paper scale).
    pub image: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Channel divisor applied to every branch (1 at paper scale; larger
    /// values shrink the network for functional tests).
    pub ch_div: usize,
    /// Blocks per Inception stage `(a, b, c)`.
    pub blocks: (usize, usize, usize),
}

impl InceptionConfig {
    /// Paper-scale Inception-v3 (299×299 ImageNet, 1000 classes).
    pub fn full() -> Self {
        InceptionConfig { image: 299, classes: 1000, ch_div: 1, blocks: (3, 4, 2) }
    }

    /// Miniature for functional tests.
    pub fn tiny() -> Self {
        InceptionConfig { image: 79, classes: 6, ch_div: 16, blocks: (1, 1, 1) }
    }

    /// Scales a paper-scale channel count by the configured divisor.
    fn c(&self, n: usize) -> usize {
        (n / self.ch_div).max(2)
    }

    /// Builds the classifier graph for a mini-batch of `batch` images.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build(&self, batch: usize) -> Result<BuiltModel> {
        let mut nb = NetBuilder::new();
        let images = nb.g.input("images", [batch, 3, self.image, self.image]);
        let labels = nb.g.input("labels", [batch]);

        // Stem: 299 → 35 spatial, 192 channels (at full scale).
        let d = |n: usize| self.c(n);
        let (mut x, mut c) = nb.scoped("stem", |nb| -> Result<(NodeId, usize)> {
            let x = nb.conv_bn_relu(images, 3, d(32), 3, 2, 0)?; // 149
            let x = nb.conv_bn_relu(x, d(32), d(32), 3, 1, 0)?; // 147
            let x = nb.conv_bn_relu(x, d(32), d(64), 3, 1, 1)?; // 147
            let x = nb.max_pool(x, 3, 2, 0)?; // 73
            let x = nb.conv_bn_relu(x, d(64), d(80), 1, 1, 0)?;
            let x = nb.conv_bn_relu(x, d(80), d(192), 3, 1, 0)?; // 71
            let x = nb.max_pool(x, 3, 2, 0)?; // 35
            Ok((x, d(192)))
        })?;

        // Inception-A blocks at 35×35.
        let pool_c = [32, 64, 64];
        for i in 0..self.blocks.0 {
            let label = format!("mixed_a{i}");
            let pc = d(pool_c[i.min(2)]);
            (x, c) = nb.scoped(&label, |nb| inception_a(nb, x, c, pc, &d))?;
        }
        // Grid reduction A: 35 → 17.
        (x, c) = nb.scoped("reduction_a", |nb| reduction_a(nb, x, c, &d))?;
        // Inception-B blocks at 17×17 with factorised 7×7 branches.
        let c7s = [128, 160, 160, 192];
        for i in 0..self.blocks.1 {
            let label = format!("mixed_b{i}");
            let c7 = d(c7s[i.min(3)]);
            (x, c) = nb.scoped(&label, |nb| inception_b(nb, x, c, c7, &d))?;
        }
        // Grid reduction B: 17 → 8.
        (x, c) = nb.scoped("reduction_b", |nb| reduction_b(nb, x, c, &d))?;
        // Inception-C blocks at 8×8.
        for i in 0..self.blocks.2 {
            let label = format!("mixed_c{i}");
            (x, c) = nb.scoped(&label, |nb| inception_c(nb, x, c, &d))?;
        }

        let pooled = nb.g.global_avg_pool(x)?;
        let dropped = nb.g.dropout(pooled, 0.2)?;
        let logits = nb.scoped("fc", |nb| nb.dense(dropped, c, self.classes))?;
        let loss = nb.g.cross_entropy(logits, labels)?;
        let graph = nb.g.finish();
        let mut inputs = BTreeMap::new();
        inputs.insert("images".to_string(), images);
        inputs.insert("labels".to_string(), labels);
        let mut outputs = BTreeMap::new();
        outputs.insert("logits".to_string(), logits);
        outputs.insert("loss".to_string(), loss);
        Ok(BuiltModel { graph, batch, inputs, outputs })
    }
}

/// Inception-A: 1×1, 5×5, double-3×3 and pooled 1×1 branches.
fn inception_a(
    nb: &mut NetBuilder,
    x: NodeId,
    in_c: usize,
    pool_c: usize,
    d: &dyn Fn(usize) -> usize,
) -> Result<(NodeId, usize)> {
    let b1 = nb.conv_bn_relu(x, in_c, d(64), 1, 1, 0)?;
    let b5 = nb.conv_bn_relu(x, in_c, d(48), 1, 1, 0)?;
    let b5 = nb.conv_bn_relu(b5, d(48), d(64), 5, 1, 2)?;
    let b3 = nb.conv_bn_relu(x, in_c, d(64), 1, 1, 0)?;
    let b3 = nb.conv_bn_relu(b3, d(64), d(96), 3, 1, 1)?;
    let b3 = nb.conv_bn_relu(b3, d(96), d(96), 3, 1, 1)?;
    let bp = nb.avg_pool(x, 3, 1, 1)?;
    let bp = nb.conv_bn_relu(bp, in_c, pool_c, 1, 1, 0)?;
    let out = nb.g.concat(&[b1, b5, b3, bp], 1)?;
    Ok((out, d(64) + d(64) + d(96) + pool_c))
}

/// Grid reduction A: strided 3×3, strided double-3×3 and max-pool branches.
fn reduction_a(
    nb: &mut NetBuilder,
    x: NodeId,
    in_c: usize,
    d: &dyn Fn(usize) -> usize,
) -> Result<(NodeId, usize)> {
    let b3 = nb.conv_bn_relu(x, in_c, d(384), 3, 2, 0)?;
    let bd = nb.conv_bn_relu(x, in_c, d(64), 1, 1, 0)?;
    let bd = nb.conv_bn_relu(bd, d(64), d(96), 3, 1, 1)?;
    let bd = nb.conv_bn_relu(bd, d(96), d(96), 3, 2, 0)?;
    let bp = nb.max_pool(x, 3, 2, 0)?;
    let out = nb.g.concat(&[b3, bd, bp], 1)?;
    Ok((out, d(384) + d(96) + in_c))
}

/// Inception-B: factorised 7×7 branches (1×7 then 7×1) at 17×17, with
/// asymmetric padding keeping the grid size.
fn inception_b(
    nb: &mut NetBuilder,
    x: NodeId,
    in_c: usize,
    c7: usize,
    d: &dyn Fn(usize) -> usize,
) -> Result<(NodeId, usize)> {
    let b1 = nb.conv_bn_relu(x, in_c, d(192), 1, 1, 0)?;
    let b7 = nb.conv_bn_relu(x, in_c, c7, 1, 1, 0)?;
    let b7 = nb.conv_rect_bn_relu(b7, c7, c7, (1, 7), 1, (0, 3))?;
    let b7 = nb.conv_rect_bn_relu(b7, c7, d(192), (7, 1), 1, (3, 0))?;
    let bd = nb.conv_bn_relu(x, in_c, c7, 1, 1, 0)?;
    let bd = nb.conv_rect_bn_relu(bd, c7, c7, (7, 1), 1, (3, 0))?;
    let bd = nb.conv_rect_bn_relu(bd, c7, c7, (1, 7), 1, (0, 3))?;
    let bd = nb.conv_rect_bn_relu(bd, c7, c7, (7, 1), 1, (3, 0))?;
    let bd = nb.conv_rect_bn_relu(bd, c7, d(192), (1, 7), 1, (0, 3))?;
    let bp = nb.avg_pool(x, 3, 1, 1)?;
    let bp = nb.conv_bn_relu(bp, in_c, d(192), 1, 1, 0)?;
    let out = nb.g.concat(&[b1, b7, bd, bp], 1)?;
    Ok((out, d(192) * 4))
}

/// Grid reduction B: 17 → 8.
fn reduction_b(
    nb: &mut NetBuilder,
    x: NodeId,
    in_c: usize,
    d: &dyn Fn(usize) -> usize,
) -> Result<(NodeId, usize)> {
    let b3 = nb.conv_bn_relu(x, in_c, d(192), 1, 1, 0)?;
    let b3 = nb.conv_bn_relu(b3, d(192), d(320), 3, 2, 0)?;
    let b7 = nb.conv_bn_relu(x, in_c, d(192), 1, 1, 0)?;
    let b7 = nb.conv_rect_bn_relu(b7, d(192), d(192), (1, 7), 1, (0, 3))?;
    let b7 = nb.conv_rect_bn_relu(b7, d(192), d(192), (7, 1), 1, (3, 0))?;
    let b7 = nb.conv_bn_relu(b7, d(192), d(192), 3, 2, 0)?;
    let bp = nb.max_pool(x, 3, 2, 0)?;
    let out = nb.g.concat(&[b3, b7, bp], 1)?;
    Ok((out, d(320) + d(192) + in_c))
}

/// Inception-C: expanded 1×3/3×1 fan-out branches at 8×8.
fn inception_c(
    nb: &mut NetBuilder,
    x: NodeId,
    in_c: usize,
    d: &dyn Fn(usize) -> usize,
) -> Result<(NodeId, usize)> {
    let b1 = nb.conv_bn_relu(x, in_c, d(320), 1, 1, 0)?;
    let b3 = nb.conv_bn_relu(x, in_c, d(384), 1, 1, 0)?;
    let b3a = nb.conv_rect_bn_relu(b3, d(384), d(384), (1, 3), 1, (0, 1))?;
    let b3b = nb.conv_rect_bn_relu(b3, d(384), d(384), (3, 1), 1, (1, 0))?;
    let bd = nb.conv_bn_relu(x, in_c, d(448), 1, 1, 0)?;
    let bd = nb.conv_bn_relu(bd, d(448), d(384), 3, 1, 1)?;
    let bda = nb.conv_rect_bn_relu(bd, d(384), d(384), (1, 3), 1, (0, 1))?;
    let bdb = nb.conv_rect_bn_relu(bd, d(384), d(384), (3, 1), 1, (1, 0))?;
    let bp = nb.avg_pool(x, 3, 1, 1)?;
    let bp = nb.conv_bn_relu(bp, in_c, d(192), 1, 1, 0)?;
    let out = nb.g.concat(&[b1, b3a, b3b, bda, bdb, bp], 1)?;
    Ok((out, d(320) + d(384) * 4 + d(192)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::Session;
    use tbd_tensor::Tensor;

    #[test]
    fn full_inception_parameter_count() {
        let model = InceptionConfig::full().build(1).unwrap();
        let params = model.graph.param_count();
        // Torchvision inception_v3 (without aux head): ≈23.8 M.
        assert!(
            (21_000_000..26_500_000).contains(&params),
            "Inception-v3 has {params} parameters"
        );
    }

    #[test]
    fn full_inception_ends_at_2048_channels() {
        let model = InceptionConfig::full().build(2).unwrap();
        let logits = model.output("logits").unwrap();
        assert_eq!(model.graph.node(logits).shape.dims(), &[2, 1000]);
    }

    #[test]
    fn tiny_inception_trains_one_step() {
        let model = InceptionConfig::tiny().build(1).unwrap();
        let images = model.input("images").unwrap();
        let labels = model.input("labels").unwrap();
        let loss = model.loss();
        let mut session = Session::new(model.graph, 3);
        let run = session
            .forward(&[
                (images, Tensor::from_fn([1, 3, 79, 79], |i| ((i % 23) as f32 - 11.0) * 0.04)),
                (labels, Tensor::from_slice(&[2.0])),
            ])
            .unwrap();
        assert!(run.scalar(loss).unwrap().is_finite());
        let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
        assert!(grads.global_norm(session.graph()) > 0.0);
    }
}
