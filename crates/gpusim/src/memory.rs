//! Device memory accounting with the paper's five allocation categories.
//!
//! The paper's memory profiler (§3.4.3) classifies every allocation as
//! weights, weight gradients, feature maps, workspace or "dynamic"
//! (allocations made *during* iterations, e.g. MXNet momentum buffers) and
//! reports the peak of each. [`DeviceMemory`] reproduces that accounting
//! and enforces the device capacity, so over-large mini-batches fail with
//! [`OutOfMemory`] exactly where the paper reports infeasible
//! configurations.

use std::error::Error;
use std::fmt;
use std::sync::Arc;
use tbd_graph::trace::{EventKind, TraceEvent, TraceLayer, TraceRecorder};

/// Chrome-trace track used for memory events within the gpusim layer.
const MEMORY_TRACK: u32 = 2;

/// Allocation category tracked by the memory profiler (paper Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryCategory {
    /// Model weights.
    Weights,
    /// Weight gradients.
    WeightGrads,
    /// Feature maps (stashed activations and auxiliary buffers).
    FeatureMaps,
    /// Kernel scratch workspace.
    Workspace,
    /// Allocations made during training iterations (momentum, temporaries).
    Dynamic,
}

impl MemoryCategory {
    /// All categories in the order the paper plots them.
    pub const ALL: [MemoryCategory; 5] = [
        MemoryCategory::FeatureMaps,
        MemoryCategory::Weights,
        MemoryCategory::WeightGrads,
        MemoryCategory::Dynamic,
        MemoryCategory::Workspace,
    ];

    fn index(self) -> usize {
        match self {
            MemoryCategory::FeatureMaps => 0,
            MemoryCategory::Weights => 1,
            MemoryCategory::WeightGrads => 2,
            MemoryCategory::Dynamic => 3,
            MemoryCategory::Workspace => 4,
        }
    }
}

impl fmt::Display for MemoryCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryCategory::FeatureMaps => "feature maps",
            MemoryCategory::Weights => "weights",
            MemoryCategory::WeightGrads => "weight gradients",
            MemoryCategory::Dynamic => "dynamic",
            MemoryCategory::Workspace => "workspace",
        };
        f.write_str(s)
    }
}

/// Returned when an allocation exceeds the device capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes the allocation requested.
    pub requested: u64,
    /// Bytes still available on the device.
    pub available: u64,
    /// Category of the failing allocation.
    pub category: MemoryCategory,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: {} allocation of {} bytes exceeds {} available",
            self.category, self.requested, self.available
        )
    }
}

impl Error for OutOfMemory {}

/// Peak memory usage per category, as the paper's profiler reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryBreakdown {
    peaks: [u64; 5],
}

impl MemoryBreakdown {
    /// Peak bytes ever allocated in `category`.
    pub fn peak(&self, category: MemoryCategory) -> u64 {
        self.peaks[category.index()]
    }

    /// Sum of all per-category peaks.
    pub fn total(&self) -> u64 {
        self.peaks.iter().sum()
    }

    /// Fraction of the total footprint held by feature maps
    /// (the paper's Observation 11 reports 62–89 %).
    pub fn feature_map_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.peak(MemoryCategory::FeatureMaps) as f64 / self.total() as f64
        }
    }
}

/// A capacity-enforcing device-memory account.
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    capacity: u64,
    current: [u64; 5],
    peaks: [u64; 5],
    /// Shared trace sink; every alloc/free — **including failing
    /// allocations** — is emitted as an instant event so traces explain
    /// OOMs (the paper's profiler reports exactly which category blew the
    /// budget).
    tracer: Option<Arc<TraceRecorder>>,
    /// Logical event clock: allocator events have no duration, so they are
    /// sequenced by a deterministic counter instead of wall time.
    seq: u64,
}

impl DeviceMemory {
    /// Creates an empty account with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory { capacity, current: [0; 5], peaks: [0; 5], tracer: None, seq: 0 }
    }

    /// Attaches a shared trace recorder; subsequent allocator activity is
    /// emitted as deterministic instant events on the memory track.
    pub fn set_tracer(&mut self, tracer: Option<Arc<TraceRecorder>>) {
        self.tracer = tracer;
    }

    fn emit(&mut self, kind: EventKind, category: MemoryCategory, bytes: u64) {
        let Some(tracer) = &self.tracer else { return };
        let at = self.seq as f64;
        self.seq += 1;
        let used = self.used();
        tracer.record(
            TraceEvent::instant(category.to_string(), TraceLayer::GpuSim, kind, at)
                .on_track(MEMORY_TRACK)
                .with_arg("bytes", bytes)
                .with_arg("used", used)
                .with_arg("available", self.capacity - used),
        );
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated across all categories.
    pub fn used(&self) -> u64 {
        self.current.iter().sum()
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Allocates `bytes` in `category`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the allocation would exceed capacity;
    /// the account is left unchanged in that case.
    pub fn alloc(&mut self, category: MemoryCategory, bytes: u64) -> Result<(), OutOfMemory> {
        if bytes > self.available() {
            // Previously the OOM path returned without recording anything,
            // so a trace of a failed run ended silently mid-allocation.
            // Emit the failing request before erroring out.
            self.emit(EventKind::AllocFail, category, bytes);
            return Err(OutOfMemory { requested: bytes, available: self.available(), category });
        }
        let i = category.index();
        self.current[i] += bytes;
        self.peaks[i] = self.peaks[i].max(self.current[i]);
        self.emit(EventKind::Alloc, category, bytes);
        Ok(())
    }

    /// Releases `bytes` from `category` (saturating).
    pub fn free(&mut self, category: MemoryCategory, bytes: u64) {
        let i = category.index();
        self.current[i] = self.current[i].saturating_sub(bytes);
        self.emit(EventKind::Free, category, bytes);
    }

    /// Snapshot of the per-category peaks.
    pub fn breakdown(&self) -> MemoryBreakdown {
        MemoryBreakdown { peaks: self.peaks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_and_peaks() {
        let mut m = DeviceMemory::new(1000);
        m.alloc(MemoryCategory::Weights, 300).unwrap();
        m.alloc(MemoryCategory::FeatureMaps, 500).unwrap();
        m.free(MemoryCategory::FeatureMaps, 200);
        m.alloc(MemoryCategory::FeatureMaps, 100).unwrap();
        let b = m.breakdown();
        assert_eq!(b.peak(MemoryCategory::Weights), 300);
        assert_eq!(b.peak(MemoryCategory::FeatureMaps), 500);
        assert_eq!(m.used(), 700);
    }

    #[test]
    fn oom_is_reported_and_state_unchanged() {
        let mut m = DeviceMemory::new(100);
        m.alloc(MemoryCategory::Weights, 80).unwrap();
        let err = m.alloc(MemoryCategory::FeatureMaps, 30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.available, 20);
        assert_eq!(m.used(), 80);
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn free_saturates() {
        let mut m = DeviceMemory::new(100);
        m.alloc(MemoryCategory::Dynamic, 10).unwrap();
        m.free(MemoryCategory::Dynamic, 50);
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn feature_map_fraction() {
        let mut m = DeviceMemory::new(1000);
        m.alloc(MemoryCategory::FeatureMaps, 700).unwrap();
        m.alloc(MemoryCategory::Weights, 150).unwrap();
        m.alloc(MemoryCategory::WeightGrads, 150).unwrap();
        let f = m.breakdown().feature_map_fraction();
        assert!((f - 0.7).abs() < 1e-9);
        assert_eq!(MemoryBreakdown::default().feature_map_fraction(), 0.0);
    }

    #[test]
    fn allocator_events_cover_alloc_free_and_the_oom_path() {
        // Regression: the OOM path used to record no event at all, so a
        // trace of a failed run gave no clue which allocation blew the
        // budget. The failing request must appear as an AllocFail event
        // carrying the requested size and the bytes that were available.
        let tracer = TraceRecorder::shared();
        let mut m = DeviceMemory::new(100);
        m.set_tracer(Some(Arc::clone(&tracer)));
        m.alloc(MemoryCategory::Weights, 60).unwrap();
        m.free(MemoryCategory::Weights, 10);
        let err = m.alloc(MemoryCategory::FeatureMaps, 80).unwrap_err();
        assert_eq!(err.requested, 80);
        let events = tracer.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Alloc);
        assert_eq!(events[1].kind, EventKind::Free);
        let fail = &events[2];
        assert_eq!(fail.kind, EventKind::AllocFail);
        assert_eq!(fail.name, "feature maps");
        assert!(fail.args.contains(&("bytes", 80u64.into())));
        assert!(fail.args.contains(&("available", 50u64.into())));
        assert!(fail.deterministic, "allocator events are logically timed");
        // Events are sequenced by the logical clock, in program order.
        assert!(events.windows(2).all(|w| w[0].start_us < w[1].start_us));
    }

    #[test]
    fn untraced_account_emits_nothing_and_still_errors() {
        let mut m = DeviceMemory::new(10);
        assert!(m.alloc(MemoryCategory::Dynamic, 20).is_err());
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn categories_display() {
        assert_eq!(MemoryCategory::FeatureMaps.to_string(), "feature maps");
        assert_eq!(MemoryCategory::ALL.len(), 5);
    }
}
