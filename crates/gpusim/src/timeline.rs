//! Iteration-level execution simulation.
//!
//! Replays a lowered kernel stream against the launch/driver pipeline of a
//! framework profile: the CPU enqueues kernels one launch-overhead apart and
//! the GPU drains them in order. When kernels are shorter than the launch
//! overhead the GPU starves — the mechanism behind the paper's low GPU
//! utilisation for LSTM models (Observation 5). The result carries every
//! metric of the paper's toolchain (§3.4.3): throughput inputs (wall time),
//! GPU compute utilisation (Eq. 1), FP32 utilisation (Eq. 2), CPU
//! utilisation (Eq. 3) and an nvprof-style per-kernel trace.

use crate::timing::{instruction_factor, kernel_timing_memoized, Bound};
use crate::{CpuSpec, GpuSpec};
use std::collections::HashMap;
use tbd_graph::fuse::intern_name;
use tbd_graph::lower::LoweredKernel;
use tbd_graph::trace::{EventKind, TraceEvent, TraceLayer, TraceRecorder};
use tbd_graph::{KernelClass, NodeId, Phase};
use tbd_tensor::Precision;

/// Chrome-trace track for CPU-side kernel launches within the gpusim layer.
const LAUNCH_TRACK: u32 = 0;
/// Chrome-trace track for the simulated GPU stream.
const GPU_TRACK: u32 = 1;

/// Framework-dependent execution parameters (one per framework profile).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionParams {
    /// CPU time to enqueue one kernel (driver + framework dispatch).
    pub launch_overhead_s: f64,
    /// Per-kernel scheduling gap on the GPU's critical path: the framework
    /// work (dependency resolution, op dispatch) that keeps the device idle
    /// between consecutive kernels. This is what starves the GPU on
    /// workloads made of many tiny kernels (paper Observation 5).
    pub sync_gap_s: f64,
    /// Per-iteration framework bookkeeping that cannot overlap the GPU
    /// (graph management, optimizer sync, Python frontend).
    pub iteration_overhead_s: f64,
    /// CPU time to produce one mini-batch (decode, augment, collate).
    pub input_pipeline_s: f64,
    /// Fraction of the input pipeline hidden under GPU compute (0–1).
    pub pipeline_overlap: f64,
    /// Average CPU cores active while the input pipeline runs.
    pub pipeline_cores: f64,
    /// CPU cores the framework front-end keeps busy for the whole
    /// iteration (Python interpreter, dependency engine) — the baseline CPU
    /// burn behind the paper's Fig. 7.
    pub background_cores: f64,
    /// Compute-speed multiplier for compute-bound kernels (framework
    /// kernel-library quality; 1.0 = baseline).
    pub compute_speedup: f64,
    /// Storage precision of GEMM/conv operands: at f16/bf16, memory
    /// traffic scales by the storage width and matrix-unit kernels time
    /// against [`GpuSpec::peak_half_flops`] (the speed tier's Tango-style
    /// roofline). [`Precision::F32`] reproduces the baseline bit-for-bit.
    pub precision: Precision,
}

impl Default for ExecutionParams {
    fn default() -> Self {
        ExecutionParams {
            launch_overhead_s: 5e-6,
            sync_gap_s: 4e-6,
            iteration_overhead_s: 1e-3,
            input_pipeline_s: 2e-3,
            pipeline_overlap: 0.9,
            pipeline_cores: 2.0,
            background_cores: 1.0,
            compute_speedup: 1.0,
            precision: Precision::F32,
        }
    }
}

/// One row of the nvprof-style kernel trace.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Graph-op label that generated the kernel.
    pub origin: &'static str,
    /// Graph node that generated the kernel.
    pub node: NodeId,
    /// Kernel family.
    pub class: KernelClass,
    /// Training phase.
    pub phase: Phase,
    /// Duration on the device, in seconds.
    pub duration_s: f64,
    /// Device-clock time at which the kernel finished, in seconds from the
    /// start of the iteration. Gives downstream consumers (the distributed
    /// event engine) per-layer completion times without replaying the
    /// launch/drain schedule.
    pub end_s: f64,
    /// Fraction of FP32 peak achieved while running.
    pub fp32_utilization: f64,
    /// FLOPs executed.
    pub flops: f64,
    /// Which roofline resource bounded the kernel (Eq. 1's denominator:
    /// compute throughput or memory bandwidth).
    pub bound: Bound,
}

/// Simulated metrics of one training iteration.
#[derive(Debug, Clone)]
pub struct IterationProfile {
    /// Wall-clock time of the iteration.
    pub wall_time_s: f64,
    /// Time the GPU had at least one kernel resident (Eq. 1 numerator).
    pub gpu_busy_s: f64,
    /// GPU compute utilisation (Eq. 1).
    pub gpu_utilization: f64,
    /// FP32 utilisation over the GPU's busy time (Eq. 2).
    pub fp32_utilization: f64,
    /// Average CPU utilisation across all cores (Eq. 3).
    pub cpu_utilization: f64,
    /// Total FP32 operations executed.
    pub total_flops: f64,
    /// Peak workspace requested by any kernel, in bytes.
    pub peak_workspace_bytes: u64,
    /// Per-kernel trace in execution order.
    pub records: Vec<KernelRecord>,
}

impl IterationProfile {
    /// Training throughput in samples per second for a mini-batch of
    /// `batch` inputs.
    pub fn throughput(&self, batch: usize) -> f64 {
        batch as f64 / self.wall_time_s
    }

    /// Device time split by roofline verdict: `(compute_bound_s,
    /// memory_bound_s)` summed over all kernel records.
    pub fn roofline_split(&self) -> (f64, f64) {
        let mut compute = 0.0;
        let mut memory = 0.0;
        for r in &self.records {
            match r.bound {
                Bound::Compute => compute += r.duration_s,
                Bound::Memory => memory += r.duration_s,
            }
        }
        (compute, memory)
    }

    /// Fraction of device-busy time spent in bandwidth-bound kernels, or
    /// `None` when no kernel ran (the guard the diagnosis engine relies on
    /// to never divide by a zero-duration stream).
    pub fn memory_bound_fraction(&self) -> Option<f64> {
        let (compute, memory) = self.roofline_split();
        let total = compute + memory;
        if total > 0.0 && total.is_finite() {
            Some(memory / total)
        } else {
            None
        }
    }
}

/// Simulates one training iteration of `kernels` on `gpu` under the given
/// execution parameters, with `cpu` as the host.
pub fn simulate_iteration(
    kernels: &[LoweredKernel],
    gpu: &GpuSpec,
    cpu: &CpuSpec,
    params: &ExecutionParams,
) -> IterationProfile {
    simulate_iteration_traced(kernels, gpu, cpu, params, None)
}

/// [`simulate_iteration`] with an optional trace sink: each kernel emits a
/// CPU-side [`EventKind::KernelLaunch`] span, a device-resident
/// [`EventKind::KernelExec`] (or [`EventKind::Memcpy`]) span, and a
/// [`EventKind::Sync`] span whenever the device sat idle between kernels —
/// the launch-starvation gaps behind the paper's Observation 5. Simulated
/// times are deterministic and participate bit-exactly in golden digests.
pub fn simulate_iteration_traced(
    kernels: &[LoweredKernel],
    gpu: &GpuSpec,
    cpu: &CpuSpec,
    params: &ExecutionParams,
    tracer: Option<&TraceRecorder>,
) -> IterationProfile {
    let mut cpu_ready = 0.0f64;
    let mut gpu_free = 0.0f64;
    let mut busy = 0.0f64;
    let mut total_flops = 0.0f64;
    let mut counted_flops = 0.0f64;
    let mut peak_workspace = 0u64;
    let mut records = Vec::with_capacity(kernels.len());
    let mut events = Vec::with_capacity(if tracer.is_some() { 3 * kernels.len() + 2 } else { 0 });
    // Event labels are deterministic functions of (origin, class), and
    // origins repeat heavily within a stream — intern each distinct label
    // once instead of formatting per event. Event construction, not the
    // timing model, dominates traced-simulation wall time.
    let mut names: HashMap<(*const u8, KernelClass), (&'static str, &'static str, &'static str)> =
        HashMap::new();
    for k in kernels {
        let launch_start = cpu_ready;
        cpu_ready += params.launch_overhead_s;
        let t = kernel_timing_memoized(&k.spec, gpu, params.compute_speedup, params.precision);
        let start = cpu_ready.max(gpu_free + params.sync_gap_s);
        if tracer.is_some() {
            let (launch_name, exec_name, class_name) = *names
                .entry((k.spec.origin.as_ptr(), k.spec.class))
                .or_insert_with(|| {
                    (
                        intern_name(format!("launch {}", k.spec.origin)),
                        intern_name(format!("{}::{:?}", k.spec.origin, k.spec.class)),
                        intern_name(format!("{:?}", k.spec.class)),
                    )
                });
            events.push(
                TraceEvent::span(
                    launch_name,
                    TraceLayer::GpuSim,
                    EventKind::KernelLaunch,
                    launch_start * 1e6,
                    params.launch_overhead_s * 1e6,
                )
                .on_track(LAUNCH_TRACK)
                .with_arg("phase", k.phase.as_str()),
            );
            // The gap the device spent idle before this kernel: framework
            // scheduling (sync_gap) plus any launch starvation.
            let idle = start - gpu_free;
            if idle > 0.0 && gpu_free > 0.0 {
                events.push(
                    TraceEvent::span(
                        "sync",
                        TraceLayer::GpuSim,
                        EventKind::Sync,
                        gpu_free * 1e6,
                        idle * 1e6,
                    )
                    .on_track(GPU_TRACK),
                );
            }
            let kind = match k.spec.class {
                KernelClass::MemcpyH2D | KernelClass::DataMovement => EventKind::Memcpy,
                _ => EventKind::KernelExec,
            };
            events.push(
                TraceEvent::span(
                    exec_name,
                    TraceLayer::GpuSim,
                    kind,
                    start * 1e6,
                    t.duration_s * 1e6,
                )
                .on_track(GPU_TRACK)
                .with_arg("phase", k.phase.as_str())
                .with_arg("class", class_name)
                .with_arg("flops", k.spec.flops)
                .with_arg("fp32_util", t.fp32_utilization)
                .with_arg("bound", t.bound.as_str()),
            );
        }
        gpu_free = start + t.duration_s;
        busy += t.duration_s;
        total_flops += k.spec.flops;
        counted_flops += k.spec.flops * instruction_factor(k.spec.class);
        peak_workspace = peak_workspace.max(k.spec.workspace_bytes);
        records.push(KernelRecord {
            origin: k.spec.origin,
            node: k.node,
            class: k.spec.class,
            phase: k.phase,
            duration_s: t.duration_s,
            end_s: gpu_free,
            fp32_utilization: t.fp32_utilization,
            flops: k.spec.flops,
            bound: t.bound,
        });
    }
    let exposed_input = params.input_pipeline_s * (1.0 - params.pipeline_overlap);
    let wall = gpu_free + params.iteration_overhead_s + exposed_input;
    if let Some(tr) = tracer {
        if params.iteration_overhead_s > 0.0 {
            events.push(
                TraceEvent::span(
                    "iteration overhead",
                    TraceLayer::GpuSim,
                    EventKind::Phase,
                    gpu_free * 1e6,
                    params.iteration_overhead_s * 1e6,
                )
                .on_track(LAUNCH_TRACK),
            );
        }
        if exposed_input > 0.0 {
            events.push(
                TraceEvent::span(
                    "input pipeline (exposed)",
                    TraceLayer::GpuSim,
                    EventKind::Phase,
                    (gpu_free + params.iteration_overhead_s) * 1e6,
                    exposed_input * 1e6,
                )
                .on_track(LAUNCH_TRACK)
                .with_arg("overlap", params.pipeline_overlap),
            );
        }
        events.push(
            TraceEvent::span("iteration", TraceLayer::GpuSim, EventKind::Iteration, 0.0, wall * 1e6)
                .on_track(GPU_TRACK)
                .with_arg("kernels", kernels.len())
                .with_arg("gpu_busy_us", busy * 1e6),
        );
        tr.record_batch(events);
    }
    let gpu_utilization = if wall > 0.0 { (busy / wall).min(1.0) } else { 0.0 };
    let fp32_utilization =
        if busy > 0.0 { (counted_flops / (gpu.peak_flops() * busy)).min(1.0) } else { 0.0 };
    // CPU-side busy core-seconds: one core drives launches and framework
    // bookkeeping; the input pipeline keeps `pipeline_cores` busy.
    let launch_core_s = kernels.len() as f64 * params.launch_overhead_s;
    let busy_core_s = launch_core_s
        + params.iteration_overhead_s
        + params.input_pipeline_s * params.pipeline_cores
        + params.background_cores * wall;
    let cpu_utilization =
        if wall > 0.0 { (busy_core_s / (wall * cpu.cores as f64)).min(1.0) } else { 0.0 };
    IterationProfile {
        wall_time_s: wall,
        gpu_busy_s: busy,
        gpu_utilization,
        fp32_utilization,
        cpu_utilization,
        total_flops,
        peak_workspace_bytes: peak_workspace,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::{KernelSpec, NodeId};

    fn kern(class: KernelClass, flops: f64, bytes: f64) -> LoweredKernel {
        LoweredKernel {
            node: NodeId::from_index(0),
            phase: Phase::Forward,
            spec: KernelSpec::new(class, flops, bytes, "test"),
        }
    }

    fn setup() -> (GpuSpec, CpuSpec, ExecutionParams) {
        (GpuSpec::quadro_p4000(), CpuSpec::xeon_e5_2680(), ExecutionParams::default())
    }

    #[test]
    fn long_kernels_keep_gpu_busy() {
        let (gpu, cpu, params) = setup();
        let kernels: Vec<_> = (0..100).map(|_| kern(KernelClass::Gemm, 1e10, 1e8)).collect();
        let p = simulate_iteration(&kernels, &gpu, &cpu, &params);
        assert!(p.gpu_utilization > 0.9, "util {}", p.gpu_utilization);
        assert!(p.fp32_utilization > 0.3, "fp32 {}", p.fp32_utilization);
    }

    #[test]
    fn tiny_kernels_starve_gpu() {
        let (gpu, cpu, params) = setup();
        // Per-timestep LSTM element-wise kernels: ~2 µs of work behind a
        // 5 µs launch overhead each.
        let kernels: Vec<_> =
            (0..2000).map(|_| kern(KernelClass::Elementwise, 3e4, 4e5)).collect();
        let p = simulate_iteration(&kernels, &gpu, &cpu, &params);
        assert!(p.gpu_utilization < 0.75, "util {}", p.gpu_utilization);
    }

    #[test]
    fn wall_time_includes_framework_and_pipeline_overheads() {
        let (gpu, cpu, mut params) = setup();
        params.pipeline_overlap = 0.0;
        params.input_pipeline_s = 0.5;
        params.iteration_overhead_s = 0.25;
        let kernels = vec![kern(KernelClass::Gemm, 1e9, 1e7)];
        let p = simulate_iteration(&kernels, &gpu, &cpu, &params);
        assert!(p.wall_time_s > 0.75);
        assert!(p.gpu_utilization < 0.01);
    }

    #[test]
    fn throughput_scales_with_batch() {
        let (gpu, cpu, params) = setup();
        let kernels = vec![kern(KernelClass::Gemm, 1e9, 1e7)];
        let p = simulate_iteration(&kernels, &gpu, &cpu, &params);
        assert!((p.throughput(64) / p.throughput(32) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_utilization_is_low_for_gpu_heavy_work() {
        // Paper Observation 9: CPU utilisation in DNN training is low.
        let (gpu, cpu, params) = setup();
        let kernels: Vec<_> = (0..300).map(|_| kern(KernelClass::Gemm, 5e9, 5e7)).collect();
        let p = simulate_iteration(&kernels, &gpu, &cpu, &params);
        assert!(p.cpu_utilization < 0.15, "cpu util {}", p.cpu_utilization);
    }

    #[test]
    fn records_cover_every_kernel() {
        let (gpu, cpu, params) = setup();
        let kernels: Vec<_> = (0..10).map(|_| kern(KernelClass::Gemm, 1e8, 1e6)).collect();
        let p = simulate_iteration(&kernels, &gpu, &cpu, &params);
        assert_eq!(p.records.len(), 10);
        assert!(p.records.iter().all(|r| r.duration_s > 0.0));
        assert!(p.total_flops > 0.0);
    }

    #[test]
    fn traced_simulation_emits_launch_kernel_and_sync_spans() {
        use tbd_graph::trace::{EventKind, TraceRecorder};
        let (gpu, cpu, params) = setup();
        let kernels: Vec<_> = (0..5).map(|_| kern(KernelClass::Elementwise, 3e4, 4e5)).collect();
        let tracer = TraceRecorder::shared();
        let traced = simulate_iteration_traced(&kernels, &gpu, &cpu, &params, Some(&tracer));
        let untraced = simulate_iteration(&kernels, &gpu, &cpu, &params);
        // Tracing must not perturb the simulation.
        assert_eq!(traced.wall_time_s.to_bits(), untraced.wall_time_s.to_bits());
        let events = tracer.drain();
        let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EventKind::KernelLaunch), 5);
        assert_eq!(count(EventKind::KernelExec), 5);
        assert!(count(EventKind::Sync) > 0, "tiny kernels must show starvation gaps");
        assert_eq!(count(EventKind::Iteration), 1);
        assert!(events.iter().all(|e| e.deterministic), "sim events are deterministic");
        // Device-resident spans never overlap on the GPU track.
        let mut gpu_spans: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::KernelExec | EventKind::Sync))
            .collect();
        gpu_spans.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        assert!(gpu_spans.windows(2).all(|w| w[0].end_us() <= w[1].start_us + 1e-9));
    }

    #[test]
    fn memcpy_kernels_get_memcpy_spans() {
        use tbd_graph::trace::{EventKind, TraceRecorder};
        let (gpu, cpu, params) = setup();
        let kernels = vec![kern(KernelClass::MemcpyH2D, 0.0, 1e6)];
        let tracer = TraceRecorder::shared();
        simulate_iteration_traced(&kernels, &gpu, &cpu, &params, Some(&tracer));
        let events = tracer.drain();
        assert!(events.iter().any(|e| e.kind == EventKind::Memcpy));
        assert!(events.iter().all(|e| e.kind != EventKind::KernelExec));
    }

    #[test]
    fn empty_stream_is_handled() {
        let (gpu, cpu, params) = setup();
        let p = simulate_iteration(&[], &gpu, &cpu, &params);
        assert_eq!(p.gpu_busy_s, 0.0);
        assert_eq!(p.fp32_utilization, 0.0);
        assert!(p.wall_time_s > 0.0);
    }
}
