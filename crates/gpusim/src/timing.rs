//! Roofline kernel timing.
//!
//! A kernel's ideal duration is the larger of its compute time
//! (`flops / (peak · eff_c)`) and its memory time (`bytes / (bw · eff_m)`),
//! to which a per-class *setup* term is added. The setup term models the
//! costs real kernels pay regardless of size — tile quantisation, occupancy
//! ramp-up, launch tail — and is the mechanism behind the paper's central
//! observations: small mini-batches produce short kernels whose setup
//! dominates (low FP32 utilisation, Observations 6–7), and per-timestep
//! RNN kernels never amortise it (Observation 5).

use crate::GpuSpec;
use tbd_graph::{KernelClass, KernelSpec};
use tbd_tensor::Precision;

/// Whether the roofline pinned a kernel against compute or bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Limited by FP32 throughput.
    Compute,
    /// Limited by memory bandwidth.
    Memory,
}

impl Bound {
    /// Stable lowercase label, used as a trace-event argument so the
    /// roofline verdict survives into aggregated metrics and the
    /// diagnosis engine.
    pub fn as_str(self) -> &'static str {
        match self {
            Bound::Compute => "compute",
            Bound::Memory => "memory",
        }
    }
}

/// Result of timing one kernel on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTiming {
    /// Wall-clock duration of the kernel on the device, in seconds.
    pub duration_s: f64,
    /// Fraction of the device's FP32 peak achieved while running.
    pub fp32_utilization: f64,
    /// Which resource bounded the kernel.
    pub bound: Bound,
}

struct ClassParams {
    /// Achievable fraction of FP32 peak for a large kernel.
    compute_eff: f64,
    /// Achievable fraction of memory bandwidth for a large kernel.
    mem_eff: f64,
    /// Size-independent setup cost in seconds.
    setup_s: f64,
    /// nvprof-style instruction multiplier: executed FP32 instructions per
    /// algorithmic FLOP (address math, recomputation, predicated lanes).
    /// Only affects the *reported* FP32 utilisation, never durations.
    instr_factor: f64,
}

/// Per-class efficiency constants, calibrated so that full-scale TBD
/// workloads land in the paper's reported ranges (see
/// `EXPERIMENTS.md`). cuDNN/cuBLAS GEMM-family kernels reach 55–75 % of
/// peak; normalisation and element-wise kernels are bandwidth bound.
fn class_params(class: KernelClass) -> ClassParams {
    use KernelClass::*;
    match class {
        Gemm => ClassParams { compute_eff: 0.45, mem_eff: 0.80, setup_s: 25e-6, instr_factor: 1.2 },
        BatchedGemm => ClassParams { compute_eff: 0.38, mem_eff: 0.80, setup_s: 18e-6, instr_factor: 1.2 },
        ConvForward => ClassParams { compute_eff: 0.70, mem_eff: 0.80, setup_s: 70e-6, instr_factor: 1.4 },
        ConvBackwardData => ClassParams { compute_eff: 0.60, mem_eff: 0.80, setup_s: 85e-6, instr_factor: 1.4 },
        ConvBackwardFilter => ClassParams { compute_eff: 0.52, mem_eff: 0.80, setup_s: 95e-6, instr_factor: 1.4 },
        BatchNormForward => ClassParams { compute_eff: 0.25, mem_eff: 0.55, setup_s: 18e-6, instr_factor: 28.0 },
        BatchNormBackward => ClassParams { compute_eff: 0.25, mem_eff: 0.45, setup_s: 25e-6, instr_factor: 22.0 },
        LayerNormForward => ClassParams { compute_eff: 0.25, mem_eff: 0.55, setup_s: 10e-6, instr_factor: 28.0 },
        LayerNormBackward => ClassParams { compute_eff: 0.25, mem_eff: 0.45, setup_s: 14e-6, instr_factor: 22.0 },
        ActivationForward => ClassParams { compute_eff: 0.30, mem_eff: 0.85, setup_s: 4e-6, instr_factor: 25.0 },
        ActivationBackward => ClassParams { compute_eff: 0.30, mem_eff: 0.80, setup_s: 5e-6, instr_factor: 20.0 },
        Elementwise => ClassParams { compute_eff: 0.30, mem_eff: 0.80, setup_s: 4e-6, instr_factor: 20.0 },
        PoolForward => ClassParams { compute_eff: 0.30, mem_eff: 0.70, setup_s: 6e-6, instr_factor: 5.0 },
        PoolBackward => ClassParams { compute_eff: 0.30, mem_eff: 0.60, setup_s: 8e-6, instr_factor: 5.0 },
        SoftmaxForward => ClassParams { compute_eff: 0.25, mem_eff: 0.60, setup_s: 6e-6, instr_factor: 8.0 },
        SoftmaxBackward => ClassParams { compute_eff: 0.25, mem_eff: 0.60, setup_s: 7e-6, instr_factor: 8.0 },
        EmbeddingForward => ClassParams { compute_eff: 0.10, mem_eff: 0.35, setup_s: 5e-6, instr_factor: 4.0 },
        EmbeddingBackward => ClassParams { compute_eff: 0.10, mem_eff: 0.25, setup_s: 8e-6, instr_factor: 4.0 },
        Reduction => ClassParams { compute_eff: 0.20, mem_eff: 0.70, setup_s: 6e-6, instr_factor: 6.0 },
        DataMovement => ClassParams { compute_eff: 0.10, mem_eff: 0.85, setup_s: 3e-6, instr_factor: 1.0 },
        Dropout => ClassParams { compute_eff: 0.25, mem_eff: 0.70, setup_s: 5e-6, instr_factor: 8.0 },
        OptimizerUpdate => ClassParams { compute_eff: 0.25, mem_eff: 0.80, setup_s: 5e-6, instr_factor: 8.0 },
        MemcpyH2D => ClassParams { compute_eff: 0.10, mem_eff: 1.0, setup_s: 8e-6, instr_factor: 1.0 },
        Communication => ClassParams { compute_eff: 0.10, mem_eff: 1.0, setup_s: 10e-6, instr_factor: 1.0 },
    }
}

/// Minimum duration of any kernel launch on the device.
pub const MIN_KERNEL_S: f64 = 1.5e-6;

/// Times a single kernel on `gpu` with an optional compute-speed multiplier
/// (framework kernel-library quality; 1.0 = baseline cuDNN/cuBLAS).
///
/// Host-to-device copies ([`KernelClass::MemcpyH2D`]) run over the PCIe bus
/// rather than device memory. The reported FP32 utilisation counts
/// *executed* FP32 instructions (nvprof's `flop_count_sp` view), which
/// exceed algorithmic FLOPs by a per-class instruction factor.
pub fn kernel_timing_with_speedup(spec: &KernelSpec, gpu: &GpuSpec, compute_speedup: f64) -> KernelTiming {
    kernel_timing_mixed(spec, gpu, compute_speedup, Precision::F32)
}

/// Whether a kernel class runs on the matrix unit when operands are stored
/// at reduced precision (and therefore times against
/// [`GpuSpec::peak_half_flops`] instead of the FP32 roof).
pub fn is_matrix_class(class: KernelClass) -> bool {
    matches!(
        class,
        KernelClass::Gemm
            | KernelClass::BatchedGemm
            | KernelClass::ConvForward
            | KernelClass::ConvBackwardData
            | KernelClass::ConvBackwardFilter
    )
}

/// Precision-aware roofline timing: the mixed-precision extension of
/// [`kernel_timing_with_speedup`] (which it reproduces bit-for-bit at
/// [`Precision::F32`]).
///
/// At f16/bf16 storage, every kernel's memory traffic scales by the storage
/// width (`bytes_per_elem / 4`, kernel specs quote FP32 bytes), and
/// GEMM-family kernels ([`is_matrix_class`]) additionally time their
/// compute against the matrix-unit roof `half_rate × peak`. Reported
/// utilisation stays a fraction of the *active* compute roof, so the Fig-5
/// FP32-utilisation analysis extends unchanged to reduced precision.
pub fn kernel_timing_mixed(
    spec: &KernelSpec,
    gpu: &GpuSpec,
    compute_speedup: f64,
    precision: Precision,
) -> KernelTiming {
    let p = class_params(spec.class);
    let half = precision != Precision::F32;
    let peak = if half && is_matrix_class(spec.class) {
        gpu.peak_half_flops()
    } else {
        gpu.peak_flops()
    };
    let byte_scale = precision.bytes_per_elem() as f64 / 4.0;
    let t_compute = spec.flops / (peak * p.compute_eff * compute_speedup.max(0.01));
    let t_memory = if spec.class == KernelClass::MemcpyH2D {
        spec.bytes * byte_scale / gpu.bus.bandwidth_bytes
    } else {
        spec.bytes * byte_scale / (gpu.memory_bw_bytes() * p.mem_eff)
    };
    let (t_ideal, bound) = if t_compute >= t_memory {
        (t_compute, Bound::Compute)
    } else {
        (t_memory, Bound::Memory)
    };
    let duration = (t_ideal + p.setup_s).max(MIN_KERNEL_S);
    let counted = spec.flops * p.instr_factor;
    let fp32_utilization = if duration > 0.0 { (counted / (peak * duration)).min(1.0) } else { 0.0 };
    KernelTiming { duration_s: duration, fp32_utilization, bound }
}

/// Times a single kernel on `gpu` at baseline library quality.
pub fn kernel_timing(spec: &KernelSpec, gpu: &GpuSpec) -> KernelTiming {
    kernel_timing_with_speedup(spec, gpu, 1.0)
}

/// Upper bound on entries each thread's roofline memo retains. A model's
/// kernel stream repeats a few hundred distinct (class, flops, bytes)
/// shapes, so the table saturates far below this; the cap only guards a
/// pathological query mix in a long-running `tbd serve` process.
pub const ROOFLINE_MEMO_CAP: usize = 1 << 16;

/// Memo key: (device fingerprint, class, flops bits, bytes bits, speedup
/// bits, precision tag).
type RooflineKey = (u64, KernelClass, u64, u64, u64, u8);

thread_local! {
    static ROOFLINE_MEMO: std::cell::RefCell<std::collections::HashMap<RooflineKey, KernelTiming>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

use std::sync::atomic::{AtomicU64, Ordering};

static MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static MEMO_MISSES: AtomicU64 = AtomicU64::new(0);

/// Memoized [`kernel_timing_mixed`]: identical result bit for bit, but a
/// repeated (device, class, flops, bytes, speedup, precision) key is
/// answered from a per-thread roofline table instead of recomputed — the
/// per-kernel cache behind `tbd serve`'s hot query path, where the same
/// model's kernel stream is timed over and over. The table is
/// thread-local, so worker counts never race on it and can never be
/// observed through it.
pub fn kernel_timing_memoized(
    spec: &KernelSpec,
    gpu: &GpuSpec,
    compute_speedup: f64,
    precision: Precision,
) -> KernelTiming {
    // F16 and Bf16 share storage width and the matrix roof, so they share
    // memo entries; F32 gets tag 0 (the exact-baseline path).
    let tag = if precision == Precision::F32 { 0 } else { precision.bytes_per_elem() as u8 };
    let key = (
        gpu.fingerprint(),
        spec.class,
        spec.flops.to_bits(),
        spec.bytes.to_bits(),
        compute_speedup.to_bits(),
        tag,
    );
    ROOFLINE_MEMO.with(|memo| {
        let mut memo = memo.borrow_mut();
        if let Some(&t) = memo.get(&key) {
            MEMO_HITS.fetch_add(1, Ordering::Relaxed);
            return t;
        }
        MEMO_MISSES.fetch_add(1, Ordering::Relaxed);
        let t = kernel_timing_mixed(spec, gpu, compute_speedup, precision);
        if memo.len() < ROOFLINE_MEMO_CAP {
            memo.insert(key, t);
        }
        t
    })
}

/// Process-wide (hits, misses) counters of the memoized roofline table,
/// summed across threads. Diagnostics only — never part of any digest.
pub fn roofline_memo_stats() -> (u64, u64) {
    (MEMO_HITS.load(Ordering::Relaxed), MEMO_MISSES.load(Ordering::Relaxed))
}

/// The nvprof-style executed-instruction multiplier for a kernel class
/// (used to aggregate iteration-level FP32 utilisation).
pub fn instruction_factor(class: KernelClass) -> f64 {
    class_params(class).instr_factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::KernelSpec;

    fn gemm(flops: f64) -> KernelSpec {
        // Bytes chosen so GEMMs stay compute bound.
        KernelSpec::new(KernelClass::Gemm, flops, flops / 50.0, "gemm")
    }

    #[test]
    fn large_gemm_approaches_base_efficiency() {
        let gpu = GpuSpec::quadro_p4000();
        let t = kernel_timing(&gemm(1e11), &gpu);
        // Base GEMM efficiency is calibrated to 0.45 of peak; counted
        // utilisation adds the 1.2× instruction factor.
        assert!(t.fp32_utilization > 0.45, "util {}", t.fp32_utilization);
        assert!(t.fp32_utilization < 0.60, "util {}", t.fp32_utilization);
        assert_eq!(t.bound, Bound::Compute);
    }

    #[test]
    fn small_gemm_is_setup_dominated() {
        let gpu = GpuSpec::quadro_p4000();
        let small = kernel_timing(&gemm(1e7), &gpu);
        let large = kernel_timing(&gemm(1e11), &gpu);
        assert!(small.fp32_utilization < large.fp32_utilization / 3.0);
    }

    #[test]
    fn duration_is_monotone_in_flops() {
        let gpu = GpuSpec::quadro_p4000();
        let mut prev = 0.0;
        for exp in 6..12 {
            let t = kernel_timing(&gemm(10f64.powi(exp)), &gpu);
            assert!(t.duration_s >= prev);
            prev = t.duration_s;
        }
    }

    #[test]
    fn batch_norm_is_memory_bound() {
        let gpu = GpuSpec::quadro_p4000();
        let spec = KernelSpec::new(KernelClass::BatchNormForward, 8.0 * 3e6, 6.0 * 4.0 * 3e6, "bn");
        let t = kernel_timing(&spec, &gpu);
        assert_eq!(t.bound, Bound::Memory);
        // Counted-instruction utilisation lands in the paper's Table 5/6
        // band for bn kernels (≈30–46 %), well below large GEMMs.
        assert!(t.fp32_utilization > 0.1 && t.fp32_utilization < 0.6, "{}", t.fp32_utilization);
    }

    #[test]
    fn min_kernel_duration_is_enforced() {
        let gpu = GpuSpec::quadro_p4000();
        let spec = KernelSpec::new(KernelClass::Elementwise, 1.0, 4.0, "tiny");
        let t = kernel_timing(&spec, &gpu);
        assert!(t.duration_s >= MIN_KERNEL_S);
        assert!(t.fp32_utilization < 1e-3);
    }

    #[test]
    fn titan_xp_runs_faster_but_less_utilized() {
        // Paper Observation 10: the faster card finishes sooner yet achieves
        // a lower fraction of its (larger) peak.
        let p4000 = GpuSpec::quadro_p4000();
        let xp = GpuSpec::titan_xp();
        let spec = gemm(5e9);
        let tp = kernel_timing(&spec, &p4000);
        let tx = kernel_timing(&spec, &xp);
        assert!(tx.duration_s < tp.duration_s);
        assert!(tx.fp32_utilization < tp.fp32_utilization);
    }

    #[test]
    fn half_precision_lifts_the_matrix_roof_and_halves_traffic() {
        let gpu = GpuSpec::quadro_p4000();
        // Compute-bound GEMM: f16 compute roof is half_rate × peak.
        let big = gemm(1e11);
        let f32t = kernel_timing_mixed(&big, &gpu, 1.0, Precision::F32);
        let f16t = kernel_timing_mixed(&big, &gpu, 1.0, Precision::F16);
        let bf16t = kernel_timing_mixed(&big, &gpu, 1.0, Precision::Bf16);
        assert!(f16t.duration_s < f32t.duration_s / 1.8, "{} vs {}", f16t.duration_s, f32t.duration_s);
        assert_eq!(f16t, bf16t); // same storage width, same roof
        // Memory-bound elementwise kernel: no matrix unit, but traffic halves.
        let ew = KernelSpec::new(KernelClass::Elementwise, 1e6, 1e9, "ew");
        let ew32 = kernel_timing_mixed(&ew, &gpu, 1.0, Precision::F32);
        let ew16 = kernel_timing_mixed(&ew, &gpu, 1.0, Precision::F16);
        assert_eq!(ew32.bound, Bound::Memory);
        assert!(ew16.duration_s < ew32.duration_s * 0.6);
        assert!(ew16.duration_s > ew32.duration_s * 0.4);
    }

    #[test]
    fn f32_mixed_path_is_bitwise_the_baseline() {
        let gpu = GpuSpec::quadro_p4000();
        for exp in 5..12 {
            let spec = gemm(10f64.powi(exp));
            let a = kernel_timing_with_speedup(&spec, &gpu, 0.8);
            let b = kernel_timing_mixed(&spec, &gpu, 0.8, Precision::F32);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn memoized_timing_is_bitwise_identical_and_hits_on_repeats() {
        let p4000 = GpuSpec::quadro_p4000();
        let xp = GpuSpec::titan_xp();
        let specs: Vec<KernelSpec> = (5..11)
            .map(|e| gemm(10f64.powi(e)))
            .chain(std::iter::once(KernelSpec::new(KernelClass::Elementwise, 1e6, 1e9, "ew")))
            .collect();
        for gpu in [&p4000, &xp] {
            for spec in &specs {
                for prec in [Precision::F32, Precision::F16, Precision::Bf16] {
                    for speedup in [0.8, 1.0, 1.33] {
                        let cold = kernel_timing_mixed(spec, gpu, speedup, prec);
                        let memo1 = kernel_timing_memoized(spec, gpu, speedup, prec);
                        let memo2 = kernel_timing_memoized(spec, gpu, speedup, prec);
                        assert_eq!(cold.duration_s.to_bits(), memo1.duration_s.to_bits());
                        assert_eq!(cold.fp32_utilization.to_bits(), memo1.fp32_utilization.to_bits());
                        assert_eq!(cold.bound, memo1.bound);
                        assert_eq!(memo1, memo2);
                    }
                }
            }
        }
        let (hits, _) = roofline_memo_stats();
        assert!(hits > 0, "repeat lookups must hit the memo");
    }

    #[test]
    fn utilization_never_exceeds_one() {
        let gpu = GpuSpec::quadro_p4000();
        for exp in 4..13 {
            let t = kernel_timing(&gemm(10f64.powi(exp)), &gpu);
            assert!(t.fp32_utilization <= 1.0);
        }
    }
}
