//! Timeline export in Chrome `chrome://tracing` JSON format — the
//! reproduction's stand-in for nvprof's `.nvvp` timeline files (the paper's
//! Fig. 3 pipeline shuttles those between tools).

use crate::timeline::{ExecutionParams, KernelRecord};

/// Serialises a kernel trace as a Chrome trace-event JSON array.
///
/// Kernels are laid out on one "GPU" track with the same launch/sync
/// pipeline the simulator uses, so gaps are visible exactly where the
/// device starved. Load the output in `chrome://tracing` or Perfetto.
pub fn export_chrome_trace(records: &[KernelRecord], params: &ExecutionParams) -> String {
    let mut events = Vec::with_capacity(records.len());
    let mut cpu_ready = 0.0f64;
    let mut gpu_free = 0.0f64;
    for r in records {
        cpu_ready += params.launch_overhead_s;
        let start = cpu_ready.max(gpu_free + params.sync_gap_s);
        gpu_free = start + r.duration_s;
        events.push(format!(
            "{{\"name\": \"{}\", \"cat\": \"{:?}\", \"ph\": \"X\", \"ts\": {:.3}, \
             \"dur\": {:.3}, \"pid\": 0, \"tid\": 1, \
             \"args\": {{\"phase\": \"{}\", \"fp32_utilization\": {:.4}}}}}",
            r.origin,
            r.class,
            start * 1e6,
            r.duration_s * 1e6,
            r.phase,
            r.fp32_utilization
        ));
    }
    format!("[{}]", events.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbd_graph::{KernelClass, Phase};

    fn record(duration_s: f64) -> KernelRecord {
        KernelRecord {
            origin: "conv2d",
            node: tbd_graph::NodeId::from_index(0),
            class: KernelClass::ConvForward,
            phase: Phase::Forward,
            duration_s,
            end_s: duration_s,
            fp32_utilization: 0.5,
            flops: 1e9,
            bound: crate::Bound::Compute,
        }
    }

    #[test]
    fn trace_is_json_array_with_one_event_per_kernel() {
        let params = ExecutionParams::default();
        let trace = export_chrome_trace(&[record(1e-3), record(2e-3)], &params);
        assert!(trace.starts_with('[') && trace.ends_with(']'));
        assert_eq!(trace.matches("\"ph\": \"X\"").count(), 2);
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
        assert!(trace.contains("conv2d"));
    }

    #[test]
    fn events_do_not_overlap_on_the_gpu_track() {
        let params = ExecutionParams::default();
        let records: Vec<_> = (0..5).map(|_| record(5e-4)).collect();
        let trace = export_chrome_trace(&records, &params);
        // Parse back the ts/dur pairs naively and check monotone layout.
        let mut last_end = 0.0f64;
        for line in trace.lines() {
            let ts = field(line, "\"ts\": ");
            let dur = field(line, "\"dur\": ");
            if let (Some(ts), Some(dur)) = (ts, dur) {
                assert!(ts >= last_end - 1e-9, "kernels overlap: {ts} < {last_end}");
                last_end = ts + dur;
            }
        }
        assert!(last_end > 0.0);
    }

    fn field(line: &str, key: &str) -> Option<f64> {
        let start = line.find(key)? + key.len();
        let rest = &line[start..];
        let end = rest.find([',', '}'])?;
        rest[..end].trim().parse().ok()
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(export_chrome_trace(&[], &ExecutionParams::default()), "[]");
    }
}
