//! Analytic GPU device model for the TBD reproduction.
//!
//! No CUDA hardware is assumed anywhere in this workspace. Instead, every
//! kernel launch lowered from a dataflow graph (`tbd-graph`) carries exact
//! FLOP and byte counts, and this crate turns those into durations,
//! utilisation figures and memory pressure via:
//!
//! * [`GpuSpec`] — device descriptions matching the paper's Table 4
//!   (Quadro P4000, Titan Xp, plus the host Xeon);
//! * [`timing`] — a roofline model with per-kernel-class efficiencies and a
//!   size ramp (small kernels cannot fill the machine, which is the
//!   mechanism behind the paper's Observations 4–7);
//! * [`DeviceMemory`] — a capacity-enforcing allocator with the paper's
//!   five memory categories (weights, gradients, feature maps, workspace,
//!   dynamic);
//! * [`timeline`] — an iteration simulator producing wall time, GPU busy
//!   time, per-kernel FP32 utilisation and an nvprof-style trace.
//!
//! # Examples
//!
//! ```
//! use tbd_gpusim::{kernel_timing, GpuSpec};
//! use tbd_graph::{KernelClass, KernelSpec};
//!
//! let gpu = GpuSpec::quadro_p4000();
//! // A ResNet-sized convolution: ~2.4 GFLOPs, compute bound.
//! let conv = KernelSpec::new(KernelClass::ConvForward, 2.4e9, 8.0e7, "conv2d");
//! let t = kernel_timing(&conv, &gpu);
//! assert!(t.duration_s > 0.0 && t.fp32_utilization > 0.3);
//! ```

pub mod memory;
pub mod spec;
pub mod timeline;
pub mod timing;
pub mod trace;

pub use memory::{DeviceMemory, MemoryBreakdown, MemoryCategory, OutOfMemory};
pub use spec::{CpuSpec, GpuSpec, Interconnect};
pub use timeline::{
    simulate_iteration, simulate_iteration_traced, ExecutionParams, IterationProfile, KernelRecord,
};
pub use timing::{
    is_matrix_class, kernel_timing, kernel_timing_memoized, kernel_timing_mixed,
    kernel_timing_with_speedup, roofline_memo_stats, Bound, KernelTiming,
};
pub use trace::export_chrome_trace;
