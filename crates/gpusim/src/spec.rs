//! Hardware descriptions (paper Table 4).

/// Description of a GPU device.
///
/// The two constructors mirror the paper's evaluation hardware exactly
/// (Table 4); [`GpuSpec::peak_gflops`] derives the single-precision peak as
/// `2 × cores × clock` (one FMA per core per cycle).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Streaming-multiprocessor count.
    pub multiprocessors: u32,
    /// Total CUDA core count.
    pub cuda_cores: u32,
    /// Maximum clock rate in MHz.
    pub max_clock_mhz: u32,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Device memory bandwidth in GB/s.
    pub memory_bw_gbs: f64,
    /// Last-level cache size in bytes.
    pub llc_bytes: u64,
    /// Half-precision (f16/bf16) matrix throughput relative to the FP32
    /// peak. Models a Tango-style matrix-unit roofline: tensor-core GEMMs
    /// sustain a multiple of the scalar FP32 rate, so the speed tier times
    /// reduced-precision GEMM/conv kernels against
    /// `half_rate × peak_flops`. The paper's Pascal cards have no matrix
    /// units (their *native* fp16 rate is 1/64 of fp32); this knob answers
    /// the what-if the mixed-precision extension studies, defaulting to the
    /// 2× ratio matrix units sustain at equal power.
    pub half_rate: f64,
    /// On-demand rental price of one device in USD per hour — the TCO
    /// dimension of the capacity planner (`tbd serve`/`tbd scale`). A
    /// simulator constant, not a market feed: values are fixed
    /// public-cloud-style list prices so $/iteration is as deterministic
    /// as iteration time itself. `0.0` disables costing.
    pub price_per_hour: f64,
    /// Host link (PCIe 3.0 x16 for both paper GPUs).
    pub bus: Interconnect,
}

impl GpuSpec {
    /// NVIDIA Quadro P4000 — the paper's primary device.
    pub fn quadro_p4000() -> Self {
        GpuSpec {
            name: "Quadro P4000".to_string(),
            multiprocessors: 14,
            cuda_cores: 1792,
            max_clock_mhz: 1480,
            memory_bytes: 8 * GIB,
            memory_bw_gbs: 243.0,
            llc_bytes: 2 * MIB,
            half_rate: 2.0,
            price_per_hour: 0.35,
            bus: Interconnect::pcie3_x16(),
        }
    }

    /// NVIDIA Titan Xp — the paper's "more powerful GPU" (§4.3).
    pub fn titan_xp() -> Self {
        GpuSpec {
            name: "TITAN Xp".to_string(),
            multiprocessors: 30,
            cuda_cores: 3840,
            max_clock_mhz: 1582,
            memory_bytes: 12 * GIB,
            memory_bw_gbs: 547.6,
            llc_bytes: 3 * MIB,
            half_rate: 2.0,
            price_per_hour: 0.75,
            bus: Interconnect::pcie3_x16(),
        }
    }

    /// Theoretical single-precision peak in GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        2.0 * self.cuda_cores as f64 * self.max_clock_mhz as f64 / 1000.0
    }

    /// Theoretical single-precision peak in FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.peak_gflops() * 1e9
    }

    /// Matrix-unit half-precision peak in FLOP/s (`half_rate ×` FP32 peak),
    /// the compute roof that f16/bf16 GEMM-family kernels time against.
    pub fn peak_half_flops(&self) -> f64 {
        self.peak_flops() * self.half_rate
    }

    /// Memory bandwidth in bytes per second.
    pub fn memory_bw_bytes(&self) -> f64 {
        self.memory_bw_gbs * 1e9
    }

    /// 64-bit FNV-1a fingerprint of every timing-relevant field — the
    /// device part of the memoized roofline-table key. Two specs with the
    /// same fingerprint time every kernel identically, so a memo entry
    /// computed under one is valid under the other.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        };
        eat(&u64::from(self.cuda_cores).to_le_bytes());
        eat(&u64::from(self.max_clock_mhz).to_le_bytes());
        eat(&self.memory_bw_gbs.to_bits().to_le_bytes());
        eat(&self.half_rate.to_bits().to_le_bytes());
        eat(&self.bus.bandwidth_bytes.to_bits().to_le_bytes());
        eat(&self.bus.latency_s.to_bits().to_le_bytes());
        h
    }
}

const MIB: u64 = 1024 * 1024;
const GIB: u64 = 1024 * MIB;

/// Description of a host CPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: String,
    /// Physical core count.
    pub cores: u32,
    /// Maximum clock rate in MHz.
    pub max_clock_mhz: u32,
    /// Host memory capacity in bytes.
    pub memory_bytes: u64,
}

impl CpuSpec {
    /// Intel Xeon E5-2680 (28 cores) — the paper's host CPU.
    pub fn xeon_e5_2680() -> Self {
        CpuSpec {
            name: "Intel Xeon E5-2680".to_string(),
            cores: 28,
            max_clock_mhz: 2900,
            memory_bytes: 128 * GIB,
        }
    }
}

/// A point-to-point interconnect used for device-host or machine-machine
/// transfers (paper §4.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes: f64,
    /// Per-message latency in seconds.
    pub latency_s: f64,
}

impl Interconnect {
    /// PCIe 3.0 x16 (≈16 GB/s, the intra-machine GPU link).
    pub fn pcie3_x16() -> Self {
        Interconnect { bandwidth_bytes: 16.0e9, latency_s: 5e-6 }
    }

    /// Gigabit Ethernet (the paper's slow cross-machine configuration).
    pub fn ethernet_1g() -> Self {
        Interconnect { bandwidth_bytes: 0.125e9, latency_s: 100e-6 }
    }

    /// 100 Gb/s InfiniBand (Mellanox, the paper's fast fabric).
    pub fn infiniband_100g() -> Self {
        Interconnect { bandwidth_bytes: 12.5e9, latency_s: 2e-6 }
    }

    /// Time to move `bytes` across the link once.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / self.bandwidth_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4000_matches_table4() {
        let g = GpuSpec::quadro_p4000();
        assert_eq!(g.multiprocessors, 14);
        assert_eq!(g.cuda_cores, 1792);
        assert_eq!(g.memory_bytes, 8 * 1024 * 1024 * 1024);
        // 2 * 1792 * 1.48 GHz ≈ 5.3 TFLOPS.
        assert!((g.peak_gflops() - 5304.3).abs() < 1.0);
    }

    #[test]
    fn titan_xp_is_roughly_2x_p4000() {
        let p = GpuSpec::quadro_p4000();
        let t = GpuSpec::titan_xp();
        let ratio = t.peak_gflops() / p.peak_gflops();
        assert!(ratio > 2.0 && ratio < 2.5, "ratio {ratio}");
        assert!(t.memory_bw_gbs / p.memory_bw_gbs > 2.0);
    }

    #[test]
    fn xeon_matches_table4() {
        let c = CpuSpec::xeon_e5_2680();
        assert_eq!(c.cores, 28);
        assert_eq!(c.max_clock_mhz, 2900);
    }

    #[test]
    fn prices_and_fingerprints_are_stable_constants() {
        let p = GpuSpec::quadro_p4000();
        let t = GpuSpec::titan_xp();
        assert!(p.price_per_hour > 0.0 && t.price_per_hour > p.price_per_hour);
        // Fingerprint covers timing-relevant knobs only: a price change
        // keeps it, a clock change moves it.
        let mut repriced = p.clone();
        repriced.price_per_hour = 99.0;
        assert_eq!(repriced.fingerprint(), p.fingerprint());
        let mut clocked = p.clone();
        clocked.max_clock_mhz += 1;
        assert_ne!(clocked.fingerprint(), p.fingerprint());
        assert_ne!(p.fingerprint(), t.fingerprint());
    }

    #[test]
    fn interconnect_ordering() {
        let eth = Interconnect::ethernet_1g();
        let ib = Interconnect::infiniband_100g();
        let pcie = Interconnect::pcie3_x16();
        let payload = 100e6; // ResNet-50 gradients ≈ 100 MB
        assert!(eth.transfer_time(payload) > ib.transfer_time(payload));
        assert!(ib.transfer_time(payload) > pcie.transfer_time(payload) * 0.5);
        // Ethernet moves 100 MB in ~0.8 s — far longer than an iteration.
        assert!(eth.transfer_time(payload) > 0.5);
    }
}
