//! Shared helpers for the table/figure-regenerating bench targets.
//!
//! Every `benches/*.rs` target regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` for the index); this crate holds the
//! sweep-and-print plumbing they share.

use tbd_core::{paper_batches, Framework, GpuSpec, ModelKind, Suite, WorkloadMetrics};

/// The per-model framework series of the paper's Fig. 4–6 sub-plots, in
/// figure order, with the labels the paper uses (NMT vs Sockeye).
pub fn figure_series() -> Vec<(ModelKind, Vec<(Framework, String)>)> {
    let label = |kind: ModelKind, fw: Framework| {
        if kind == ModelKind::Seq2Seq {
            format!("{} ({})", fw.seq2seq_implementation(), fw.name())
        } else {
            format!("{} ({})", kind.name(), fw.name())
        }
    };
    [
        ModelKind::ResNet50,
        ModelKind::InceptionV3,
        ModelKind::Seq2Seq,
        ModelKind::Transformer,
        ModelKind::Wgan,
        ModelKind::DeepSpeech2,
        ModelKind::A3c,
    ]
    .into_iter()
    .map(|kind| {
        let frameworks = Framework::all()
            .into_iter()
            .filter(|fw| fw.supports(kind))
            .map(|fw| (fw, label(kind, fw)))
            .collect();
        (kind, frameworks)
    })
    .collect()
}

/// Sweeps every sub-plot of a Fig. 4/5/6-style figure and prints
/// `metric(…)` per (series, batch) point. OOM points print as `-` exactly
/// where the paper's plots stop.
pub fn print_batch_sweep_figure(
    title: &str,
    unit: &str,
    metric: impl Fn(&WorkloadMetrics) -> f64,
) {
    let suite = Suite::new(GpuSpec::quadro_p4000());
    println!("{title}");
    println!("(device: {}, values in {unit})", suite.gpu().name);
    for (kind, series) in figure_series() {
        let batches = paper_batches(kind);
        println!("\n  [{}]  mini-batch axis: {:?}", kind.name(), batches);
        for (framework, label) in series {
            print!("    {label:<24}");
            for &batch in &batches {
                match suite.run(kind, framework, batch) {
                    Ok(m) => print!(" {:>8.1}", metric(&m)),
                    Err(_) => print!(" {:>8}", "-"),
                }
            }
            println!();
        }
    }
    // Faster R-CNN is reported inline in the paper (batch fixed at 1).
    println!("\n  [Faster R-CNN] (batch fixed at 1)");
    for framework in [Framework::tensorflow(), Framework::mxnet()] {
        let m = suite.run(ModelKind::FasterRcnn, framework, 1).expect("batch 1 fits");
        println!("    Faster R-CNN ({:<10})       {:>8.1}", framework.name(), metric(&m));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_series_covers_seven_panels_with_paper_labels() {
        let series = figure_series();
        assert_eq!(series.len(), 7, "Fig. 4-6 have seven batch-swept panels");
        let seq2seq = series
            .iter()
            .find(|(kind, _)| *kind == ModelKind::Seq2Seq)
            .expect("Seq2Seq panel exists");
        let labels: Vec<&str> = seq2seq.1.iter().map(|(_, l)| l.as_str()).collect();
        assert!(labels.iter().any(|l| l.starts_with("NMT")));
        assert!(labels.iter().any(|l| l.starts_with("Sockeye")));
        // Faster R-CNN is reported inline, not as a panel.
        assert!(!series.iter().any(|(kind, _)| *kind == ModelKind::FasterRcnn));
    }

    #[test]
    fn every_panel_lists_only_supported_frameworks() {
        for (kind, frameworks) in figure_series() {
            assert!(!frameworks.is_empty(), "{} has implementations", kind.name());
            for (fw, _) in frameworks {
                assert!(fw.supports(kind));
            }
        }
    }
}
