//! Ablation: parameter-server (MXNet kvstore) vs ring all-reduce (NCCL)
//! gradient synchronisation across the Fig. 10 cluster configurations.

use tbd_core::{Framework, GpuSpec, Interconnect, ModelKind, Suite};
use tbd_distrib::{ClusterConfig, DataParallelSim, SyncStrategy};
use tbd_graph::lower::memory_footprint;

fn main() {
    let suite = Suite::new(GpuSpec::quadro_p4000());
    let m = suite.run(ModelKind::ResNet50, Framework::mxnet(), 16).unwrap();
    let model = ModelKind::ResNet50.build_full(16).unwrap();
    let sim = DataParallelSim {
        compute_iter_s: 16.0 / m.throughput,
        gradient_bytes: memory_footprint(&model.graph).weight_grads as f64,
        per_gpu_batch: 16,
    };
    println!("Synchronisation-strategy ablation (ResNet-50, per-GPU batch 16)");
    println!("{:<22} {:>16} {:>16}", "configuration", "param-server", "ring all-reduce");
    let mut configs = [
        ("2M1G ethernet", ClusterConfig::multi_machine(2, Interconnect::ethernet_1g())),
        ("2M1G infiniband", ClusterConfig::multi_machine(2, Interconnect::infiniband_100g())),
        ("4M1G infiniband", ClusterConfig::multi_machine(4, Interconnect::infiniband_100g())),
        ("1M4G", ClusterConfig::single_machine(4)),
    ];
    for (label, config) in configs.iter_mut() {
        config.sync = SyncStrategy::ParameterServer;
        let ps = sim.simulate(config);
        config.sync = SyncStrategy::RingAllReduce;
        let ar = sim.simulate(config);
        println!("{:<22} {:>12.1}/s {:>14.1}/s", label, ps.throughput, ar.throughput);
    }
    println!("\nthe parameter server serialises remote workers through one link, so its");
    println!("gap to all-reduce widens with machine count — why NCCL-style collectives");
    println!("took over after the paper's era.");
}
