//! Speed-tier ablation: fused vs unfused end-to-end `capture()` (ISSUE 6).
//!
//! Criterion harness over the same reference workload the BENCH trajectory
//! records (ResNet-50 / TensorFlow / batch 4 / Quadro P4000): one pair of
//! benchmarks for the full capture (functional executor step + lowering +
//! simulation + data-parallel replay), one for the executor
//! forward+backward alone, at each tier. The fused tier enables the fusion
//! plan *and* the arena allocator — the configuration the ≥2× claim is
//! about.
//!
//! Smoke mode for CI: set `SMOKE=1` to run a short sampling pass whose
//! console output doubles as the ablation report artifact.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use tbd_core::{Framework, GpuSpec, ModelKind};
use tbd_graph::Session;
use tbd_profiler::trace::{build_tiny, synthetic_feeds};
use tbd_profiler::{capture, TraceOptions};
use tbd_tensor::Tensor;

fn tier_label(fuse: bool) -> &'static str {
    if fuse {
        "fused"
    } else {
        "unfused"
    }
}

fn bench_capture(c: &mut Criterion) {
    let gpu = GpuSpec::quadro_p4000();
    for fuse in [false, true] {
        let id = format!("speed_tier/capture_resnet50_b4/{}", tier_label(fuse));
        c.bench_function(&id, |b| {
            tbd_tensor::arena::set_enabled(fuse);
            let options = TraceOptions { fuse, ..TraceOptions::default() };
            b.iter(|| {
                capture(ModelKind::ResNet50, Framework::tensorflow(), 4, &gpu, &options)
                    .expect("reference capture succeeds")
            });
        });
    }
    tbd_tensor::arena::set_enabled(true);
}

fn bench_executor(c: &mut Criterion) {
    for fuse in [false, true] {
        let id = format!("speed_tier/exec_resnet50_tiny/{}", tier_label(fuse));
        c.bench_function(&id, |b| {
            tbd_tensor::arena::set_enabled(fuse);
            let model = build_tiny(ModelKind::ResNet50).expect("tiny model builds");
            let feeds = synthetic_feeds(&model);
            let loss = model.loss();
            let mut session =
                Session::with_exec(model.graph, 42, Framework::tensorflow().host_threading());
            session.set_fusion_enabled(fuse);
            b.iter(|| {
                let run = session.forward(&feeds).expect("forward succeeds");
                session.backward(&run, loss, Tensor::scalar(1.0)).expect("backward succeeds")
            });
        });
    }
    tbd_tensor::arena::set_enabled(true);
    tbd_tensor::par::set_max_threads(0);
}

/// `SMOKE=1` (CI) trims sampling so the job stays fast while still
/// printing a comparable fused-vs-unfused report.
fn config() -> Criterion {
    if std::env::var_os("SMOKE").is_some() {
        Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_secs(1))
    } else {
        Criterion::default()
    }
}

criterion_group!(name = benches; config = config(); targets = bench_capture, bench_executor);
criterion_main!(benches);
