//! Regenerates Fig. 10: ResNet-50 on MXNet with multiple GPUs/machines —
//! 1M1G, 2M1G over Ethernet and InfiniBand, 1M2G, 1M4G, per-GPU batches
//! 8/16/32.

use tbd_core::{Framework, GpuSpec, Interconnect, ModelKind, Suite};
use tbd_distrib::{ClusterConfig, DataParallelSim};
use tbd_graph::lower::memory_footprint;

fn main() {
    let suite = Suite::new(GpuSpec::quadro_p4000());
    println!("Fig. 10 — ResNet-50 on MXNet, distributed data parallelism (samples/s)");
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "configuration", "b8", "b16", "b32"
    );
    let configs: Vec<(String, ClusterConfig)> = vec![
        ("1M1G".into(), ClusterConfig::single_machine(1)),
        (
            "2M1G (ethernet)".into(),
            ClusterConfig::multi_machine(2, Interconnect::ethernet_1g()),
        ),
        (
            "2M1G (infiniband)".into(),
            ClusterConfig::multi_machine(2, Interconnect::infiniband_100g()),
        ),
        ("1M2G".into(), ClusterConfig::single_machine(2)),
        ("1M4G".into(), ClusterConfig::single_machine(4)),
    ];
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for &batch in &[8usize, 16, 32] {
        let metrics = suite.run(ModelKind::ResNet50, Framework::mxnet(), batch).unwrap();
        let model = ModelKind::ResNet50.build_full(batch).unwrap();
        let sim = DataParallelSim {
            compute_iter_s: batch as f64 / metrics.throughput,
            gradient_bytes: memory_footprint(&model.graph).weight_grads as f64,
            per_gpu_batch: batch,
        };
        for (i, (_, config)) in configs.iter().enumerate() {
            rows[i].push(sim.simulate(config).throughput);
        }
    }
    for ((label, _), row) in configs.iter().zip(rows) {
        println!("{:<22} {:>8.1} {:>8.1} {:>8.1}", label, row[0], row[1], row[2]);
    }
    println!("\nObservation 13: Ethernet 2M1G falls below 1M1G; InfiniBand and PCIe scale.");
}
