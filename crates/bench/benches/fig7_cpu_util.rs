//! Regenerates Fig. 7: average CPU utilisation across all 14
//! model × framework implementations.

use tbd_core::{GpuSpec, ModelKind, Suite};

fn main() {
    let suite = Suite::new(GpuSpec::quadro_p4000());
    println!("Fig. 7 — average CPU utilisation (28-core Xeon)");
    for (kind, framework) in Suite::supported_pairs() {
        let batch = match kind {
            ModelKind::FasterRcnn => 1,
            ModelKind::DeepSpeech2 => 2,
            ModelKind::Transformer => 2048,
            ModelKind::Seq2Seq => 64,
            ModelKind::A3c => 128,
            _ => 32,
        };
        let label = if kind == ModelKind::Seq2Seq {
            format!("{} ({})", framework.seq2seq_implementation(), framework.name())
        } else {
            format!("{} ({})", kind.name(), framework.name())
        };
        match suite.run(kind, framework, batch) {
            Ok(m) => println!("  {:<28} {:5.2} %", label, 100.0 * m.cpu_utilization),
            Err(e) => println!("  {label:<28} OOM ({e})"),
        }
    }
    println!("\npaper anchors: most 5-8 %, CNTK ~0.1 %, Transformer/WGAN ~1.7 %, A3C 28.75 % (highest)");
}
