//! Regenerates Table 3: training-dataset statistics, and validates the
//! synthetic generators against them.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbd_data::{AudioDataset, ImageDataset, TranslationDataset, TABLE3};

fn main() {
    println!("Table 3 — training datasets");
    println!("{:<22} {:>12} {:<28} Special", "Dataset", "Samples", "Size");
    for row in TABLE3 {
        println!(
            "{:<22} {:>12} {:<28} {}",
            row.name,
            row.samples.map(|s| s.to_string()).unwrap_or_else(|| "N/A".into()),
            row.size,
            row.special
        );
    }
    // Validate the generators reproduce the statistics.
    let mut rng = StdRng::seed_from_u64(1);
    let (img, _) = ImageDataset::imagenet_like(1000).sample_batch(1, &mut rng);
    println!("\ngenerator check: ImageNet sample {}", img.shape());
    let pair = TranslationDataset::iwslt_like().sample_pair(&mut rng);
    println!("generator check: IWSLT sentence length {} (20-30)", pair.source.len());
    let secs = AudioDataset::librispeech_like().sample_duration(&mut rng);
    println!("generator check: LibriSpeech utterance {secs:.1} s");
}
