//! Extension study: what fused RNN kernels would buy (the paper's
//! Observations 5/7 recommendation, "further research should be done in how
//! to optimize LSTM cells on GPUs"). Replays Sockeye's per-time-step kernel
//! stream, then the same stream after pointwise fusion and after a
//! cuDNN-style fused-RNN lowering.

use tbd_core::{Framework, GpuSpec, ModelKind};
use tbd_frameworks::fusion::{fuse_pointwise, fuse_rnn};
use tbd_gpusim::{simulate_iteration, CpuSpec};

fn main() {
    let gpu = GpuSpec::quadro_p4000();
    let cpu = CpuSpec::xeon_e5_2680();
    let fw = Framework::mxnet();
    let batch = 64;
    let model = ModelKind::Seq2Seq.build_full(batch).expect("builds");
    let input_bytes: u64 = model
        .inputs
        .values()
        .map(|&id| model.graph.node(id).shape.byte_len() as u64)
        .sum();
    let params = fw.execution_params(input_bytes);
    let baseline = fw.plan(&model);
    let pointwise = fuse_pointwise(&baseline);
    let fused = fuse_rnn(&baseline, 64);
    println!("RNN kernel-fusion study — Sockeye (Seq2Seq) at batch {batch} on P4000");
    println!(
        "{:<22} {:>9} {:>12} {:>10} {:>10}",
        "lowering", "kernels", "throughput", "GPU util", "FP32 util"
    );
    for (label, stream) in [
        ("per-step (paper)", &baseline),
        ("pointwise fusion", &pointwise),
        ("fused RNN (cuDNN)", &fused),
    ] {
        let p = simulate_iteration(stream, &gpu, &cpu, &params);
        println!(
            "{:<22} {:>9} {:>9.1}/s {:>9.1}% {:>9.1}%",
            label,
            stream.len(),
            p.throughput(batch),
            100.0 * p.gpu_utilization,
            100.0 * p.fp32_utilization
        );
    }
    println!("\nfusing the recurrence removes the launch/scheduling tax the paper measures;");
    println!("this is the headroom Observation 7's 'low RNN FP32 utilisation' points at.");
}
