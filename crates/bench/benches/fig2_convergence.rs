//! Regenerates Fig. 2: model accuracy over training time for Inception-v3,
//! ResNet-50, Transformer, Seq2Seq and A3C (per framework).

use tbd_core::ModelKind;
use tbd_train::ConvergenceModel;

fn main() {
    println!("Fig. 2 — model accuracy during training");
    let panels: [(&str, ModelKind, &[&str]); 5] = [
        ("(a) Inception-v3", ModelKind::InceptionV3, &["MXNet", "CNTK", "TensorFlow"]),
        ("(b) ResNet-50", ModelKind::ResNet50, &["MXNet", "TensorFlow", "CNTK"]),
        ("(c) Transformer", ModelKind::Transformer, &["TensorFlow"]),
        ("(d) Seq2Seq", ModelKind::Seq2Seq, &["MXNet", "TensorFlow"]),
        ("(e) A3C", ModelKind::A3c, &["MXNet"]),
    ];
    for (panel, kind, frameworks) in panels {
        println!("\n{panel}");
        for fw in frameworks {
            let model = ConvergenceModel::for_workload(kind, fw).expect("plotted in Fig. 2");
            let curve = model.curve(9, 42);
            print!("  {:<22} [{}]", curve.label, model.metric);
            for (h, v) in curve.hours.iter().zip(&curve.values) {
                if model.metric == "Top-1 accuracy" {
                    print!(" {:.0}d:{:.2}", h / 24.0, v);
                } else {
                    print!(" {h:.0}h:{v:.1}");
                }
            }
            println!();
        }
    }
    println!("\npaper endpoints: Top-1 75-80 %, BLEU ~20 (Seq2Seq) / ~24 (Transformer), Pong 19-20");
}
