//! Regenerates Table 1: the literature survey of systems/architecture
//! papers since 2014.

use tbd_core::survey::{broader_total, image_only_total, inference_total, table1, training_total};

fn main() {
    println!("Table 1 — major systems/architecture papers since 2014");
    println!("{:<12} {:>28} {:>30}", "", "Image Classification Only", "Broader (incl. non-CNN)");
    for training in [true, false] {
        let row: Vec<usize> = [true, false]
            .iter()
            .map(|&img| {
                table1()
                    .iter()
                    .find(|c| c.training == training && c.image_classification_only == img)
                    .map(|c| c.papers)
                    .unwrap_or(0)
            })
            .collect();
        println!(
            "{:<12} {:>28} {:>30}",
            if training { "Training" } else { "Inference" },
            row[0],
            row[1]
        );
    }
    println!(
        "\nheadline: {} inference vs {} training papers; {} image-only vs {} broader",
        inference_total(),
        training_total(),
        image_only_total(),
        broader_total()
    );
    println!("paper:    25 inference vs 16 training; 26 image-only vs 11 broader");
}
