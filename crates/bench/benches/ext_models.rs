//! Extension workloads beyond Table 2: YOLOv2 (the paper's announced next
//! addition, §3.1.2) and the GRU variant of Deep Speech 2 (§3.1.4),
//! profiled with the same toolchain as the core suite.

use tbd_core::{Framework, GpuSpec};
use tbd_frameworks::WorkloadHints;
use tbd_models::deepspeech::DeepSpeechConfig;
use tbd_models::yolo::YoloConfig;
use tbd_models::ModelKind;

fn main() {
    let gpu = GpuSpec::quadro_p4000();

    println!("Extension 1 — YOLOv2 vs Faster R-CNN (object detection, batch 1)");
    let yolo = YoloConfig::full().build(1).expect("builds");
    let hints = WorkloadHints { compute_derate: 0.8, ..WorkloadHints::default() };
    let fw = Framework::tensorflow();
    let y = fw.profile_with_hints(&yolo, &gpu, hints).expect("fits");
    let rcnn_model = ModelKind::FasterRcnn.build_full(1).expect("builds");
    let r = fw
        .profile_with_hints(&rcnn_model, &gpu, fw.hints(ModelKind::FasterRcnn, 1))
        .expect("fits");
    println!(
        "  YOLOv2        {:5.1} img/s | GPU {:4.1}% | mem {:.2} GB",
        y.throughput,
        100.0 * y.iteration.gpu_utilization,
        y.memory.total() as f64 / 1e9
    );
    println!(
        "  Faster R-CNN  {:5.1} img/s | GPU {:4.1}% | mem {:.2} GB",
        r.throughput,
        100.0 * r.iteration.gpu_utilization,
        r.memory.total() as f64 / 1e9
    );
    println!(
        "  single-shot speedup: {:.1}x (the paper's motivation for adding YOLO)",
        y.throughput / r.throughput
    );

    println!("\nExtension 2 — Deep Speech 2: vanilla RNN vs GRU cells");
    let mx = Framework::mxnet();
    for (label, cfg) in [
        ("vanilla RNN", DeepSpeechConfig::full()),
        ("GRU", DeepSpeechConfig::full_gru()),
    ] {
        for batch in [1usize, 2] {
            let hints = mx.hints(ModelKind::DeepSpeech2, batch);
            let model = cfg.build(batch).expect("builds");
            match mx.profile_with_hints(&model, &gpu, hints) {
                Ok(p) => println!(
                    "  {:<12} b{batch} {:5.2} utt/s | GPU {:4.1}% | FP32 {:4.1}% | mem {:.2} GB | {} params",
                    label,
                    p.throughput,
                    100.0 * p.iteration.gpu_utilization,
                    100.0 * p.iteration.fp32_utilization,
                    p.memory.total() as f64 / 1e9,
                    model.graph.param_count()
                ),
                Err(_) => println!("  {label:<12} b{batch} OOM — the gated cell's extra activations hit the 8 GB wall"),
            }
        }
    }
    println!("  (the GRU triples the recurrent GEMM volume per step: better accuracy in");
    println!("   the DS2 paper, ~2-3x the training cost — why MXNet defaults to vanilla)");
}
