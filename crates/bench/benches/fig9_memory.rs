//! Regenerates Fig. 9: GPU memory usage breakdown (feature maps, weights,
//! weight gradients, dynamic, workspace) per model × framework × batch.

use tbd_core::{Framework, GpuSpec, MemoryCategory, ModelKind, Suite};

fn main() {
    let suite = Suite::new(GpuSpec::quadro_p4000());
    println!("Fig. 9 — GPU memory usage breakdown (GB)");
    let panels: [(&str, ModelKind, Framework, &[usize]); 9] = [
        ("(a) ResNet-50 MXNet", ModelKind::ResNet50, Framework::mxnet(), &[8, 16, 32]),
        ("(a) ResNet-50 TF", ModelKind::ResNet50, Framework::tensorflow(), &[8, 16, 32]),
        ("(a) ResNet-50 CNTK", ModelKind::ResNet50, Framework::cntk(), &[16, 32]),
        ("(b) WGAN TF", ModelKind::Wgan, Framework::tensorflow(), &[16, 32, 64]),
        ("(c) Inception-v3 MXNet", ModelKind::InceptionV3, Framework::mxnet(), &[8, 16, 32]),
        ("(d) Deep Speech 2 MXNet", ModelKind::DeepSpeech2, Framework::mxnet(), &[1, 2, 4]),
        ("(e) Sockeye MXNet", ModelKind::Seq2Seq, Framework::mxnet(), &[16, 32, 64]),
        ("(e) NMT TF", ModelKind::Seq2Seq, Framework::tensorflow(), &[32, 64, 128]),
        ("(g) A3C MXNet", ModelKind::A3c, Framework::mxnet(), &[32, 64, 128]),
    ];
    for (panel, kind, framework, batches) in panels {
        println!("\n{panel}");
        for &batch in batches {
            match suite.run(kind, framework, batch) {
                Ok(m) => {
                    print!("  b{batch:<4} total {:5.2} GB  ", m.memory.total() as f64 / 1e9);
                    for cat in MemoryCategory::ALL {
                        print!("{}={:.2} ", cat, m.memory.peak(cat) as f64 / 1e9);
                    }
                    println!("(feature maps {:.0}%)", 100.0 * m.memory.feature_map_fraction());
                }
                Err(e) => println!("  b{batch:<4} OOM ({e})"),
            }
        }
    }
    // Transformer panel (f) sweeps tokens.
    println!("\n(f) Transformer TF");
    for &tokens in &[512usize, 1024, 2048] {
        let m = suite.run(ModelKind::Transformer, Framework::tensorflow(), tokens).unwrap();
        println!(
            "  b{tokens:<5} total {:5.2} GB (feature maps {:.0}%)",
            m.memory.total() as f64 / 1e9,
            100.0 * m.memory.feature_map_fraction()
        );
    }
    println!("\nObservation 11: feature maps are 62-89 % of every footprint in the paper.");
}
