//! Regenerates Fig. 8: Quadro P4000 versus Titan Xp — throughput, GPU
//! compute utilisation and FP32 utilisation for ResNet-50, Inception-v3 and
//! the Seq2Seq implementations.

use tbd_core::{Framework, GpuSpec, ModelKind, Suite};

fn main() {
    let p4000 = Suite::new(GpuSpec::quadro_p4000());
    let xp = Suite::new(GpuSpec::titan_xp());
    println!("Fig. 8 — P4000 vs Titan Xp");
    let cases: [(&str, ModelKind, Framework, usize); 6] = [
        ("ResNet-50 (32) MXNet", ModelKind::ResNet50, Framework::mxnet(), 32),
        ("Inception-v3 (32) MXNet", ModelKind::InceptionV3, Framework::mxnet(), 32),
        ("Sockeye (64) MXNet", ModelKind::Seq2Seq, Framework::mxnet(), 64),
        ("ResNet-50 (32) TF", ModelKind::ResNet50, Framework::tensorflow(), 32),
        ("Inception-v3 (32) TF", ModelKind::InceptionV3, Framework::tensorflow(), 32),
        ("NMT (128) TF", ModelKind::Seq2Seq, Framework::tensorflow(), 128),
    ];
    println!(
        "{:<26} {:>10} {:>10} {:>7} | {:>8} {:>8} | {:>8} {:>8}",
        "workload", "P4000/s", "TitanXp/s", "ratio", "GPU%P4", "GPU%Xp", "FP32%P4", "FP32%Xp"
    );
    for (label, kind, framework, batch) in cases {
        let a = p4000.run(kind, framework, batch).expect("fits on P4000");
        let b = xp.run(kind, framework, batch).expect("fits on Titan Xp");
        println!(
            "{:<26} {:>10.1} {:>10.1} {:>6.2}x | {:>7.1} {:>8.1} | {:>8.1} {:>8.1}",
            label,
            a.throughput,
            b.throughput,
            b.throughput / a.throughput,
            100.0 * a.gpu_utilization,
            100.0 * b.gpu_utilization,
            100.0 * a.fp32_utilization,
            100.0 * b.fp32_utilization
        );
    }
    println!("\npaper anchors: MXNet 89->184, 61->124, 229->232; TF 71->102, 42->61, 365->530;");
    println!("Observation 10: Titan Xp is faster but both utilisations drop.");
}
