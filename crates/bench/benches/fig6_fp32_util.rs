//! Regenerates Fig. 6: FP32 utilisation (Eq. 2) versus mini-batch size.

use tbd_bench::print_batch_sweep_figure;

fn main() {
    print_batch_sweep_figure(
        "Fig. 6 — GPU FP32 utilisation vs mini-batch size",
        "% of single-precision peak while busy",
        |m| 100.0 * m.fp32_utilization,
    );
    println!("\npaper anchors: CNNs rise to ~55-65 %; RNN models stay under ~25 %; Faster R-CNN 58.9/70.9 %");
}
