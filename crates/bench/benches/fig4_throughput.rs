//! Regenerates Fig. 4: training throughput versus mini-batch size for every
//! model × framework series (plus Faster R-CNN's inline numbers).

use tbd_bench::print_batch_sweep_figure;

fn main() {
    print_batch_sweep_figure(
        "Fig. 4 — DNN training throughput vs mini-batch size",
        "samples/s (tokens/s for Transformer)",
        |m| m.throughput,
    );
    println!("\npaper anchors (P4000): ResNet-50 b32 MXNet 89, TF 71; Sockeye b64 229; NMT b128 365; Faster R-CNN 2.3");
}
