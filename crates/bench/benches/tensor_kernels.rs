//! Criterion micro-benchmarks of the tensor kernels that dominate DNN
//! training — the substrate-level counterpart of the paper's kernel
//! analysis (and of DeepBench, discussed in its related work).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tbd_tensor::ops::{self, Conv2dConfig, Pool2dConfig};
use tbd_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let a = Tensor::from_fn([64, 128], |i| (i as f32 * 0.37).sin());
    let b = Tensor::from_fn([128, 64], |i| (i as f32 * 0.73).cos());
    c.bench_function("matmul_64x128x64", |bench| {
        bench.iter(|| ops::matmul(black_box(&a), black_box(&b)).unwrap())
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let x = Tensor::from_fn([1, 8, 32, 32], |i| (i as f32 * 0.11).sin());
    let w = Tensor::from_fn([16, 8, 3, 3], |i| (i as f32 * 0.19).cos());
    let cfg = Conv2dConfig::new(1, 1);
    c.bench_function("conv2d_8x32x32_to_16", |bench| {
        bench.iter(|| ops::conv2d_forward(black_box(&x), black_box(&w), cfg).unwrap())
    });
    c.bench_function("conv2d_backward_8x32x32_to_16", |bench| {
        let y = ops::conv2d_forward(&x, &w, cfg).unwrap();
        let dy = Tensor::ones(y.shape().clone());
        bench.iter(|| ops::conv2d_backward(black_box(&x), black_box(&w), black_box(&dy), cfg).unwrap())
    });
}

fn bench_batch_norm(c: &mut Criterion) {
    let x = Tensor::from_fn([8, 16, 16, 16], |i| (i as f32 * 0.07).sin());
    let gamma = Tensor::ones([16]);
    let beta = Tensor::zeros([16]);
    c.bench_function("batch_norm_8x16x16x16", |bench| {
        bench.iter(|| ops::batch_norm_forward(black_box(&x), &gamma, &beta, 1e-5).unwrap())
    });
}

fn bench_softmax_ce(c: &mut Criterion) {
    let logits = Tensor::from_fn([64, 1000], |i| (i as f32 * 0.003).sin());
    let targets = Tensor::from_fn([64], |i| (i % 1000) as f32);
    c.bench_function("cross_entropy_64x1000", |bench| {
        bench.iter(|| ops::cross_entropy_forward(black_box(&logits), &targets).unwrap())
    });
}

fn bench_pooling(c: &mut Criterion) {
    let x = Tensor::from_fn([4, 16, 32, 32], |i| (i as f32 * 0.05).cos());
    c.bench_function("max_pool_4x16x32x32", |bench| {
        bench.iter(|| ops::max_pool2d_forward(black_box(&x), Pool2dConfig::new(2, 2, 0)).unwrap())
    });
}

fn bench_session_step(c: &mut Criterion) {
    use tbd_graph::Session;
    use tbd_models::resnet::ResNetConfig;
    c.bench_function("session_forward_backward_tiny_resnet", |bench| {
        let model = ResNetConfig::tiny().build(2).unwrap();
        let images = model.input("images").unwrap();
        let labels = model.input("labels").unwrap();
        let loss = model.loss();
        let mut session = Session::new(model.graph, 1);
        let x = Tensor::from_fn([2, 3, 16, 16], |i| (i % 17) as f32 * 0.05);
        let y = Tensor::from_slice(&[0.0, 1.0]);
        bench.iter(|| {
            let run = session.forward(&[(images, x.clone()), (labels, y.clone())]).unwrap();
            let grads = session.backward(&run, loss, Tensor::scalar(1.0)).unwrap();
            black_box(grads.global_norm(session.graph()))
        })
    });
}

fn bench_lowering(c: &mut Criterion) {
    use tbd_models::resnet::ResNetConfig;
    c.bench_function("lower_resnet50_iteration", |bench| {
        let model = ResNetConfig::resnet50().build(16).unwrap();
        bench.iter(|| tbd_graph::lower::lower_training_iteration(black_box(&model.graph)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv2d, bench_batch_norm, bench_softmax_ce, bench_pooling, bench_session_step, bench_lowering
}
criterion_main!(kernels);
