//! Regenerates Table 5: the five longest kernels with below-average FP32
//! utilisation for ResNet-50 on TensorFlow at mini-batch 32.

use tbd_core::{kernel_table, Framework, GpuSpec, ModelKind, Suite};

fn main() {
    let suite = Suite::new(GpuSpec::quadro_p4000());
    let framework = Framework::tensorflow();
    let m = suite.run(ModelKind::ResNet50, framework, 32).expect("fits");
    println!("Table 5 — longest 5 kernels with below-average FP32 utilisation");
    println!("(ResNet-50, mini-batch 32, TensorFlow; average FP32 {:.1} %)", 100.0 * m.fp32_utilization);
    println!("{:>9} {:>12}  Kernel Name", "Duration", "Utilization");
    for row in kernel_table(&m.profile.iteration.records, framework, 5) {
        println!(
            "{:>8.2}% {:>11.1}%  {}",
            100.0 * row.duration_share,
            100.0 * row.fp32_utilization,
            row.name
        );
    }
    println!("\npaper rows: magma sgemm 8.36%/30.0%, bn_bw 5.53%/42.3%, bn_fw 4.65%/46.3%,");
    println!("            EigenMetaKernel 3.12%/20.0%, BiasNHWCKernel 2.48%/40.0%");
}
