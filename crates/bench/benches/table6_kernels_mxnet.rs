//! Regenerates Table 6: the five longest kernels with below-average FP32
//! utilisation for ResNet-50 on MXNet at mini-batch 32.

use tbd_core::{kernel_table, Framework, GpuSpec, ModelKind, Suite};

fn main() {
    let suite = Suite::new(GpuSpec::quadro_p4000());
    let framework = Framework::mxnet();
    let m = suite.run(ModelKind::ResNet50, framework, 32).expect("fits");
    println!("Table 6 — longest 5 kernels with below-average FP32 utilisation");
    println!("(ResNet-50, mini-batch 32, MXNet; average FP32 {:.1} %)", 100.0 * m.fp32_utilization);
    println!("{:>9} {:>12}  Kernel Name", "Duration", "Utilization");
    for row in kernel_table(&m.profile.iteration.records, framework, 5) {
        println!(
            "{:>8.2}% {:>11.1}%  {}",
            100.0 * row.duration_share,
            100.0 * row.fp32_utilization,
            row.name
        );
    }
    println!("\npaper rows: bn_bw 9.43%/30.0%, bn_fw 7.96%/42.3%, activation_bw 5.14%/46.3%,");
    println!("            activation_fw 3.52%/20.0%, mxnet_generic_kernel 2.85%/40.0%");
}
