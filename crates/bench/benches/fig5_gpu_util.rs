//! Regenerates Fig. 5: GPU compute utilisation (Eq. 1) versus mini-batch
//! size.

use tbd_bench::print_batch_sweep_figure;

fn main() {
    print_batch_sweep_figure(
        "Fig. 5 — GPU compute utilisation vs mini-batch size",
        "% of wall time with a kernel resident",
        |m| 100.0 * m.gpu_utilization,
    );
    println!("\npaper anchors: CNNs reach ~95 %+; LSTM models stay well below; Faster R-CNN ~89-90 %");
}
