//! Ablation (DESIGN.md §5): roofline-with-setup timing versus a pure-FLOP
//! model. Removing the memory roof and per-kernel setup flattens the
//! batch-size effects the paper measures (Observations 4-7 disappear).

use tbd_core::{Framework, GpuSpec, ModelKind, Suite};
use tbd_graph::KernelClass;

fn main() {
    let suite = Suite::new(GpuSpec::quadro_p4000());
    let gpu = GpuSpec::quadro_p4000();
    println!("Ablation — full timing model vs pure-FLOP timing (ResNet-50, MXNet)");
    println!("{:>6} {:>16} {:>16} {:>14}", "batch", "model img/s", "pure-FLOP img/s", "model GPU util");
    for &batch in &[4usize, 8, 16, 32] {
        let m = suite.run(ModelKind::ResNet50, Framework::mxnet(), batch).unwrap();
        // Pure-FLOP alternative: total algorithmic FLOPs at a fixed 50 % of
        // peak, no memory roof, no setup, no launch gaps.
        let model = ModelKind::ResNet50.build_full(batch).unwrap();
        let kernels = Framework::mxnet().plan(&model);
        let flops: f64 = kernels.iter().map(|k| k.spec.flops).sum();
        let naive_iter = flops / (gpu.peak_flops() * 0.5);
        let naive_throughput = batch as f64 / naive_iter;
        println!(
            "{:>6} {:>16.1} {:>16.1} {:>13.1}%",
            batch,
            m.throughput,
            naive_throughput,
            100.0 * m.gpu_utilization
        );
        let _ = kernels.iter().filter(|k| k.spec.class == KernelClass::ConvForward).count();
    }
    println!("\nthe pure-FLOP model scales *exactly* linearly with batch and misses the");
    println!("small-batch penalty, the bn/elementwise tax and every utilisation effect.");
}
