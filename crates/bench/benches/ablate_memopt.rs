//! Extension study (paper §6's research recommendation): feature-map
//! memory optimization. Quantifies how vDNN-style offloading and gradient
//! checkpointing move the paper's memory walls, using the same device and
//! framework models as the main experiments.

use tbd_core::{Framework, GpuSpec, ModelKind};
use tbd_memopt::{max_feasible_batch, profile_with_strategy, Strategy};

fn main() {
    let gpu = GpuSpec::quadro_p4000();
    println!("Feature-map memory optimization (extension; ResNet-50 / Sockeye on 8 GB P4000)");

    println!("\nResNet-50 (MXNet), batch 32:");
    let model = ModelKind::ResNet50.build_full(32).unwrap();
    let fw = Framework::mxnet();
    let hints = fw.hints(ModelKind::ResNet50, 32);
    for (label, strategy) in [
        ("baseline", Strategy::Baseline),
        ("offload 30%", Strategy::Offload { fraction: 0.3 }),
        ("offload 60%", Strategy::Offload { fraction: 0.6 }),
        ("checkpoint k=4", Strategy::Checkpoint { segments: 4 }),
        ("checkpoint k=8", Strategy::Checkpoint { segments: 8 }),
        ("fp16 activations", Strategy::HalfPrecisionActivations),
    ] {
        match profile_with_strategy(fw, &model, &gpu, hints, strategy) {
            Ok(p) => println!(
                "  {:<16} {:5.2} GB total | {:6.1} img/s | exposed overhead {:5.1} ms",
                label,
                p.total_bytes as f64 / 1e9,
                p.throughput,
                p.overhead_s * 1e3
            ),
            Err(e) => println!("  {label:<16} OOM ({e})"),
        }
    }

    println!("\nmaximum feasible mini-batch (candidates 16/32/64/128/256):");
    let candidates = [16usize, 32, 64, 128, 256];
    for (kind, fw) in [
        (ModelKind::ResNet50, Framework::mxnet()),
        (ModelKind::Seq2Seq, Framework::mxnet()),
    ] {
        for (label, strategy) in [
            ("baseline", Strategy::Baseline),
            ("offload 60%", Strategy::Offload { fraction: 0.6 }),
            ("checkpoint k=8", Strategy::Checkpoint { segments: 8 }),
        ] {
            let max = max_feasible_batch(kind, fw, &gpu, strategy, &candidates);
            println!(
                "  {:<14} {:<16} max batch {}",
                kind.name(),
                label,
                max.map(|b| b.to_string()).unwrap_or_else(|| "none".into())
            );
        }
    }
    println!("\nfinding: offloading feature maps doubles the feasible batch at <2 % cost on");
    println!("conv-heavy models — exactly the direction the paper's conclusion recommends.");
}
