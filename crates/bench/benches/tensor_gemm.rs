//! Criterion sweep of the packed GEMM backend: square and skinny shapes at
//! 1/2/4/8 intra-op threads, against the seed's scalar reference kernel.
//!
//! The acceptance number for the parallel kernel backend lives here: packed
//! `matmul` on 512³ f32 must beat `matmul_reference` by ≥3× (thread counts
//! above the machine's core count add nothing but confirm the banding has
//! no penalty — results are bitwise identical at every cap).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tbd_tensor::ops;
use tbd_tensor::{par, Tensor};

/// Square sizes swept for the packed kernel (the 512 entry is the
/// acceptance shape) and skinny shapes typical of attention/embedding
/// products (tall-and-thin activations against small weight panels).
const SQUARE: [usize; 3] = [128, 256, 512];
const SKINNY: [(usize, usize, usize); 3] = [(2048, 64, 64), (64, 2048, 64), (512, 512, 32)];
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn mk(m: usize, k: usize, scale: f32) -> Tensor {
    Tensor::from_fn([m, k], move |i| (i as f32 * scale).sin())
}

fn bench_reference(c: &mut Criterion) {
    let a = mk(512, 512, 0.37);
    let b = mk(512, 512, 0.73);
    c.bench_function("gemm_reference_512x512x512", |bench| {
        bench.iter(|| ops::matmul_reference(black_box(&a), black_box(&b)).unwrap())
    });
}

fn bench_square(c: &mut Criterion) {
    for size in SQUARE {
        let a = mk(size, size, 0.37);
        let b = mk(size, size, 0.73);
        for threads in THREADS {
            par::set_max_threads(threads);
            c.bench_function(&format!("gemm_packed_{size}cubed_t{threads}"), |bench| {
                bench.iter(|| ops::matmul(black_box(&a), black_box(&b)).unwrap())
            });
        }
    }
    par::set_max_threads(0);
}

fn bench_skinny(c: &mut Criterion) {
    for (m, k, n) in SKINNY {
        let a = mk(m, k, 0.37);
        let b = mk(k, n, 0.73);
        for threads in THREADS {
            par::set_max_threads(threads);
            c.bench_function(&format!("gemm_packed_{m}x{k}x{n}_t{threads}"), |bench| {
                bench.iter(|| ops::matmul(black_box(&a), black_box(&b)).unwrap())
            });
        }
    }
    par::set_max_threads(0);
}

criterion_group! {
    name = gemm;
    config = Criterion::default().sample_size(15);
    targets = bench_reference, bench_square, bench_skinny
}
criterion_main!(gemm);
