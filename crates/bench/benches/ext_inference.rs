//! Extension study: the paper's motivating contrast (§1) quantified —
//! "the memory footprint of inference is significantly smaller … and the
//! major memory consumers are model weights rather than feature maps".

use tbd_core::ModelKind;
use tbd_graph::lower::{inference_footprint, memory_footprint};

fn main() {
    println!("Training vs inference memory (paper §1's motivating contrast)");
    println!(
        "{:<14} {:>6} {:>14} {:>14} {:>8} {:>22}",
        "model", "batch", "train (GB)", "infer (GB)", "ratio", "inference dominated by"
    );
    let cases = [
        (ModelKind::ResNet50, 32usize),
        (ModelKind::InceptionV3, 32),
        (ModelKind::Seq2Seq, 64),
        (ModelKind::Wgan, 64),
        (ModelKind::A3c, 128),
    ];
    for (kind, batch) in cases {
        let model = kind.build_full(batch).expect("builds");
        let train = memory_footprint(&model.graph);
        // Inference serves one sample at a time.
        let single = kind.build_full(1).expect("builds");
        let infer = inference_footprint(&single.graph);
        let dominated = if infer.weights > infer.feature_maps { "weights" } else { "activations" };
        println!(
            "{:<14} {:>6} {:>14.2} {:>14.3} {:>7.0}x {:>22}",
            kind.name(),
            batch,
            train.total() as f64 / 1e9,
            infer.total() as f64 / 1e9,
            train.total() as f64 / infer.total() as f64,
            dominated
        );
    }
    println!("\nthe paper quotes tens of MB for inference against tens of GB for training;");
    println!("training stashes every feature map while inference frees them layer by layer.");
}
