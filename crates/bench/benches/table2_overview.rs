//! Regenerates Table 2: the benchmark-suite overview, from the live model
//! and framework registries (layer counts cross-checked against the built
//! graphs).

use tbd_core::{table2, ModelKind};

fn main() {
    println!("Table 2 — overview of benchmarks");
    println!(
        "{:<28} {:<14} {:<15} {:<9} {:<28} Dataset",
        "Application", "Model", "Layers", "Dominant", "Frameworks"
    );
    for row in table2() {
        println!(
            "{:<28} {:<14} {:<15} {:<9} {:<28} {}",
            row.application,
            row.model.name(),
            row.layers,
            row.dominant_layer,
            row.frameworks.join(", "),
            row.dataset
        );
    }
    // Cross-check quoted layer/parameter structure against the built graphs.
    let resnet = ModelKind::ResNet50.build_full(1).expect("builds");
    println!(
        "\ncross-check: ResNet-50 graph has {} parameters (reference 25.6 M)",
        resnet.graph.param_count()
    );
    let transformer = ModelKind::Transformer.build_full(64).expect("builds");
    println!(
        "cross-check: Transformer graph has {} parameters across 12 blocks",
        transformer.graph.param_count()
    );
}
