//! Ablation (DESIGN.md §5): framework allocator strategies. Neutralising
//! allocator slack and dynamic momentum buffers erases the feasibility
//! differences the paper reports (Sockeye 64 vs NMT 128).

use tbd_core::{Framework, GpuSpec, ModelKind};
use tbd_graph::lower::memory_footprint;

fn main() {
    println!("Ablation — allocator strategy vs raw footprint (Seq2Seq, 8 GB card)");
    let gpu = GpuSpec::quadro_p4000();
    println!(
        "{:>6} {:>14} {:>22} {:>22}",
        "batch", "raw need (GB)", "TF allocator fits?", "MXNet allocator fits?"
    );
    for &batch in &[32usize, 64, 128] {
        let model = ModelKind::Seq2Seq.build_full(batch).unwrap();
        let fp = memory_footprint(&model.graph);
        let raw = fp.total() as f64 / 1e9;
        let fits = |fw: Framework| {
            let hints = fw.hints(ModelKind::Seq2Seq, batch);
            match fw.profile_with_hints(&model, &gpu, hints) {
                Ok(p) => format!("yes ({:.2} GB)", p.memory.total() as f64 / 1e9),
                Err(_) => "OOM".to_string(),
            }
        };
        println!(
            "{:>6} {:>14.2} {:>22} {:>22}",
            batch,
            raw,
            fits(Framework::tensorflow()),
            fits(Framework::mxnet())
        );
    }
    println!("\nwith allocator effects removed (raw column) both frameworks would fit the");
    println!("same batches; slack + coarse bucketing + dynamic momentum buffers are what");
    println!("cap Sockeye at 64 while NMT reaches 128 (Observation 3).");
}
