//! Regenerates Table 4: hardware specifications of the evaluation devices.

use tbd_core::{CpuSpec, GpuSpec};

fn main() {
    let xp = GpuSpec::titan_xp();
    let p4 = GpuSpec::quadro_p4000();
    let cpu = CpuSpec::xeon_e5_2680();
    println!("Table 4 — hardware specifications");
    println!("{:<24} {:>12} {:>14} {:>18}", "", "Titan Xp", "Quadro P4000", "Xeon E5-2680");
    println!("{:<24} {:>12} {:>14} {:>18}", "Multiprocessors", xp.multiprocessors, p4.multiprocessors, "-");
    println!("{:<24} {:>12} {:>14} {:>18}", "Core count", xp.cuda_cores, p4.cuda_cores, cpu.cores);
    println!(
        "{:<24} {:>12} {:>14} {:>18}",
        "Max clock (MHz)", xp.max_clock_mhz, p4.max_clock_mhz, cpu.max_clock_mhz
    );
    println!(
        "{:<24} {:>12} {:>14} {:>18}",
        "Memory (GB)",
        xp.memory_bytes / (1 << 30),
        p4.memory_bytes / (1 << 30),
        cpu.memory_bytes / (1 << 30)
    );
    println!(
        "{:<24} {:>12} {:>14} {:>18}",
        "Memory BW (GB/s)", xp.memory_bw_gbs, p4.memory_bw_gbs, 76.8
    );
    println!(
        "{:<24} {:>12.1} {:>14.1} {:>18}",
        "Peak FP32 (TFLOP/s)",
        xp.peak_gflops() / 1000.0,
        p4.peak_gflops() / 1000.0,
        "-"
    );
}
