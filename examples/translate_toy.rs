//! Trains the tiny Transformer on a learnable toy translation task and
//! reports BLEU before and after — the machine-translation workload's full
//! train/evaluate loop at laptop scale.
//!
//! ```sh
//! cargo run --release --example translate_toy
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbd_data::text::{TranslationDataset, TranslationTask};
use tbd_graph::Session;
use tbd_models::transformer::TransformerConfig;
use tbd_tensor::Tensor;
use tbd_train::{bleu, Adam, Trainer};

fn greedy_decode(
    session: &mut Session,
    model_inputs: (tbd_graph::NodeId, tbd_graph::NodeId, tbd_graph::NodeId),
    logits: tbd_graph::NodeId,
    src: &Tensor,
    batch: usize,
    steps: usize,
    vocab: usize,
) -> Vec<Vec<usize>> {
    // Teacher-forced greedy read-out: feed the gold prefix and take the
    // argmax at every position (adequate for a toy task demo).
    let (src_in, tgt_in, tgt_out) = model_inputs;
    session.training = false;
    let run = session
        .forward(&[
            (src_in, src.clone()),
            (tgt_in, Tensor::zeros([batch * steps])),
            (tgt_out, Tensor::zeros([batch * steps])),
        ])
        .expect("forward succeeds");
    session.training = true;
    let out = run.value(logits).expect("computed");
    let mut sentences = Vec::with_capacity(batch);
    for b in 0..batch {
        let mut sent = Vec::with_capacity(steps);
        for t in 0..steps {
            let row = b * steps + t;
            let scores = &out.data()[row * vocab..(row + 1) * vocab];
            let mut best = 0;
            for (i, &v) in scores.iter().enumerate() {
                if v > scores[best] {
                    best = i;
                }
            }
            sent.push(best);
        }
        sentences.push(sent);
    }
    sentences
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = TransformerConfig::tiny();
    let batch = 8;
    let dataset = TranslationDataset::tiny(cfg.vocab, cfg.steps, TranslationTask::Copy);
    let model = cfg.build(batch)?;
    let src = model.input("src").expect("declared");
    let tgt_in = model.input("tgt_in").expect("declared");
    let tgt_out = model.input("tgt_out").expect("declared");
    let logits = model.output("logits").expect("declared");
    let loss = model.loss();
    let session = Session::new(model.graph, 11);
    let mut trainer = Trainer::new(session, loss, Adam::new(0.005));
    let mut rng = StdRng::seed_from_u64(5);

    // Held-out evaluation batch.
    let (eval_src, _, eval_tgt) = dataset.sample_batch(batch, cfg.steps, false, &mut rng);
    let references: Vec<Vec<usize>> = (0..batch)
        .map(|b| {
            (0..cfg.steps)
                .map(|t| eval_tgt.data()[b * cfg.steps + t] as usize)
                .collect()
        })
        .collect();

    let before = greedy_decode(
        trainer.session_mut(),
        (src, tgt_in, tgt_out),
        logits,
        &eval_src,
        batch,
        cfg.steps,
        cfg.vocab,
    );
    let bleu_before = bleu(&before, &references);

    println!("training the tiny Transformer on the copy task...");
    for step in 0..300 {
        let (s, ti, to) = dataset.sample_batch(batch, cfg.steps, false, &mut rng);
        let l = trainer.step(&[(src, s), (tgt_in, ti), (tgt_out, to)])?;
        if step % 75 == 0 {
            println!("  step {step:>3}: loss {l:.4}");
        }
    }

    let after = greedy_decode(
        trainer.session_mut(),
        (src, tgt_in, tgt_out),
        logits,
        &eval_src,
        batch,
        cfg.steps,
        cfg.vocab,
    );
    let bleu_after = bleu(&after, &references);
    println!("BLEU before training: {bleu_before:5.1}");
    println!("BLEU after  training: {bleu_after:5.1}");
    Ok(())
}
