//! Distributed data-parallel training (the paper's Fig. 10): ResNet-50 on
//! MXNet across single-machine multi-GPU and two-machine configurations
//! over Ethernet and InfiniBand.
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

use tbd_core::{Framework, GpuSpec, Interconnect, ModelKind, Suite};
use tbd_distrib::{ClusterConfig, DataParallelSim};
use tbd_graph::lower::memory_footprint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = Suite::new(GpuSpec::quadro_p4000());
    let framework = Framework::mxnet();
    println!("ResNet-50 on MXNet, data-parallel scaling (per-GPU batch sweep)");
    println!(
        "{:>6}  {:>18}  {:>12}  {:>12}  {:>10}",
        "batch", "configuration", "throughput", "comm (ms)", "efficiency"
    );
    for &batch in &[8usize, 16, 32] {
        let metrics = suite.run(ModelKind::ResNet50, framework, batch)?;
        let model = ModelKind::ResNet50.build_full(batch)?;
        let grads = memory_footprint(&model.graph).weight_grads as f64;
        let sim = DataParallelSim {
            compute_iter_s: batch as f64 / metrics.throughput,
            gradient_bytes: grads,
            per_gpu_batch: batch,
        };
        let configs = [
            ClusterConfig::single_machine(1),
            ClusterConfig::multi_machine(2, Interconnect::ethernet_1g()),
            ClusterConfig::multi_machine(2, Interconnect::infiniband_100g()),
            ClusterConfig::single_machine(2),
            ClusterConfig::single_machine(4),
        ];
        let labels = ["1M1G", "2M1G (ethernet)", "2M1G (infiniband)", "1M2G", "1M4G"];
        for (config, label) in configs.iter().zip(labels) {
            let p = sim.simulate(config);
            println!(
                "{:>6}  {:>18}  {:>8.1}/s  {:>12.1}  {:>9.0}%",
                batch,
                label,
                p.throughput,
                p.comm_s * 1e3,
                100.0 * p.scaling_efficiency
            );
        }
        println!();
    }
    println!("Observation 13: Gigabit Ethernet makes 2 machines slower than 1;");
    println!("InfiniBand and intra-machine PCIe restore near-linear scaling.");
    Ok(())
}
