//! Trains the miniature WGAN for real: alternating critic and generator
//! updates with weight clipping, on synthetic 16×16 images — the paper's
//! adversarial-learning domain end to end.
//!
//! ```sh
//! cargo run --release --example train_wgan
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tbd_data::ImageDataset;
use tbd_graph::Session;
use tbd_models::wgan::WganConfig;
use tbd_tensor::Tensor;
use tbd_train::optim::clip_weights;
use tbd_train::{Optimizer, Sgd};

fn main() {
    let cfg = WganConfig::tiny();
    let batch = 4;
    let model = cfg.build(batch).expect("graph builds");
    let noise = model.input("noise").expect("declared");
    let real = model.input("real").expect("declared");
    let d_loss = model.output("d_loss").expect("declared");
    let g_loss = model.output("g_loss").expect("declared");
    let critic_real = model.output("critic_real").expect("declared");
    let critic_fake = model.output("critic_fake").expect("declared");
    let mut session = Session::new(model.graph, 2024);
    let mut critic_opt = Sgd::new(5e-3);
    let mut gen_opt = Sgd::new(2e-4);
    let is_critic = |n: &str| n.starts_with("critic/");
    let is_gen = |n: &str| n.starts_with("gen/");
    let data = ImageDataset::tiny(cfg.image, 2);
    let mut rng = StdRng::seed_from_u64(7);

    println!("WGAN training (tiny, {batch}-image batches): 5 critic steps per generator step");
    for round in 0..8 {
        // --- critic steps (with Lipschitz weight clipping) ---
        let mut gap = 0.0;
        for _ in 0..5 {
            let (reals, _) = data.sample_batch(batch, &mut rng);
            let noise_t = Tensor::from_fn([batch, cfg.latent], |_| rng.gen_range(-1.0..1.0));
            let run = session
                .forward(&[(noise, noise_t), (real, reals)])
                .expect("forward succeeds");
            gap = run.scalar(critic_real).unwrap_or(0.0) - run.scalar(critic_fake).unwrap_or(0.0);
            let grads = session
                .backward(&run, d_loss, Tensor::scalar(1.0))
                .expect("backward succeeds");
            critic_opt.step_filtered(&mut session, &grads, &is_critic);
            clip_weights(&mut session, 0.2, &is_critic);
        }
        // --- generator step ---
        let (reals, _) = data.sample_batch(batch, &mut rng);
        let noise_t = Tensor::from_fn([batch, cfg.latent], |_| rng.gen_range(-1.0..1.0));
        let run = session
            .forward(&[(noise, noise_t), (real, reals)])
            .expect("forward succeeds");
        let grads =
            session.backward(&run, g_loss, Tensor::scalar(1.0)).expect("backward succeeds");
        gen_opt.step_filtered(&mut session, &grads, &is_gen);
        println!(
            "  round {round}: Wasserstein gap D(real)-D(fake) = {gap:+.4} \
             (the critic's estimate of distribution distance)"
        );
    }
    println!("\nthe gap widens while the critic trains and narrows after generator updates —");
    println!("the stable-training dynamic WGAN introduced (paper §3.1.5).");
}
