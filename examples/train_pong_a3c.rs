//! Plays the real Pong environment with asynchronous advantage
//! actor-critic training — the paper's deep-reinforcement-learning
//! workload, end to end: worker threads collect rollouts with the current
//! policy, a central parameter server applies their gradients.
//!
//! ```sh
//! cargo run --release --example train_pong_a3c
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbd_data::{Pong, PongAction};
use tbd_graph::Session;
use tbd_models::a3c::A3cConfig;
use tbd_tensor::Tensor;
use tbd_train::a3c::A3cTrainer;

fn main() {
    let config = A3cConfig::tiny(); // 3-action Pong head, full 84×84 trunk
    let trainer = A3cTrainer::new(config, 3e-3);
    println!("A3C on Pong: 2 asynchronous workers x 15 updates (rollout 5)");
    let (session, rewards) = trainer.train(2, 15, 2024);
    let early: f32 = rewards.iter().take(5).sum::<f32>() / 5.0;
    let late: f32 = rewards.iter().rev().take(5).sum::<f32>() / 5.0;
    println!("  mean rollout reward: first 5 updates {early:+.3}, last 5 updates {late:+.3}");

    // Play one greedy evaluation stretch with the trained policy.
    let built = config.build(1).expect("graph builds");
    let frames = built.input("frames").expect("declared");
    let actions = built.input("actions").expect("declared");
    let returns = built.input("returns").expect("declared");
    let policy = built.output("policy").expect("declared");
    let mut eval = Session::new(built.graph, 9);
    eval.load_snapshot(&session.snapshot());
    let mut rng = StdRng::seed_from_u64(99);
    let mut game = Pong::new(&mut rng);
    let mut reward = 0.0;
    for _ in 0..400 {
        let obs = game.observation().reshape([1, 4, 84, 84]).expect("fixed shape");
        let run = eval
            .forward(&[
                (frames, obs),
                (actions, Tensor::zeros([1])),
                (returns, Tensor::zeros([1, 1])),
            ])
            .expect("forward succeeds");
        let probs = run.value(policy).expect("computed");
        let act = probs.argmax().unwrap_or(0);
        let out = game.step(PongAction::from_index(act), &mut rng);
        reward += out.reward;
        if out.done {
            break;
        }
    }
    let (us, them) = game.score();
    println!("  greedy evaluation: reward {reward:+.0}, score {us}-{them}");
    println!(
        "  (the paper trains ~15 hours to reach 19-20; this demo runs a few\n   \
         seconds to show the full async pipeline working)"
    );
}
