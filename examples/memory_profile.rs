//! Memory profiling across the suite (the paper's Fig. 9): for each
//! workload, break the training footprint into feature maps, weights,
//! weight gradients, dynamic allocations and workspace.
//!
//! ```sh
//! cargo run --release --example memory_profile
//! ```

use tbd_core::{Framework, GpuSpec, MemoryCategory, ModelKind, Suite};

fn main() {
    let suite = Suite::new(GpuSpec::quadro_p4000());
    let cases: [(ModelKind, Framework, &[usize]); 5] = [
        (ModelKind::ResNet50, Framework::mxnet(), &[8, 16, 32]),
        (ModelKind::InceptionV3, Framework::tensorflow(), &[8, 16, 32]),
        (ModelKind::Seq2Seq, Framework::tensorflow(), &[32, 64, 128]),
        (ModelKind::Wgan, Framework::tensorflow(), &[16, 32, 64]),
        (ModelKind::DeepSpeech2, Framework::mxnet(), &[1, 2, 4]),
    ];
    for (kind, framework, batches) in cases {
        println!("\n{} on {} — GPU memory usage breakdown", kind.name(), framework.name());
        for &batch in batches {
            match suite.run(kind, framework, batch) {
                Ok(m) => {
                    print!("  batch {batch:>3}: {:5.2} GB |", m.memory.total() as f64 / 1e9);
                    for cat in MemoryCategory::ALL {
                        print!(
                            " {} {:4.1}%",
                            cat,
                            100.0 * m.memory.peak(cat) as f64 / m.memory.total() as f64
                        );
                    }
                    println!();
                }
                Err(oom) => println!("  batch {batch:>3}: OOM ({oom})"),
            }
        }
    }
    println!(
        "\nObservation 11: feature maps dominate every training footprint \
         (62–89 % in the paper)."
    );
}
