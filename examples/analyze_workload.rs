//! Runs the paper's full Fig. 3 analysis pipeline on one workload and
//! writes an nvprof-style kernel timeline as a Chrome trace file:
//! comparability check → simulate → synthesise the training run → detect the
//! stable window → sample throughput → metrics + kernel table.
//!
//! ```sh
//! cargo run --release --example analyze_workload
//! ```

use tbd_core::{compare_models, Framework, GpuSpec, ModelKind};
use tbd_profiler::{analyze, SamplingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = ModelKind::ResNet50;
    let framework = Framework::mxnet();
    let gpu = GpuSpec::quadro_p4000();
    let batch = 16;

    // Step 1 (§3.4.1): make implementations comparable. Build the model
    // twice — as two "implementations" — and verify identical networks.
    let model = kind.build_full(batch)?;
    let other = kind.build_full(batch)?;
    let report = compare_models(&model, &other);
    println!(
        "comparability check: {} ({} op differences, {} param differences)",
        if report.comparable() { "PASS" } else { "FAIL" },
        report.op_differences.len(),
        report.param_differences.len()
    );

    // Steps 2-4 (§3.4.2-3.4.3): warm-up-aware sampling + the metric set.
    let analysis = analyze(kind, framework, &model, &gpu, &SamplingConfig::default(), 7)?;
    println!("\n{} on {} (batch {batch}, {}):", kind.name(), framework.name(), gpu.name);
    println!(
        "  sampled over stable window {}..{}: {:.1} images/s (simulator: {:.1})",
        analysis.stable_window.0,
        analysis.stable_window.1,
        analysis.sampled_throughput,
        analysis.metrics.throughput
    );
    println!(
        "  GPU {:.1} % | FP32 {:.1} % | CPU {:.1} % | memory {:.2} GB",
        100.0 * analysis.metrics.gpu_utilization,
        100.0 * analysis.metrics.fp32_utilization,
        100.0 * analysis.metrics.cpu_utilization,
        analysis.metrics.memory.total() as f64 / 1e9
    );
    println!("  kernels with below-average FP32 utilisation:");
    for row in &analysis.kernel_table {
        println!(
            "    {:>6.2}%  {:>5.1}%  {}",
            100.0 * row.duration_share,
            100.0 * row.fp32_utilization,
            row.name
        );
    }

    // Step 5: export the kernel timeline (load in chrome://tracing).
    let input_bytes: u64 = model
        .inputs
        .values()
        .map(|&id| model.graph.node(id).shape.byte_len() as u64)
        .sum();
    let params = framework.execution_params(input_bytes);
    let trace =
        tbd_gpusim::export_chrome_trace(&analysis.metrics.profile.iteration.records, &params);
    let path = std::env::temp_dir().join("tbd_resnet50_trace.json");
    std::fs::write(&path, trace)?;
    println!("\nkernel timeline written to {} (open in chrome://tracing)", path.display());
    Ok(())
}
