//! Quickstart: train a miniature ResNet for real on synthetic data, then
//! profile the paper-scale ResNet-50 on the simulated Quadro P4000.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tbd_core::{Framework, GpuSpec, MemoryCategory, ModelKind, Suite};
use tbd_data::ImageDataset;
use tbd_models::resnet::ResNetConfig;
use tbd_train::{top_k_accuracy, Momentum, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: real training on a miniature ResNet ----
    println!("== training a tiny ResNet on synthetic images ==");
    let config = ResNetConfig::tiny();
    let model = config.build(8)?;
    let images = model.input("images").expect("declared input");
    let labels = model.input("labels").expect("declared input");
    let logits = model.output("logits").expect("declared output");
    let loss = model.loss();
    let session = tbd_graph::Session::new(model.graph, 42);
    let mut trainer = Trainer::new(session, loss, Momentum::new(0.05, 0.9));
    let dataset = ImageDataset::tiny(config.image, config.classes);
    let mut rng = StdRng::seed_from_u64(7);
    for step in 0..30 {
        let (x, y) = dataset.sample_batch(8, &mut rng);
        let l = trainer.step(&[(images, x), (labels, y)])?;
        if step % 10 == 0 {
            println!("  step {step:>3}: loss {l:.4}");
        }
    }
    println!("  final loss {:.4}", trainer.last_loss());
    // Evaluate Top-1 accuracy on a held-out batch (the paper's §3.3 metric).
    let (eval_x, eval_y) = dataset.sample_batch(8, &mut rng);
    let run = trainer.session_mut().forward(&[(images, eval_x), (labels, eval_y.clone())])?;
    let out = run.value(logits).expect("computed");
    println!("  held-out Top-1 accuracy: {:.0}%", 100.0 * top_k_accuracy(out, &eval_y, 1));

    // ---- Part 2: profile the paper-scale workload ----
    println!("\n== profiling paper-scale ResNet-50 (batch 32) on Quadro P4000 ==");
    let suite = Suite::new(GpuSpec::quadro_p4000());
    for framework in Framework::all() {
        let m = suite.run(ModelKind::ResNet50, framework, 32)?;
        println!(
            "  {:<10} {:6.1} images/s | GPU {:4.1}% | FP32 {:4.1}% | CPU {:4.1}% | mem {:.2} GB \
             (feature maps {:.0}%)",
            framework.name(),
            m.throughput,
            100.0 * m.gpu_utilization,
            100.0 * m.fp32_utilization,
            100.0 * m.cpu_utilization,
            m.memory.total() as f64 / 1e9,
            100.0 * m.memory.feature_map_fraction(),
        );
        let _ = m.memory.peak(MemoryCategory::Workspace);
    }
    Ok(())
}
