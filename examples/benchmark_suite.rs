//! Runs the full TBD benchmark suite — every (model, framework) pair of
//! the paper's Table 2 — on the simulated Quadro P4000 and prints the
//! §3.4.3 metric set for each.
//!
//! ```sh
//! cargo run --release --example benchmark_suite
//! ```

use tbd_core::{paper_batches, GpuSpec, ModelKind, Suite};

fn main() {
    let suite = Suite::new(GpuSpec::quadro_p4000());
    println!("TBD benchmark suite on {}", suite.gpu().name);
    println!(
        "{:<14} {:<11} {:>5}  {:>12}  {:>8}  {:>8}  {:>8}  {:>9}",
        "model", "framework", "batch", "throughput", "GPU%", "FP32%", "CPU%", "memory"
    );
    for (kind, framework) in Suite::supported_pairs() {
        // Profile at the largest feasible batch of the paper's axis.
        let batches = paper_batches(kind);
        let mut reported = false;
        for &batch in batches.iter().rev() {
            match suite.run(kind, framework, batch) {
                Ok(m) => {
                    let unit = match kind {
                        ModelKind::Transformer => "tokens/s",
                        ModelKind::DeepSpeech2 => "utt/s",
                        _ => "samples/s",
                    };
                    println!(
                        "{:<14} {:<11} {:>5}  {:>7.1} {:<9} {:>7.1}  {:>7.1}  {:>7.1}  {:>6.2} GB",
                        kind.name(),
                        framework.name(),
                        batch,
                        m.throughput,
                        unit,
                        100.0 * m.gpu_utilization,
                        100.0 * m.fp32_utilization,
                        100.0 * m.cpu_utilization,
                        m.memory.total() as f64 / 1e9,
                    );
                    reported = true;
                    break;
                }
                Err(_) => continue, // batch too large for 8 GB, try smaller
            }
        }
        if !reported {
            println!("{:<14} {:<11}   OOM at every batch", kind.name(), framework.name());
        }
    }
}
